//! Static test-set compaction by reverse-order fault simulation.
//!
//! The classic observation: vectors generated late (deterministic top-ups)
//! each target specific hard faults, while early random vectors detect
//! overlapping easy sets. Fault-simulating the sequence in *reverse* and
//! keeping only vectors that detect something still-undetected drops most
//! of the redundant prefix while preserving coverage exactly.

use dlp_circuit::Netlist;
use dlp_sim::ppsfp;
use dlp_sim::stuck_at::StuckAtFault;

use crate::AtpgError;

/// The result of compaction.
#[derive(Debug, Clone)]
pub struct CompactionResult {
    /// The surviving vectors, in their original relative order.
    pub vectors: Vec<Vec<bool>>,
    /// Indices (into the original sequence) of the survivors.
    pub kept: Vec<usize>,
}

/// Compacts `vectors` against `faults` with reverse-order fault
/// simulation. The returned set detects exactly the same faults.
///
/// # Errors
///
/// [`AtpgError::Sim`] if vector widths mismatch the netlist (see
/// [`ppsfp::simulate`]).
///
/// # Example
///
/// ```
/// use dlp_atpg::compact::compact;
/// use dlp_circuit::generators;
/// use dlp_sim::{detection, stuck_at};
///
/// let c17 = generators::c17();
/// let faults = stuck_at::enumerate(&c17).collapse();
/// let vectors = detection::random_vectors(5, 128, 3);
/// let compacted = compact(&c17, faults.faults(), &vectors)?;
/// assert!(compacted.vectors.len() < vectors.len() / 2);
/// # Ok::<(), dlp_atpg::AtpgError>(())
/// ```
pub fn compact(
    netlist: &Netlist,
    faults: &[StuckAtFault],
    vectors: &[Vec<bool>],
) -> Result<CompactionResult, AtpgError> {
    // Which faults does the full sequence detect at all?
    let full = ppsfp::simulate(netlist, faults, vectors)?;
    let mut remaining: Vec<usize> = full
        .first_detect()
        .iter()
        .enumerate()
        .filter_map(|(j, d)| d.map(|_| j))
        .collect();

    let mut kept_rev: Vec<usize> = Vec::new();
    for idx in (0..vectors.len()).rev() {
        if remaining.is_empty() {
            break;
        }
        let live: Vec<StuckAtFault> = remaining.iter().map(|&j| faults[j]).collect();
        let rec = ppsfp::simulate(netlist, &live, std::slice::from_ref(&vectors[idx]))?;
        let detected: Vec<usize> = rec
            .first_detect()
            .iter()
            .enumerate()
            .filter_map(|(pos, d)| d.map(|_| pos))
            .collect();
        if detected.is_empty() {
            continue;
        }
        kept_rev.push(idx);
        // Remove the newly covered faults (indices into `remaining`).
        let mut keep_mask = vec![true; remaining.len()];
        for &pos in &detected {
            keep_mask[pos] = false;
        }
        remaining = remaining
            .into_iter()
            .zip(keep_mask)
            .filter_map(|(j, keep)| keep.then_some(j))
            .collect();
    }
    kept_rev.reverse();
    Ok(CompactionResult {
        vectors: kept_rev.iter().map(|&i| vectors[i].clone()).collect(),
        kept: kept_rev,
    })
}

/// n-detect-aware compaction: reverse-order fault simulation that
/// preserves detection *counts*, not just the detected set.
///
/// Every fault the full sequence detects `c` times keeps at least
/// `min(c, n)` detections in the compacted set: scanning the vectors in
/// reverse, a vector is kept iff it detects a fault whose kept-detection
/// tally is still below its requirement. With `n = 1` this degenerates to
/// [`compact`]'s discipline (the kept set may differ where several vectors
/// tie, because the counted requirement credits every kept detection).
///
/// # Errors
///
/// [`AtpgError::Sim`] if vector widths mismatch the netlist, a fault site
/// is out of range, or `n` is not in
/// `1..=`[`dlp_sim::ppsfp::MAX_DETECTION_CAP`] (see
/// [`ppsfp::simulate_counted`]).
///
/// # Example
///
/// ```
/// use dlp_atpg::compact::compact_counted;
/// use dlp_circuit::generators;
/// use dlp_sim::{detection, ppsfp, stuck_at};
///
/// let c17 = generators::c17();
/// let faults = stuck_at::enumerate(&c17).collapse();
/// let vectors = detection::random_vectors(5, 128, 3);
/// let n = 3;
/// let compacted = compact_counted(&c17, faults.faults(), &vectors, n)?;
/// assert!(compacted.vectors.len() < vectors.len() / 2);
/// // Every fault keeps at least min(original count, 3) detections.
/// let before = ppsfp::simulate_counted(&c17, faults.faults(), &vectors, n)?;
/// let after = ppsfp::simulate_counted(&c17, faults.faults(), &compacted.vectors, n)?;
/// assert!(after.counts().iter().zip(before.counts()).all(|(a, b)| a >= &b));
/// # Ok::<(), dlp_atpg::AtpgError>(())
/// ```
pub fn compact_counted(
    netlist: &Netlist,
    faults: &[StuckAtFault],
    vectors: &[Vec<bool>],
    n: usize,
) -> Result<CompactionResult, AtpgError> {
    // How many detections (capped at n) does the full sequence give each
    // fault? That is the requirement the compacted set must preserve.
    let full = ppsfp::simulate_counted(netlist, faults, vectors, n)?;
    let mut required: Vec<usize> = full.counts();
    let mut open: usize = required.iter().filter(|&&r| r > 0).count();

    let mut kept_rev: Vec<usize> = Vec::new();
    for idx in (0..vectors.len()).rev() {
        if open == 0 {
            break;
        }
        let live: Vec<usize> = (0..faults.len()).filter(|&j| required[j] > 0).collect();
        let live_faults: Vec<StuckAtFault> = live.iter().map(|&j| faults[j]).collect();
        let rec = ppsfp::simulate(netlist, &live_faults, std::slice::from_ref(&vectors[idx]))?;
        let mut keeps = false;
        for (pos, d) in rec.first_detect().iter().enumerate() {
            if d.is_some() {
                keeps = true;
                required[live[pos]] -= 1;
                if required[live[pos]] == 0 {
                    open -= 1;
                }
            }
        }
        if keeps {
            kept_rev.push(idx);
        }
    }
    kept_rev.reverse();
    Ok(CompactionResult {
        vectors: kept_rev.iter().map(|&i| vectors[i].clone()).collect(),
        kept: kept_rev,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_circuit::generators;
    use dlp_sim::{detection, stuck_at};

    #[test]
    fn coverage_is_preserved_exactly() {
        let nl = generators::c432_class();
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(36, 512, 17);
        let before = ppsfp::simulate(&nl, faults.faults(), &vectors).unwrap().detected_count();
        let compacted = compact(&nl, faults.faults(), &vectors).unwrap();
        let after = ppsfp::simulate(&nl, faults.faults(), &compacted.vectors).unwrap().detected_count();
        assert_eq!(before, after);
        assert!(compacted.vectors.len() < vectors.len());
    }

    #[test]
    fn kept_indices_are_sorted_and_valid() {
        let nl = generators::ripple_adder(4);
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(9, 200, 5);
        let compacted = compact(&nl, faults.faults(), &vectors).unwrap();
        assert!(compacted.kept.windows(2).all(|w| w[0] < w[1]));
        assert!(compacted.kept.iter().all(|&i| i < vectors.len()));
        for (pos, &i) in compacted.kept.iter().enumerate() {
            assert_eq!(compacted.vectors[pos], vectors[i]);
        }
    }

    #[test]
    fn compacting_a_compact_set_is_stable() {
        let nl = generators::c17();
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(5, 64, 7);
        let once = compact(&nl, faults.faults(), &vectors).unwrap();
        let twice = compact(&nl, faults.faults(), &once.vectors).unwrap();
        // A second pass may reorder marginally but never grows.
        assert!(twice.vectors.len() <= once.vectors.len());
        let cov_once = ppsfp::simulate(&nl, faults.faults(), &once.vectors).unwrap().detected_count();
        let cov_twice = ppsfp::simulate(&nl, faults.faults(), &twice.vectors).unwrap().detected_count();
        assert_eq!(cov_once, cov_twice);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let nl = generators::c17();
        let faults = stuck_at::enumerate(&nl).collapse();
        let r = compact(&nl, faults.faults(), &[]).unwrap();
        assert!(r.vectors.is_empty());
        let r = compact(&nl, &[], &detection::random_vectors(5, 8, 1)).unwrap();
        assert!(r.vectors.is_empty());
    }

    #[test]
    fn counted_compaction_preserves_counts() {
        let nl = generators::c432_class();
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(36, 512, 17);
        for n in [1usize, 2, 4] {
            let before = ppsfp::simulate_counted(&nl, faults.faults(), &vectors, n).unwrap();
            let compacted = compact_counted(&nl, faults.faults(), &vectors, n).unwrap();
            assert!(compacted.vectors.len() < vectors.len());
            let after =
                ppsfp::simulate_counted(&nl, faults.faults(), &compacted.vectors, n).unwrap();
            for j in 0..faults.len() {
                assert!(
                    after.count(j) >= before.count(j),
                    "fault {j} dropped from {} to {} detections at n = {n}",
                    before.count(j),
                    after.count(j)
                );
            }
        }
    }

    #[test]
    fn counted_sets_grow_with_n() {
        // A deeper requirement can only need more (or equally many)
        // vectors, and every kept index must be valid and ordered.
        let nl = generators::ripple_adder(4);
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(9, 256, 5);
        let mut prev = 0usize;
        for n in 1..=4 {
            let c = compact_counted(&nl, faults.faults(), &vectors, n).unwrap();
            assert!(c.kept.windows(2).all(|w| w[0] < w[1]));
            assert!(c.kept.iter().all(|&i| i < vectors.len()));
            assert!(
                c.vectors.len() >= prev,
                "n = {n} kept {} < {} vectors",
                c.vectors.len(),
                prev
            );
            prev = c.vectors.len();
        }
    }

    #[test]
    fn counted_compaction_rejects_bad_caps() {
        let nl = generators::c17();
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(5, 16, 1);
        for n in [0usize, usize::MAX] {
            assert!(matches!(
                compact_counted(&nl, faults.faults(), &vectors, n),
                Err(AtpgError::Sim(dlp_sim::SimError::BadDetectionCap { .. }))
            ));
        }
    }
}
