//! Static test-set compaction by reverse-order fault simulation.
//!
//! The classic observation: vectors generated late (deterministic top-ups)
//! each target specific hard faults, while early random vectors detect
//! overlapping easy sets. Fault-simulating the sequence in *reverse* and
//! keeping only vectors that detect something still-undetected drops most
//! of the redundant prefix while preserving coverage exactly.

use dlp_circuit::Netlist;
use dlp_sim::ppsfp;
use dlp_sim::stuck_at::StuckAtFault;

use crate::AtpgError;

/// The result of compaction.
#[derive(Debug, Clone)]
pub struct CompactionResult {
    /// The surviving vectors, in their original relative order.
    pub vectors: Vec<Vec<bool>>,
    /// Indices (into the original sequence) of the survivors.
    pub kept: Vec<usize>,
}

/// Compacts `vectors` against `faults` with reverse-order fault
/// simulation. The returned set detects exactly the same faults.
///
/// # Errors
///
/// [`AtpgError::Sim`] if vector widths mismatch the netlist (see
/// [`ppsfp::simulate`]).
///
/// # Example
///
/// ```
/// use dlp_atpg::compact::compact;
/// use dlp_circuit::generators;
/// use dlp_sim::{detection, stuck_at};
///
/// let c17 = generators::c17();
/// let faults = stuck_at::enumerate(&c17).collapse();
/// let vectors = detection::random_vectors(5, 128, 3);
/// let compacted = compact(&c17, faults.faults(), &vectors)?;
/// assert!(compacted.vectors.len() < vectors.len() / 2);
/// # Ok::<(), dlp_atpg::AtpgError>(())
/// ```
pub fn compact(
    netlist: &Netlist,
    faults: &[StuckAtFault],
    vectors: &[Vec<bool>],
) -> Result<CompactionResult, AtpgError> {
    // Which faults does the full sequence detect at all?
    let full = ppsfp::simulate(netlist, faults, vectors)?;
    let mut remaining: Vec<usize> = full
        .first_detect()
        .iter()
        .enumerate()
        .filter_map(|(j, d)| d.map(|_| j))
        .collect();

    let mut kept_rev: Vec<usize> = Vec::new();
    for idx in (0..vectors.len()).rev() {
        if remaining.is_empty() {
            break;
        }
        let live: Vec<StuckAtFault> = remaining.iter().map(|&j| faults[j]).collect();
        let rec = ppsfp::simulate(netlist, &live, std::slice::from_ref(&vectors[idx]))?;
        let detected: Vec<usize> = rec
            .first_detect()
            .iter()
            .enumerate()
            .filter_map(|(pos, d)| d.map(|_| pos))
            .collect();
        if detected.is_empty() {
            continue;
        }
        kept_rev.push(idx);
        // Remove the newly covered faults (indices into `remaining`).
        let mut keep_mask = vec![true; remaining.len()];
        for &pos in &detected {
            keep_mask[pos] = false;
        }
        remaining = remaining
            .into_iter()
            .zip(keep_mask)
            .filter_map(|(j, keep)| keep.then_some(j))
            .collect();
    }
    kept_rev.reverse();
    Ok(CompactionResult {
        vectors: kept_rev.iter().map(|&i| vectors[i].clone()).collect(),
        kept: kept_rev,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_circuit::generators;
    use dlp_sim::{detection, stuck_at};

    #[test]
    fn coverage_is_preserved_exactly() {
        let nl = generators::c432_class();
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(36, 512, 17);
        let before = ppsfp::simulate(&nl, faults.faults(), &vectors).unwrap().detected_count();
        let compacted = compact(&nl, faults.faults(), &vectors).unwrap();
        let after = ppsfp::simulate(&nl, faults.faults(), &compacted.vectors).unwrap().detected_count();
        assert_eq!(before, after);
        assert!(compacted.vectors.len() < vectors.len());
    }

    #[test]
    fn kept_indices_are_sorted_and_valid() {
        let nl = generators::ripple_adder(4);
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(9, 200, 5);
        let compacted = compact(&nl, faults.faults(), &vectors).unwrap();
        assert!(compacted.kept.windows(2).all(|w| w[0] < w[1]));
        assert!(compacted.kept.iter().all(|&i| i < vectors.len()));
        for (pos, &i) in compacted.kept.iter().enumerate() {
            assert_eq!(compacted.vectors[pos], vectors[i]);
        }
    }

    #[test]
    fn compacting_a_compact_set_is_stable() {
        let nl = generators::c17();
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(5, 64, 7);
        let once = compact(&nl, faults.faults(), &vectors).unwrap();
        let twice = compact(&nl, faults.faults(), &once.vectors).unwrap();
        // A second pass may reorder marginally but never grows.
        assert!(twice.vectors.len() <= once.vectors.len());
        let cov_once = ppsfp::simulate(&nl, faults.faults(), &once.vectors).unwrap().detected_count();
        let cov_twice = ppsfp::simulate(&nl, faults.faults(), &twice.vectors).unwrap().detected_count();
        assert_eq!(cov_once, cov_twice);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let nl = generators::c17();
        let faults = stuck_at::enumerate(&nl).collapse();
        let r = compact(&nl, faults.faults(), &[]).unwrap();
        assert!(r.vectors.is_empty());
        let r = compact(&nl, &[], &detection::random_vectors(5, 8, 1)).unwrap();
        assert!(r.vectors.is_empty());
    }
}
