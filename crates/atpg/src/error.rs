use std::error::Error;
use std::fmt;

use dlp_core::{PipelineError, Stage};
use dlp_sim::SimError;

/// Errors raised by test generation and compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AtpgError {
    /// A target fault references a node outside the netlist.
    ForeignFault {
        /// Index of the offending fault in the supplied list.
        index: usize,
    },
    /// Fault simulation rejected its inputs.
    Sim(SimError),
}

impl fmt::Display for AtpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtpgError::ForeignFault { index } => {
                write!(f, "fault {index} references a node outside the netlist")
            }
            AtpgError::Sim(e) => write!(f, "fault simulation: {e}"),
        }
    }
}

impl Error for AtpgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AtpgError::Sim(e) => Some(e),
            AtpgError::ForeignFault { .. } => None,
        }
    }
}

impl From<SimError> for AtpgError {
    fn from(e: SimError) -> Self {
        AtpgError::Sim(e)
    }
}

impl From<AtpgError> for PipelineError {
    fn from(e: AtpgError) -> Self {
        PipelineError::with_source(Stage::Atpg, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_stage() {
        let e = AtpgError::ForeignFault { index: 4 };
        assert!(e.to_string().contains("fault 4"));
        assert_eq!(PipelineError::from(e).stage(), Stage::Atpg);
        let wrapped = AtpgError::from(SimError::WeightCountMismatch {
            weights: 1,
            faults: 2,
        });
        assert!(wrapped.to_string().contains("fault simulation"));
        assert!(wrapped.source().is_some());
    }
}
