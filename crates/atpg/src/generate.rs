//! The full test-generation pipeline: random phase, then deterministic
//! top-up — the vector recipe of the paper's experimental setup ("the
//! first vectors are random vectors, being the last vectors
//! deterministically generated").

use dlp_circuit::Netlist;
use dlp_core::rng::Xorshift64Star;
use dlp_sim::ppsfp;
use dlp_sim::stuck_at::StuckAtFault;

use crate::podem::{Podem, PodemOutcome};
use crate::AtpgError;

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgConfig {
    /// Maximum random vectors to apply.
    pub random_budget: usize,
    /// Stop the random phase after this many consecutive vectors detect
    /// nothing new.
    pub random_stall: usize,
    /// PODEM backtrack limit per fault.
    pub backtrack_limit: usize,
    /// RNG seed for random vectors and don't-care fill.
    pub seed: u64,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            random_budget: 2048,
            random_stall: 256,
            backtrack_limit: 20_000,
            seed: 1,
        }
    }
}

/// Outcome of the pipeline.
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// The generated vector sequence (random prefix + deterministic tail).
    pub vectors: Vec<Vec<bool>>,
    /// How many of the vectors are from the random phase.
    pub random_prefix_len: usize,
    /// Faults no test was found for, with their PODEM verdicts.
    pub undetected: Vec<(StuckAtFault, PodemVerdict)>,
    /// Final stuck-at fault coverage over the given fault list.
    pub coverage: f64,
}

/// Why a fault ended the pipeline undetected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodemVerdict {
    /// Proven untestable.
    Redundant,
    /// Backtrack limit hit.
    Aborted,
    /// PODEM produced a cube but simulation did not confirm detection
    /// (should not happen; kept as a tripwire).
    Unconfirmed,
}

/// Runs the random-then-deterministic pipeline for `faults`.
///
/// The random phase applies vectors in blocks, dropping detected faults,
/// and stops at the budget or after [`AtpgConfig::random_stall`] barren
/// vectors. PODEM then targets each surviving fault; every generated cube
/// is appended (don't-cares randomly filled) and fault-simulated so one
/// deterministic vector can retire several faults.
///
/// # Errors
///
/// [`AtpgError::ForeignFault`] if a fault references a node outside
/// `netlist`; [`AtpgError::Sim`] if fault simulation rejects its inputs.
///
/// # Example
///
/// ```
/// use dlp_atpg::generate::{generate_tests, AtpgConfig};
/// use dlp_circuit::generators;
/// use dlp_sim::stuck_at;
///
/// let adder = generators::ripple_adder(4);
/// let faults = stuck_at::enumerate(&adder).collapse();
/// let result = generate_tests(&adder, faults.faults(), &AtpgConfig::default())?;
/// assert!(result.coverage > 0.99);
/// # Ok::<(), dlp_atpg::AtpgError>(())
/// ```
pub fn generate_tests(
    netlist: &Netlist,
    faults: &[StuckAtFault],
    config: &AtpgConfig,
) -> Result<AtpgResult, AtpgError> {
    for (index, f) in faults.iter().enumerate() {
        let node = match f.site {
            dlp_sim::stuck_at::FaultSite::Stem(n) => n,
            dlp_sim::stuck_at::FaultSite::Branch { gate, .. } => gate,
        };
        if node.index() >= netlist.node_count() {
            return Err(AtpgError::ForeignFault { index });
        }
    }
    let mut rng = Xorshift64Star::new(config.seed);
    let n_in = netlist.inputs().len();

    // Random phase, chunked so stalling can cut it short.
    let mut vectors: Vec<Vec<bool>> = Vec::new();
    let mut detected = vec![false; faults.len()];
    let chunk = 64usize;
    let mut barren = 0usize;
    while vectors.len() < config.random_budget && barren < config.random_stall {
        let block: Vec<Vec<bool>> = (0..chunk)
            .map(|_| (0..n_in).map(|_| rng.next_bool()).collect())
            .collect();
        // Simulate only the still-live faults against this block.
        let live: Vec<usize> = (0..faults.len()).filter(|&i| !detected[i]).collect();
        let live_faults: Vec<StuckAtFault> = live.iter().map(|&i| faults[i]).collect();
        let record = ppsfp::simulate(netlist, &live_faults, &block)?;
        let mut newly = 0;
        for (j, d) in record.first_detect().iter().enumerate() {
            if d.is_some() {
                detected[live[j]] = true;
                newly += 1;
            }
        }
        vectors.extend(block);
        if newly == 0 {
            barren += chunk;
        } else {
            barren = 0;
        }
    }
    let random_prefix_len = vectors.len();

    // Deterministic top-up.
    let engine = Podem::new(netlist, config.backtrack_limit);
    let mut undetected = Vec::new();
    let mut extra: Vec<Vec<bool>> = Vec::new();
    for i in 0..faults.len() {
        if detected[i] {
            continue;
        }
        match engine.generate(&faults[i]) {
            PodemOutcome::Test(cube) => {
                let vector: Vec<bool> = cube
                    .iter()
                    .map(|c| c.unwrap_or_else(|| rng.next_bool()))
                    .collect();
                // Fault-simulate the new vector against all live faults.
                let live: Vec<usize> = (0..faults.len()).filter(|&j| !detected[j]).collect();
                let live_faults: Vec<StuckAtFault> = live.iter().map(|&j| faults[j]).collect();
                let record = ppsfp::simulate(netlist, &live_faults, std::slice::from_ref(&vector))?;
                let mut confirmed = false;
                for (j, d) in record.first_detect().iter().enumerate() {
                    if d.is_some() {
                        detected[live[j]] = true;
                        if live[j] == i {
                            confirmed = true;
                        }
                    }
                }
                extra.push(vector);
                if !confirmed {
                    // The random fill must not mask the cube: the cube
                    // itself guarantees detection on the filled values
                    // only if don't-cares are truly don't-care, which
                    // PODEM's composite simulation ensures. Tripwire:
                    undetected.push((faults[i], PodemVerdict::Unconfirmed));
                }
            }
            PodemOutcome::Redundant => {
                undetected.push((faults[i], PodemVerdict::Redundant));
            }
            PodemOutcome::Aborted => {
                undetected.push((faults[i], PodemVerdict::Aborted));
            }
        }
    }
    vectors.extend(extra);

    let covered = detected.iter().filter(|&&d| d).count();
    Ok(AtpgResult {
        vectors,
        random_prefix_len,
        undetected,
        coverage: covered as f64 / faults.len().max(1) as f64,
    })
}

/// Convenience: the paper's vector recipe for a netlist, over its full
/// collapsed fault list.
///
/// # Example
///
/// # Errors
///
/// See [`generate_tests`].
///
/// ```
/// use dlp_circuit::generators;
///
/// let c17 = generators::c17();
/// let result = dlp_atpg::generate::for_netlist(&c17, 7)?;
/// assert_eq!(result.coverage, 1.0);
/// # Ok::<(), dlp_atpg::AtpgError>(())
/// ```
pub fn for_netlist(netlist: &Netlist, seed: u64) -> Result<AtpgResult, AtpgError> {
    let faults = dlp_sim::stuck_at::enumerate(netlist).collapse();
    generate_tests(
        netlist,
        faults.faults(),
        &AtpgConfig {
            seed,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_circuit::generators;
    use dlp_sim::stuck_at;

    #[test]
    fn c17_reaches_full_coverage() {
        let c17 = generators::c17();
        let faults = stuck_at::enumerate(&c17).collapse();
        let result = generate_tests(&c17, faults.faults(), &AtpgConfig::default()).unwrap();
        assert_eq!(result.coverage, 1.0);
        assert!(result.undetected.is_empty());
        assert!(result.random_prefix_len > 0);
    }

    #[test]
    fn c432_class_reaches_high_coverage() {
        let nl = generators::c432_class();
        let faults = stuck_at::enumerate(&nl).collapse();
        let config = AtpgConfig {
            random_budget: 1024,
            random_stall: 192,
            ..Default::default()
        };
        let result = generate_tests(&nl, faults.faults(), &config).unwrap();
        assert!(result.coverage > 0.94, "coverage {}", result.coverage);
        // Anything left must be proven redundant or an explicit abort —
        // never an unconfirmed cube.
        for (f, verdict) in &result.undetected {
            assert_ne!(
                *verdict,
                PodemVerdict::Unconfirmed,
                "unconfirmed cube for {}",
                f.describe(&nl)
            );
        }
    }

    #[test]
    fn deterministic_tail_appends_after_random_prefix() {
        let nl = generators::c432_class();
        let faults = stuck_at::enumerate(&nl).collapse();
        let config = AtpgConfig {
            random_budget: 256,
            random_stall: 64,
            ..Default::default()
        };
        let result = generate_tests(&nl, faults.faults(), &config).unwrap();
        assert!(result.vectors.len() >= result.random_prefix_len);
        assert!(
            result.vectors.len() > result.random_prefix_len,
            "a 256-vector random phase cannot cover everything"
        );
    }

    #[test]
    fn pipeline_is_deterministic_in_seed() {
        let nl = generators::ripple_adder(3);
        let faults = stuck_at::enumerate(&nl).collapse();
        let cfg = AtpgConfig {
            seed: 99,
            ..Default::default()
        };
        let a = generate_tests(&nl, faults.faults(), &cfg).unwrap();
        let b = generate_tests(&nl, faults.faults(), &cfg).unwrap();
        assert_eq!(a.vectors, b.vectors);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn redundant_faults_are_reported_not_hidden() {
        use dlp_circuit::{GateKind, Netlist};
        let mut n = Netlist::new("red");
        let a = n.add_input("a").unwrap();
        let na = n.add_gate("na", GateKind::Not, vec![a]).unwrap();
        let z = n.add_gate("z", GateKind::Or, vec![a, na]).unwrap();
        n.mark_output(z);
        n.freeze();
        let faults = stuck_at::enumerate(&n);
        let result = generate_tests(&n, faults.faults(), &AtpgConfig::default()).unwrap();
        assert!(result
            .undetected
            .iter()
            .any(|(_, v)| *v == PodemVerdict::Redundant));
        assert!(result.coverage < 1.0);
    }
}
