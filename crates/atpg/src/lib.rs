//! Automatic test pattern generation for single stuck-at faults.
//!
//! The paper's experiment applies "random vectors first, with the last
//! vectors deterministically generated using the FAN algorithm". This crate
//! reproduces that flow:
//!
//! * [`scoap`] — SCOAP controllability measures used as backtrace guidance
//!   (the heuristic heart of FAN-style search),
//! * [`logic3`] — three-valued good/faulty composite simulation,
//! * [`podem`] — a PODEM path-sensitisation engine with
//!   controllability-guided multiple backtrace and a backtrack limit,
//! * [`generate`] — the full pipeline: random phase until stall, then
//!   deterministic top-up, with fault dropping throughout,
//! * [`compact`] — reverse-order static test-set compaction.
//!
//! # Example
//!
//! ```
//! use dlp_circuit::generators;
//! use dlp_atpg::generate::{generate_tests, AtpgConfig};
//! use dlp_sim::stuck_at;
//!
//! let c17 = generators::c17();
//! let faults = stuck_at::enumerate(&c17).collapse();
//! let result = generate_tests(&c17, faults.faults(), &AtpgConfig::default())?;
//! assert_eq!(result.undetected.len(), 0); // c17 is fully testable
//! # Ok::<(), dlp_atpg::AtpgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
mod error;
pub mod generate;
pub mod logic3;
pub mod podem;
pub mod scoap;

pub use error::AtpgError;
