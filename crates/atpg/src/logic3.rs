//! Three-valued composite (good/faulty) simulation for PODEM.
//!
//! PODEM reasons over partial input assignments: unassigned inputs are `X`.
//! A [`Composite`] value carries the good-circuit and faulty-circuit levels
//! side by side, so `D` (good 1 / faulty 0) and `D̄` are representable
//! without a separate five-valued algebra.

use dlp_circuit::{GateKind, Netlist};
use dlp_sim::stuck_at::{FaultSite, StuckAtFault};
use dlp_sim::switchlevel::Logic;

/// A good/faulty value pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Composite {
    /// Value in the fault-free circuit.
    pub good: Logic,
    /// Value in the faulty circuit.
    pub faulty: Logic,
}

impl Composite {
    /// Both copies `X`.
    pub const XX: Composite = Composite {
        good: Logic::X,
        faulty: Logic::X,
    };

    /// A known, fault-free value on both copies.
    pub fn known(b: bool) -> Composite {
        let l = Logic::from_bool(b);
        Composite { good: l, faulty: l }
    }

    /// True if the line carries a fault effect (`D` or `D̄`).
    pub fn is_d(self) -> bool {
        self.good.is_known() && self.faulty.is_known() && self.good != self.faulty
    }

    /// True if either copy is `X`.
    pub fn has_x(self) -> bool {
        !self.good.is_known() || !self.faulty.is_known()
    }
}

/// Evaluates a gate in three-valued logic.
pub fn eval3(kind: GateKind, fanin: &[Logic]) -> Logic {
    match kind {
        GateKind::Input => panic!("inputs are not evaluated"),
        GateKind::Buf => fanin[0],
        GateKind::Not => fanin[0].not(),
        GateKind::And | GateKind::Nand => {
            let mut any_x = false;
            let mut v = Logic::One;
            for &f in fanin {
                match f {
                    Logic::Zero => {
                        v = Logic::Zero;
                        any_x = false;
                        break;
                    }
                    Logic::X => any_x = true,
                    Logic::One => {}
                }
            }
            let v = if any_x { Logic::X } else { v };
            if kind == GateKind::Nand {
                v.not()
            } else {
                v
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut any_x = false;
            let mut v = Logic::Zero;
            for &f in fanin {
                match f {
                    Logic::One => {
                        v = Logic::One;
                        any_x = false;
                        break;
                    }
                    Logic::X => any_x = true,
                    Logic::Zero => {}
                }
            }
            let v = if any_x { Logic::X } else { v };
            if kind == GateKind::Nor {
                v.not()
            } else {
                v
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = Logic::Zero;
            for &f in fanin {
                acc = match (acc, f) {
                    (Logic::X, _) | (_, Logic::X) => Logic::X,
                    (a, b) => Logic::from_bool((a == Logic::One) ^ (b == Logic::One)),
                };
                if acc == Logic::X {
                    break;
                }
            }
            if kind == GateKind::Xnor {
                acc.not()
            } else {
                acc
            }
        }
    }
}

/// Simulates the whole netlist under a partial PI assignment with `fault`
/// injected in the faulty copy. Returns the composite value of every node.
///
/// # Panics
///
/// Panics if `pi_values.len() != netlist.inputs().len()`.
pub fn simulate_composite(
    netlist: &Netlist,
    fault: &StuckAtFault,
    pi_values: &[Logic],
) -> Vec<Composite> {
    assert_eq!(pi_values.len(), netlist.inputs().len());
    let mut values = vec![Composite::XX; netlist.node_count()];
    for (i, &id) in netlist.inputs().iter().enumerate() {
        values[id.index()] = Composite {
            good: pi_values[i],
            faulty: pi_values[i],
        };
    }
    let stuck = Logic::from_bool(fault.stuck_at_one);

    let mut good_buf: Vec<Logic> = Vec::with_capacity(8);
    let mut faulty_buf: Vec<Logic> = Vec::with_capacity(8);
    for id in netlist.node_ids() {
        let kind = netlist.kind(id);
        if kind != GateKind::Input {
            good_buf.clear();
            faulty_buf.clear();
            for (pin, &f) in netlist.fanin(id).iter().enumerate() {
                let mut v = values[f.index()];
                if fault.site == (FaultSite::Branch { gate: id, pin }) {
                    v.faulty = stuck;
                }
                good_buf.push(v.good);
                faulty_buf.push(v.faulty);
            }
            values[id.index()] = Composite {
                good: eval3(kind, &good_buf),
                faulty: eval3(kind, &faulty_buf),
            };
        }
        if fault.site == FaultSite::Stem(id) {
            values[id.index()].faulty = stuck;
        }
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_circuit::generators;
    use Logic::{One, Zero, X};

    #[test]
    fn eval3_controlling_values_beat_x() {
        assert_eq!(eval3(GateKind::And, &[Zero, X]), Zero);
        assert_eq!(eval3(GateKind::Nand, &[Zero, X]), One);
        assert_eq!(eval3(GateKind::Or, &[One, X]), One);
        assert_eq!(eval3(GateKind::Nor, &[One, X]), Zero);
    }

    #[test]
    fn eval3_x_dominates_otherwise() {
        assert_eq!(eval3(GateKind::And, &[One, X]), X);
        assert_eq!(eval3(GateKind::Or, &[Zero, X]), X);
        assert_eq!(eval3(GateKind::Xor, &[One, X]), X);
        assert_eq!(eval3(GateKind::Not, &[X]), X);
    }

    #[test]
    fn eval3_agrees_with_binary_eval_on_known_inputs() {
        for kind in [
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            for p in 0..8u32 {
                let bits: Vec<Logic> = (0..3).map(|i| Logic::from_bool(p >> i & 1 == 1)).collect();
                let words: Vec<u64> = (0..3)
                    .map(|i| if p >> i & 1 == 1 { 1 } else { 0 })
                    .collect();
                let expect = kind.eval_words(&words) & 1 == 1;
                assert_eq!(
                    eval3(kind, &bits),
                    Logic::from_bool(expect),
                    "{kind} {p:03b}"
                );
            }
        }
    }

    #[test]
    fn composite_simulation_shows_d_at_activated_site() {
        let c17 = generators::c17();
        let n10 = c17.find("10").unwrap();
        let fault = StuckAtFault {
            site: FaultSite::Stem(n10),
            stuck_at_one: false,
        };
        // 10 = NAND(1, 3); with input 1 = 0 the good value is 1 -> D.
        let mut pis = vec![X; 5];
        pis[0] = Zero; // input "1"
        let values = simulate_composite(&c17, &fault, &pis);
        let v = values[n10.index()];
        assert_eq!(v.good, One);
        assert_eq!(v.faulty, Zero);
        assert!(v.is_d());
    }

    #[test]
    fn branch_fault_affects_only_its_gate() {
        let c17 = generators::c17();
        // 16 = NAND(2, 11); fault: input pin 1 (signal 11) SA1 at gate 16.
        let g16 = c17.find("16").unwrap();
        let n11 = c17.find("11").unwrap();
        let g19 = c17.find("19").unwrap();
        let fault = StuckAtFault {
            site: FaultSite::Branch { gate: g16, pin: 1 },
            stuck_at_one: true,
        };
        // Force 11 to 0 (inputs 3 = 1, 6 = 1): stem carries 0, branch sees 1.
        let pis = vec![One, One, One, One, One];
        let values = simulate_composite(&c17, &fault, &pis);
        assert_eq!(values[n11.index()].good, Zero);
        assert!(!values[n11.index()].is_d(), "stem itself is healthy");
        // 19 = NAND(11, 7) also consumes 11 and must see the healthy 0.
        assert!(!values[g19.index()].is_d());
        // 16 = NAND(2=1, branch 11 faulty=1): good nand(1,0)=1, faulty nand(1,1)=0.
        assert!(values[g16.index()].is_d());
    }

    #[test]
    fn composite_constructors() {
        assert!(Composite::XX.has_x());
        assert!(!Composite::known(true).has_x());
        assert!(!Composite::known(true).is_d());
    }
}
