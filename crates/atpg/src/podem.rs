//! PODEM: path-oriented decision making with SCOAP-guided backtrace.
//!
//! The search branches on primary-input assignments only (Goel's key
//! insight), guided by two objectives — activate the fault, then advance
//! the D-frontier — and a controllability-driven backtrace that picks the
//! *easiest* input when any input suffices and the *hardest* first when all
//! are needed (the cost discipline FAN applies to its head lines). A
//! backtrack limit bounds the search; exhausting the space without a test
//! proves the fault redundant.

use dlp_circuit::{GateKind, Netlist, NodeId};
use dlp_sim::stuck_at::{FaultSite, StuckAtFault};
use dlp_sim::switchlevel::Logic;

use crate::logic3::{simulate_composite, Composite};
use crate::scoap::Controllability;

/// Result of a PODEM run for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test cube: one entry per primary input, `None` meaning
    /// don't-care.
    Test(Vec<Option<bool>>),
    /// The search space was exhausted: the fault is undetectable
    /// (redundant).
    Redundant,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// PODEM search engine bound to one netlist.
#[derive(Debug)]
pub struct Podem<'a> {
    netlist: &'a Netlist,
    cc: Controllability,
    backtrack_limit: usize,
}

impl<'a> Podem<'a> {
    /// Prepares the engine (computes SCOAP measures once).
    pub fn new(netlist: &'a Netlist, backtrack_limit: usize) -> Self {
        Podem {
            netlist,
            cc: Controllability::compute(netlist),
            backtrack_limit,
        }
    }

    /// Attempts to generate a test for `fault`.
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_atpg::podem::{Podem, PodemOutcome};
    /// use dlp_circuit::generators;
    /// use dlp_sim::stuck_at;
    ///
    /// let c17 = generators::c17();
    /// let engine = Podem::new(&c17, 1000);
    /// let faults = stuck_at::enumerate(&c17);
    /// let outcome = engine.generate(&faults.faults()[0]);
    /// assert!(matches!(outcome, PodemOutcome::Test(_)));
    /// ```
    pub fn generate(&self, fault: &StuckAtFault) -> PodemOutcome {
        let n_pi = self.netlist.inputs().len();
        let mut pi_values = vec![Logic::X; n_pi];
        // Decision stack: (pi index, value tried, alternative exhausted).
        let mut stack: Vec<(usize, bool, bool)> = Vec::new();
        let mut backtracks = 0usize;

        loop {
            let values = simulate_composite(self.netlist, fault, &pi_values);
            if self.detected(&values) {
                return PodemOutcome::Test(
                    pi_values
                        .iter()
                        .map(|&v| match v {
                            Logic::Zero => Some(false),
                            Logic::One => Some(true),
                            Logic::X => None,
                        })
                        .collect(),
                );
            }

            let objective = self.pick_objective(fault, &values);
            let decision = objective.and_then(|(node, val)| self.backtrace(&values, node, val));

            match decision {
                Some((pi_idx, val)) => {
                    pi_values[pi_idx] = Logic::from_bool(val);
                    stack.push((pi_idx, val, false));
                }
                None => {
                    // Dead end: flip the most recent unexhausted decision.
                    backtracks += 1;
                    if backtracks > self.backtrack_limit {
                        return PodemOutcome::Aborted;
                    }
                    loop {
                        match stack.pop() {
                            None => return PodemOutcome::Redundant,
                            Some((pi, val, true)) => {
                                let _ = (pi, val);
                                // Both values tried: keep unwinding.
                                pi_values[pi] = Logic::X;
                            }
                            Some((pi, val, false)) => {
                                pi_values[pi] = Logic::from_bool(!val);
                                stack.push((pi, !val, true));
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    fn detected(&self, values: &[Composite]) -> bool {
        self.netlist
            .outputs()
            .iter()
            .any(|&o| values[o.index()].is_d())
    }

    /// The activation line and required value for a fault.
    fn activation(&self, fault: &StuckAtFault) -> (NodeId, bool) {
        let line = match fault.site {
            FaultSite::Stem(n) => n,
            FaultSite::Branch { gate, pin } => self.netlist.fanin(gate)[pin],
        };
        (line, !fault.stuck_at_one)
    }

    /// Chooses the next objective: activate if not yet activated,
    /// otherwise advance the lowest-level D-frontier gate. `None` means the
    /// current assignment can never detect the fault.
    fn pick_objective(&self, fault: &StuckAtFault, values: &[Composite]) -> Option<(NodeId, bool)> {
        let (line, needed) = self.activation(fault);
        match values[line.index()].good {
            Logic::X => return Some((line, needed)),
            v if v != Logic::from_bool(needed) => return None, // can't activate
            _ => {}
        }

        // Fault is activated; find the D-frontier, restricted to gates
        // from which an X-path (a chain of lines still carrying X) reaches
        // a primary output — the classic X-path check that prunes hopeless
        // propagation early.
        let xreach = self.x_reachable(values);
        let stuck = Logic::from_bool(fault.stuck_at_one);
        for id in self.netlist.node_ids() {
            let kind = self.netlist.kind(id);
            if kind == GateKind::Input {
                continue;
            }
            if !values[id.index()].has_x() || !xreach[id.index()] {
                continue;
            }
            let mut has_d = false;
            let mut x_pins: Vec<NodeId> = Vec::new();
            for (pin, &f) in self.netlist.fanin(id).iter().enumerate() {
                let mut v = values[f.index()];
                if fault.site == (FaultSite::Branch { gate: id, pin }) {
                    v.faulty = stuck;
                }
                if v.is_d() {
                    has_d = true;
                } else if v.good == Logic::X {
                    x_pins.push(f);
                }
            }
            if !has_d || x_pins.is_empty() {
                continue;
            }
            // Objective: set one X input to the non-controlling value (any
            // value for XOR-family — pick the cheaper).
            let target = match kind.controlling_value() {
                Some(c) => !c,
                None => {
                    let pin = x_pins[0];
                    return Some((
                        pin,
                        self.cc.cc0(pin) > self.cc.cc1(pin), // cheaper side
                    ));
                }
            };
            // Easiest X input first for a single non-controlling need.
            let Some(&pin) = x_pins.iter().min_by_key(|&&p| self.cc.cost(p, target)) else {
                continue; // x_pins checked non-empty above; stay total
            };
            return Some((pin, target));
        }
        None
    }

    /// Nodes from which a primary output is reachable through lines whose
    /// composite value still has an X (so a D could travel there).
    fn x_reachable(&self, values: &[Composite]) -> Vec<bool> {
        let n = self.netlist.node_count();
        let mut reach = vec![false; n];
        // Reverse topological sweep: node IDs are topological.
        for idx in (0..n).rev() {
            let id = NodeId::from_index(idx);
            if !values[idx].has_x() {
                continue;
            }
            if self.netlist.is_output(id)
                || self.netlist.fanout(id).iter().any(|s| reach[s.index()])
            {
                reach[idx] = true;
            }
        }
        reach
    }

    /// Maps an objective to a primary-input assignment by walking back
    /// through X-valued lines.
    fn backtrace(
        &self,
        values: &[Composite],
        mut node: NodeId,
        mut value: bool,
    ) -> Option<(usize, bool)> {
        loop {
            let kind = self.netlist.kind(node);
            if kind == GateKind::Input {
                // An Input node is always in `inputs()`; treat a miss as a
                // dead end rather than a panic.
                let pi_idx = self.netlist.inputs().iter().position(|&p| p == node)?;
                return Some((pi_idx, value));
            }
            let fanin = self.netlist.fanin(node);
            let x_pins: Vec<NodeId> = fanin
                .iter()
                .copied()
                .filter(|f| values[f.index()].good == Logic::X)
                .collect();
            if x_pins.is_empty() {
                return None; // objective line fully implied: dead end
            }
            match kind {
                GateKind::Buf => node = fanin[0],
                GateKind::Not => {
                    node = fanin[0];
                    value = !value;
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let inverting = kind.is_inverting();
                    let core_needed = value ^ inverting;
                    // AND-core: output 1 needs all 1 (hardest first);
                    // output 0 needs any 0 (easiest). OR-core is the dual.
                    let and_like = matches!(kind, GateKind::And | GateKind::Nand);
                    let (target, pick_hardest) = if and_like {
                        if core_needed {
                            (true, true)
                        } else {
                            (false, false)
                        }
                    } else if core_needed {
                        (true, false)
                    } else {
                        (false, true)
                    };
                    let chosen = if pick_hardest {
                        x_pins.iter().max_by_key(|&&p| self.cc.cost(p, target))
                    } else {
                        x_pins.iter().min_by_key(|&&p| self.cc.cost(p, target))
                    };
                    // x_pins is non-empty here; a miss is a dead end, not
                    // a panic.
                    node = *chosen?;
                    value = target;
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Parity: choose the first X input; its value is the
                    // required parity corrected by the other known inputs
                    // (X inputs other than the chosen one are treated as 0
                    // — a heuristic, corrected by implication).
                    let required = value ^ (kind == GateKind::Xnor);
                    let chosen = x_pins[0];
                    let mut parity = false;
                    for &f in fanin {
                        if f != chosen && values[f.index()].good == Logic::One {
                            parity = !parity;
                        }
                    }
                    node = chosen;
                    value = required ^ parity;
                }
                GateKind::Input => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_circuit::generators;
    use dlp_sim::stuck_at;

    /// Verifies a test cube truly detects the fault (binary simulation of
    /// good vs faulty with don't-cares filled with 0).
    fn cube_detects(netlist: &Netlist, fault: &StuckAtFault, cube: &[Option<bool>]) -> bool {
        let pis: Vec<Logic> = cube
            .iter()
            .map(|c| Logic::from_bool(c.unwrap_or(false)))
            .collect();
        let values = simulate_composite(netlist, fault, &pis);
        netlist.outputs().iter().any(|&o| values[o.index()].is_d())
    }

    #[test]
    fn c17_all_faults_get_verified_tests() {
        let c17 = generators::c17();
        let engine = Podem::new(&c17, 1000);
        for fault in stuck_at::enumerate(&c17).faults() {
            match engine.generate(fault) {
                PodemOutcome::Test(cube) => {
                    assert!(
                        cube_detects(&c17, fault, &cube),
                        "cube fails for {}",
                        fault.describe(&c17)
                    );
                }
                other => panic!("{}: {:?}", fault.describe(&c17), other),
            }
        }
    }

    #[test]
    fn detects_redundant_fault() {
        // z = OR(a, NOT a) is constant 1: z/SA1 is undetectable.
        let mut n = Netlist::new("red");
        let a = n.add_input("a").unwrap();
        let na = n.add_gate("na", GateKind::Not, vec![a]).unwrap();
        let z = n.add_gate("z", GateKind::Or, vec![a, na]).unwrap();
        n.mark_output(z);
        n.freeze();
        let engine = Podem::new(&n, 1000);
        let fault = StuckAtFault {
            site: FaultSite::Stem(z),
            stuck_at_one: true,
        };
        assert_eq!(engine.generate(&fault), PodemOutcome::Redundant);
        // The SA0 twin is trivially testable.
        let fault0 = StuckAtFault {
            site: FaultSite::Stem(z),
            stuck_at_one: false,
        };
        assert!(matches!(engine.generate(&fault0), PodemOutcome::Test(_)));
    }

    #[test]
    fn xor_heavy_circuit_is_handled() {
        let nl = generators::ripple_adder(4);
        let engine = Podem::new(&nl, 2000);
        let mut tested = 0;
        for fault in stuck_at::enumerate(&nl).collapse().faults() {
            match engine.generate(fault) {
                PodemOutcome::Test(cube) => {
                    assert!(cube_detects(&nl, fault, &cube), "{}", fault.describe(&nl));
                    tested += 1;
                }
                PodemOutcome::Redundant => {}
                PodemOutcome::Aborted => panic!("aborted on {}", fault.describe(&nl)),
            }
        }
        assert!(tested > 0);
    }

    #[test]
    fn branch_faults_get_tests() {
        let c17 = generators::c17();
        let engine = Podem::new(&c17, 1000);
        let g16 = c17.find("16").unwrap();
        for (pin, sa1) in [(0, true), (0, false), (1, true), (1, false)] {
            let fault = StuckAtFault {
                site: FaultSite::Branch { gate: g16, pin },
                stuck_at_one: sa1,
            };
            match engine.generate(&fault) {
                PodemOutcome::Test(cube) => {
                    assert!(
                        cube_detects(&c17, &fault, &cube),
                        "{}",
                        fault.describe(&c17)
                    );
                }
                other => panic!("{}: {:?}", fault.describe(&c17), other),
            }
        }
    }

    #[test]
    fn cubes_leave_dont_cares() {
        // For an easy fault in a wide circuit most PIs should stay X.
        let nl = generators::c432_class();
        let engine = Podem::new(&nl, 2000);
        let pi0 = nl.inputs()[0];
        let fault = StuckAtFault {
            site: FaultSite::Stem(pi0),
            stuck_at_one: true,
        };
        if let PodemOutcome::Test(cube) = engine.generate(&fault) {
            let assigned = cube.iter().filter(|c| c.is_some()).count();
            assert!(
                assigned < nl.inputs().len(),
                "PODEM should not assign every PI"
            );
        } else {
            panic!("PI fault must be testable");
        }
    }
}
