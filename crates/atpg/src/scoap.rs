//! SCOAP testability measures (Goldstein's controllability).
//!
//! `CC0(l)` / `CC1(l)` estimate the effort (number of line assignments) to
//! set line `l` to 0 / 1. PODEM's backtrace uses them to pick the easiest
//! input when one suffices and the hardest when all are needed — the same
//! cost guidance FAN applies to its head lines.

use dlp_circuit::{GateKind, Netlist, NodeId};

/// Controllability of every line of a netlist.
#[derive(Debug, Clone)]
pub struct Controllability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
}

impl Controllability {
    /// Computes SCOAP combinational controllabilities in one topological
    /// sweep.
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_atpg::scoap::Controllability;
    /// use dlp_circuit::generators;
    ///
    /// let c17 = generators::c17();
    /// let cc = Controllability::compute(&c17);
    /// let pi = c17.inputs()[0];
    /// assert_eq!(cc.cc0(pi), 1);
    /// assert_eq!(cc.cc1(pi), 1);
    /// ```
    pub fn compute(netlist: &Netlist) -> Self {
        let n = netlist.node_count();
        let mut cc0 = vec![0u32; n];
        let mut cc1 = vec![0u32; n];
        for id in netlist.node_ids() {
            let i = id.index();
            let fanin = netlist.fanin(id);
            let f0 = |x: NodeId| cc0[x.index()];
            let f1 = |x: NodeId| cc1[x.index()];
            let (c0, c1) = match netlist.kind(id) {
                GateKind::Input => (1, 1),
                GateKind::Buf => (f0(fanin[0]) + 1, f1(fanin[0]) + 1),
                GateKind::Not => (f1(fanin[0]) + 1, f0(fanin[0]) + 1),
                GateKind::And => (
                    fanin.iter().map(|&x| f0(x)).min().unwrap_or(0) + 1,
                    fanin.iter().map(|&x| f1(x)).sum::<u32>() + 1,
                ),
                GateKind::Nand => (
                    fanin.iter().map(|&x| f1(x)).sum::<u32>() + 1,
                    fanin.iter().map(|&x| f0(x)).min().unwrap_or(0) + 1,
                ),
                GateKind::Or => (
                    fanin.iter().map(|&x| f0(x)).sum::<u32>() + 1,
                    fanin.iter().map(|&x| f1(x)).min().unwrap_or(0) + 1,
                ),
                GateKind::Nor => (
                    fanin.iter().map(|&x| f1(x)).min().unwrap_or(0) + 1,
                    fanin.iter().map(|&x| f0(x)).sum::<u32>() + 1,
                ),
                GateKind::Xor | GateKind::Xnor => {
                    // Fold pairwise: cost of parity-0 / parity-1 over the
                    // inputs so far.
                    let mut p0 = f0(fanin[0]);
                    let mut p1 = f1(fanin[0]);
                    for &x in &fanin[1..] {
                        let (q0, q1) = (f0(x), f1(x));
                        let n0 = (p0 + q0).min(p1 + q1);
                        let n1 = (p0 + q1).min(p1 + q0);
                        p0 = n0;
                        p1 = n1;
                    }
                    if netlist.kind(id) == GateKind::Xor {
                        (p0 + 1, p1 + 1)
                    } else {
                        (p1 + 1, p0 + 1)
                    }
                }
            };
            cc0[i] = c0;
            cc1[i] = c1;
        }
        Controllability { cc0, cc1 }
    }

    /// Cost of driving the line to 0.
    pub fn cc0(&self, id: NodeId) -> u32 {
        self.cc0[id.index()]
    }

    /// Cost of driving the line to 1.
    pub fn cc1(&self, id: NodeId) -> u32 {
        self.cc1[id.index()]
    }

    /// Cost of driving the line to the given value.
    pub fn cost(&self, id: NodeId, value: bool) -> u32 {
        if value {
            self.cc1(id)
        } else {
            self.cc0(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_circuit::generators;
    use dlp_circuit::Netlist;

    #[test]
    fn primary_inputs_cost_one() {
        let c17 = generators::c17();
        let cc = Controllability::compute(&c17);
        for &pi in c17.inputs() {
            assert_eq!(cc.cc0(pi), 1);
            assert_eq!(cc.cc1(pi), 1);
        }
    }

    #[test]
    fn and_gate_asymmetry() {
        let mut n = Netlist::new("and3");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let c = n.add_input("c").unwrap();
        let g = n.add_gate("g", GateKind::And, vec![a, b, c]).unwrap();
        n.freeze();
        let cc = Controllability::compute(&n);
        assert_eq!(cc.cc0(g), 2, "one controlling 0 suffices");
        assert_eq!(cc.cc1(g), 4, "all three inputs must be 1");
    }

    #[test]
    fn inverter_swaps_costs() {
        let mut n = Netlist::new("chain");
        let a = n.add_input("a").unwrap();
        let b = n.add_gate("b", GateKind::And, vec![a, a]).unwrap();
        let inv = n.add_gate("i", GateKind::Not, vec![b]).unwrap();
        n.freeze();
        let cc = Controllability::compute(&n);
        assert_eq!(cc.cc0(inv), cc.cc1(b) + 1);
        assert_eq!(cc.cc1(inv), cc.cc0(b) + 1);
    }

    #[test]
    fn xor_controllability_is_balanced() {
        let mut n = Netlist::new("x");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let g = n.add_gate("g", GateKind::Xor, vec![a, b]).unwrap();
        n.freeze();
        let cc = Controllability::compute(&n);
        assert_eq!(cc.cc0(g), 3); // 1+1 (00 or 11) + 1
        assert_eq!(cc.cc1(g), 3);
    }

    #[test]
    fn deeper_lines_cost_more() {
        let nl = generators::ripple_adder(8);
        let cc = Controllability::compute(&nl);
        // CC0 of the carry chain grows along the ripple (an OR's CC0 sums
        // its inputs' CC0s), so the MSB carry is harder to zero than c0.
        let c0 = nl.find("c0").unwrap();
        let c7 = nl.find("c7").unwrap();
        assert!(
            cc.cc0(c7) > cc.cc0(c0),
            "c7 CC0 {} vs c0 CC0 {}",
            cc.cc0(c7),
            cc.cc0(c0)
        );
    }
}
