//! Property tests for static compaction: across seeded random netlists of
//! several shapes, the compacted set must detect *exactly* the faults the
//! full sequence detects — not merely the same count — and the counted
//! generalization must preserve per-fault detection tallies.

use dlp_atpg::compact::{compact, compact_counted};
use dlp_circuit::generators::{random_logic, RandomLogicConfig};
use dlp_sim::{detection, ppsfp, stuck_at};

/// The shape sweep: (inputs, gates, outputs, netlist seed, vector seed).
fn shapes() -> Vec<(usize, usize, usize, u64, u64)> {
    vec![
        (4, 12, 2, 3, 101),
        (8, 40, 4, 7, 103),
        (12, 90, 6, 11, 107),
        (16, 150, 8, 13, 109),
        (6, 25, 3, 17, 113),
    ]
}

#[test]
fn compact_preserves_the_exact_detected_set_on_random_netlists() {
    for (inputs, gates, outputs, seed, vseed) in shapes() {
        let nl = random_logic(&RandomLogicConfig {
            inputs,
            gates,
            outputs,
            seed,
        })
        .expect("random netlist");
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(inputs, 192, vseed);

        let full = ppsfp::simulate(&nl, faults.faults(), &vectors).expect("full sim");
        let compacted = compact(&nl, faults.faults(), &vectors).expect("compaction");
        let reduced =
            ppsfp::simulate(&nl, faults.faults(), &compacted.vectors).expect("compacted sim");

        // The exact per-fault detected set, not just its cardinality.
        let before: Vec<bool> = full.detected_after(vectors.len());
        let after: Vec<bool> = reduced.detected_after(compacted.vectors.len());
        assert_eq!(
            before, after,
            "detected set changed on rand({inputs},{gates},{outputs},{seed})"
        );
        assert!(
            compacted.vectors.len() <= vectors.len(),
            "compaction must never grow the set"
        );
        // Survivors keep their original relative order.
        assert!(compacted.kept.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn compact_counted_preserves_counts_on_random_netlists() {
    for (inputs, gates, outputs, seed, vseed) in shapes().into_iter().take(3) {
        let nl = random_logic(&RandomLogicConfig {
            inputs,
            gates,
            outputs,
            seed,
        })
        .expect("random netlist");
        let faults = stuck_at::enumerate(&nl).collapse();
        let vectors = detection::random_vectors(inputs, 192, vseed);
        for n in [1usize, 3] {
            let before =
                ppsfp::simulate_counted(&nl, faults.faults(), &vectors, n).expect("full counted");
            let compacted =
                compact_counted(&nl, faults.faults(), &vectors, n).expect("counted compaction");
            let after = ppsfp::simulate_counted(&nl, faults.faults(), &compacted.vectors, n)
                .expect("compacted counted");
            for j in 0..faults.len() {
                assert!(
                    after.count(j) >= before.count(j),
                    "fault {j} lost detections at n = {n} on \
                     rand({inputs},{gates},{outputs},{seed})"
                );
            }
        }
    }
}
