//! Bench: critical-area extraction cost versus the defect-size
//! integration resolution — the accuracy/runtime ablation called out in
//! `DESIGN.md` §5 — plus the serial-vs-parallel comparison of the
//! bridge-pair integration.

use dlp_circuit::generators;
use dlp_core::par::ThreadCount;
use dlp_extract::defects::DefectStatistics;
use dlp_extract::extractor::{extract_with, extract_with_threads, ExtractionConfig};
use dlp_layout::chip::ChipLayout;

#[path = "harness/mod.rs"]
mod harness;

fn main() {
    let mut report = harness::Report::new("critical_area");
    let netlist = generators::ripple_adder(4);
    let chip = ChipLayout::generate(&netlist, &Default::default()).expect("layout");
    let stats = DefectStatistics::maly_cmos();

    for samples in [2usize, 6, 12] {
        let config = ExtractionConfig {
            size_samples: samples,
            ..Default::default()
        };
        report.bench(&format!("critical_area/size_samples/{samples}"), || {
            extract_with(&chip, &stats, &config).expect("extract").len()
        });
    }
    for bin in [32i64, 64, 128] {
        let config = ExtractionConfig {
            bin,
            ..Default::default()
        };
        report.bench(&format!("critical_area/bin_size/{bin}"), || {
            extract_with(&chip, &stats, &config).expect("extract").len()
        });
    }

    // Serial vs parallel bridge-pair integration at high resolution (the
    // extraction hot path; the fault set is bit-identical either way).
    let config = ExtractionConfig {
        size_samples: 12,
        ..Default::default()
    };
    let mut serial = f64::NAN;
    for workers in [1usize, 2, 4] {
        let threads = ThreadCount::fixed(workers).unwrap();
        let ns = report.bench(&format!("critical_area/s12/threads{workers}"), || {
            extract_with_threads(&chip, &stats, &config, threads)
                .expect("extract")
                .len()
        });
        if workers == 1 {
            serial = ns;
        } else {
            report.record(&format!("critical_area/s12/speedup_t{workers}"), serial / ns);
        }
    }
    report.write();
}
