//! Criterion bench: critical-area extraction cost versus the defect-size
//! integration resolution — the accuracy/runtime ablation called out in
//! `DESIGN.md` §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlp_circuit::generators;
use dlp_extract::defects::DefectStatistics;
use dlp_extract::extractor::{extract_with, ExtractionConfig};
use dlp_layout::chip::ChipLayout;

fn bench_extraction(c: &mut Criterion) {
    let netlist = generators::ripple_adder(4);
    let chip = ChipLayout::generate(&netlist, &Default::default()).expect("layout");
    let stats = DefectStatistics::maly_cmos();

    let mut group = c.benchmark_group("critical_area");
    group.sample_size(10);
    for samples in [2usize, 6, 12] {
        group.bench_with_input(
            BenchmarkId::new("size_samples", samples),
            &samples,
            |b, &samples| {
                let config = ExtractionConfig {
                    size_samples: samples,
                    ..Default::default()
                };
                b.iter(|| extract_with(&chip, &stats, &config).len());
            },
        );
    }
    for bin in [32i64, 64, 128] {
        group.bench_with_input(BenchmarkId::new("bin_size", bin), &bin, |b, &bin| {
            let config = ExtractionConfig {
                bin,
                ..Default::default()
            };
            b.iter(|| extract_with(&chip, &stats, &config).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
