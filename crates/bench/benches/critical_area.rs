//! Bench: critical-area extraction cost versus the defect-size
//! integration resolution — the accuracy/runtime ablation called out in
//! `DESIGN.md` §5.

use dlp_circuit::generators;
use dlp_extract::defects::DefectStatistics;
use dlp_extract::extractor::{extract_with, ExtractionConfig};
use dlp_layout::chip::ChipLayout;

#[path = "harness/mod.rs"]
mod harness;

fn main() {
    let netlist = generators::ripple_adder(4);
    let chip = ChipLayout::generate(&netlist, &Default::default()).expect("layout");
    let stats = DefectStatistics::maly_cmos();

    for samples in [2usize, 6, 12] {
        let config = ExtractionConfig {
            size_samples: samples,
            ..Default::default()
        };
        harness::bench(&format!("critical_area/size_samples/{samples}"), || {
            extract_with(&chip, &stats, &config).expect("extract").len()
        });
    }
    for bin in [32i64, 64, 128] {
        let config = ExtractionConfig {
            bin,
            ..Default::default()
        };
        harness::bench(&format!("critical_area/bin_size/{bin}"), || {
            extract_with(&chip, &stats, &config).expect("extract").len()
        });
    }
}
