//! Criterion bench: PPSFP stuck-at fault simulation throughput — the
//! word-parallelism payoff (vectors are processed 64 at a time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlp_circuit::generators;
use dlp_sim::{detection, ppsfp, stuck_at};

fn bench_ppsfp(c: &mut Criterion) {
    let netlist = generators::c432_class();
    let faults = stuck_at::enumerate(&netlist).collapse();

    let mut group = c.benchmark_group("ppsfp");
    for vectors in [64usize, 256, 1024] {
        let vs = detection::random_vectors(netlist.inputs().len(), vectors, 7);
        group.throughput(Throughput::Elements(vectors as u64));
        group.bench_with_input(BenchmarkId::new("c432_class", vectors), &vs, |b, vs| {
            b.iter(|| ppsfp::simulate(&netlist, faults.faults(), vs).detected_count());
        });
    }
    group.finish();

    // Scaling with circuit size on random logic.
    let mut group = c.benchmark_group("ppsfp_scaling");
    group.sample_size(10);
    for gates in [100usize, 400, 1600] {
        let nl = generators::random_logic(&dlp_circuit::generators::RandomLogicConfig {
            inputs: 32,
            gates,
            outputs: 16,
            seed: 5,
        });
        let fl = stuck_at::enumerate(&nl).collapse();
        let vs = detection::random_vectors(32, 256, 11);
        group.bench_with_input(BenchmarkId::new("gates", gates), &gates, |b, _| {
            b.iter(|| ppsfp::simulate(&nl, fl.faults(), &vs).detected_count());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ppsfp);
criterion_main!(benches);
