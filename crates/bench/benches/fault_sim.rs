//! Bench: PPSFP stuck-at fault simulation throughput — the
//! word-parallelism payoff (vectors are processed 64 at a time), plus the
//! serial-vs-parallel comparison of the thread layer and the overhead of
//! the observability recorder (noop vs enabled vs untraced).

use dlp_circuit::generators;
use dlp_core::obs::Recorder;
use dlp_core::par::ThreadCount;
use dlp_sim::{detection, ppsfp, stuck_at};

#[path = "harness/mod.rs"]
mod harness;

fn main() {
    let mut report = harness::Report::new("fault_sim");
    let netlist = generators::c432_class();
    let faults = stuck_at::enumerate(&netlist).collapse();

    for vectors in [64usize, 256, 1024] {
        let vs = detection::random_vectors(netlist.inputs().len(), vectors, 7);
        report.bench(&format!("ppsfp/c432_class/{vectors}"), || {
            ppsfp::simulate(&netlist, faults.faults(), &vs)
                .unwrap()
                .detected_count()
        });
    }

    // Serial vs parallel on the acceptance workload (c432-class, 1024
    // vectors). Results are bit-identical across thread counts; only the
    // wall clock may differ.
    let vs = detection::random_vectors(netlist.inputs().len(), 1024, 7);
    let mut serial = f64::NAN;
    for workers in [1usize, 2, 4] {
        let threads = ThreadCount::fixed(workers).unwrap();
        let ns = report.bench(&format!("ppsfp/c432_class/1024/threads{workers}"), || {
            ppsfp::simulate_with(&netlist, faults.faults(), &vs, threads)
                .unwrap()
                .detected_count()
        });
        if workers == 1 {
            serial = ns;
        } else {
            report.record(
                &format!("ppsfp/c432_class/1024/speedup_t{workers}"),
                serial / ns,
            );
        }
    }

    // Observability overhead on the same workload: the untraced entry
    // point, an explicit no-op recorder, and a fully enabled recorder.
    // The tracing-off contract is near-zero overhead (a single bool
    // check per record call), so untraced/noop should be within noise;
    // the enabled ratio documents the price of a traced run.
    let threads = ThreadCount::fixed(1).unwrap();
    let untraced = report.bench("ppsfp/c432_class/1024/obs_off", || {
        ppsfp::simulate_with(&netlist, faults.faults(), &vs, threads)
            .unwrap()
            .detected_count()
    });
    let noop = report.bench("ppsfp/c432_class/1024/obs_noop", || {
        ppsfp::simulate_obs(&netlist, faults.faults(), &vs, threads, Recorder::noop())
            .unwrap()
            .detected_count()
    });
    let traced = report.bench("ppsfp/c432_class/1024/obs_on", || {
        let obs = Recorder::enabled();
        ppsfp::simulate_obs(&netlist, faults.faults(), &vs, threads, &obs)
            .unwrap()
            .detected_count()
    });
    report.record("ppsfp/c432_class/1024/obs_noop_ratio", noop / untraced);
    report.record("ppsfp/c432_class/1024/obs_on_ratio", traced / untraced);

    // Scaling with circuit size on random logic.
    for gates in [100usize, 400, 1600] {
        let nl = generators::random_logic(&dlp_circuit::generators::RandomLogicConfig {
            inputs: 32,
            gates,
            outputs: 16,
            seed: 5,
        })
        .expect("valid shape");
        let fl = stuck_at::enumerate(&nl).collapse();
        let vs = detection::random_vectors(32, 256, 11);
        report.bench(&format!("ppsfp_scaling/gates/{gates}"), || {
            ppsfp::simulate(&nl, fl.faults(), &vs).unwrap().detected_count()
        });
    }
    report.write();
}
