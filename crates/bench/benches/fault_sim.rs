//! Bench: PPSFP stuck-at fault simulation throughput — the
//! word-parallelism payoff (vectors are processed 64 at a time).

use dlp_circuit::generators;
use dlp_sim::{detection, ppsfp, stuck_at};

#[path = "harness/mod.rs"]
mod harness;

fn main() {
    let netlist = generators::c432_class();
    let faults = stuck_at::enumerate(&netlist).collapse();

    for vectors in [64usize, 256, 1024] {
        let vs = detection::random_vectors(netlist.inputs().len(), vectors, 7);
        harness::bench(&format!("ppsfp/c432_class/{vectors}"), || {
            ppsfp::simulate(&netlist, faults.faults(), &vs).unwrap().detected_count()
        });
    }

    // Scaling with circuit size on random logic.
    for gates in [100usize, 400, 1600] {
        let nl = generators::random_logic(&dlp_circuit::generators::RandomLogicConfig {
            inputs: 32,
            gates,
            outputs: 16,
            seed: 5,
        })
        .expect("valid shape");
        let fl = stuck_at::enumerate(&nl).collapse();
        let vs = detection::random_vectors(32, 256, 11);
        harness::bench(&format!("ppsfp_scaling/gates/{gates}"), || {
            ppsfp::simulate(&nl, fl.faults(), &vs).unwrap().detected_count()
        });
    }
}
