//! Minimal self-contained bench harness (the workspace builds offline, so
//! no criterion). Each measurement warms up, then reports the median of a
//! few timed batches as ns/iter. Invoked through `cargo bench` via the
//! `harness = false` targets.
//!
//! Measurements can additionally be collected into a [`Report`] that lands
//! as `BENCH_<name>.json` at the workspace root, so serial-vs-parallel
//! comparisons survive the run.

// Each `harness = false` target includes this file separately and uses a
// subset of it.
#![allow(dead_code)]

use std::time::Instant;

/// Times `f`, printing `name: <median> ns/iter (<batches> batches of
/// <iters>)`, and returns the median ns/iter.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) -> f64 {
    // Warm-up and batch sizing: grow the batch until it takes ≥ 10 ms.
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 10 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    const BATCHES: usize = 5;
    let mut samples = [0f64; BATCHES];
    for s in &mut samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        *s = t0.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[BATCHES / 2];
    println!("{name}: {median:.0} ns/iter ({BATCHES} batches of {iters})");
    median
}

/// Collects `(label, ns/iter)` entries and writes them as
/// `BENCH_<name>.json` at the workspace root.
pub struct Report {
    name: &'static str,
    entries: Vec<(String, f64)>,
}

impl Report {
    /// An empty report named `name` (the `BENCH_<name>.json` stem).
    pub fn new(name: &'static str) -> Self {
        Report {
            name,
            entries: Vec::new(),
        }
    }

    /// Runs [`bench`] and records its median under `label`.
    pub fn bench<R, F: FnMut() -> R>(&mut self, label: &str, f: F) -> f64 {
        let median = bench(label, f);
        self.record(label, median);
        median
    }

    /// Records an already-measured value (e.g. a derived speedup ratio).
    pub fn record(&mut self, label: &str, value: f64) {
        self.entries.push((label.to_string(), value));
    }

    /// Writes `BENCH_<name>.json` at the workspace root. Failures are
    /// reported but non-fatal — a read-only checkout still benches.
    pub fn write(&self) {
        let path = format!(
            "{}/../../BENCH_{}.json",
            env!("CARGO_MANIFEST_DIR"),
            self.name
        );
        let mut body = String::from("{\n");
        for (i, (label, value)) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            body.push_str(&format!("  \"{label}\": {value:.1}{sep}\n"));
        }
        body.push_str("}\n");
        match std::fs::write(&path, body) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
