//! Minimal self-contained bench harness (the workspace builds offline, so
//! no criterion). Each measurement warms up, then reports the median of a
//! few timed batches as ns/iter. Invoked through `cargo bench` via the
//! `harness = false` targets.
//!
//! Measurements can additionally be collected into a [`Report`] — a thin
//! wrapper over the versioned [`BenchReport`] schema from
//! `dlp_core::obs` — that lands as `BENCH_<name>.json` at the workspace
//! root, so serial-vs-parallel comparisons survive the run and
//! `perf_regress` can compare them against a committed baseline. Every
//! timed entry keeps its raw per-batch samples; derived ratios are
//! recorded without samples.

// Each `harness = false` target includes this file separately and uses a
// subset of it.
#![allow(dead_code)]

use std::time::Instant;

use dlp_core::obs::BenchReport;

/// Number of timed batches behind every reported median.
pub const BATCHES: usize = 5;

/// Times `f` over [`BATCHES`] batches (after auto-sized warm-up),
/// printing `name: <median> ns/iter (<batches> batches of <iters>)`, and
/// returns every batch's ns/iter.
pub fn bench_samples<R, F: FnMut() -> R>(name: &str, mut f: F) -> Vec<f64> {
    // Warm-up and batch sizing: grow the batch until it takes ≥ 10 ms.
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 10 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut samples = vec![0f64; BATCHES];
    for s in &mut samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        *s = t0.elapsed().as_nanos() as f64 / iters as f64;
    }
    let median = dlp_core::obs::bench::median(&samples);
    println!("{name}: {median:.0} ns/iter ({BATCHES} batches of {iters})");
    samples
}

/// [`bench_samples`], reduced to the median ns/iter.
pub fn bench<R, F: FnMut() -> R>(name: &str, f: F) -> f64 {
    dlp_core::obs::bench::median(&bench_samples(name, f))
}

/// Collects measurements into a [`BenchReport`] and writes it as
/// `BENCH_<name>.json` at the workspace root.
pub struct Report {
    inner: BenchReport,
}

impl Report {
    /// An empty report named `name` (the `BENCH_<name>.json` stem),
    /// capturing the current environment (threads, CPUs, git revision).
    pub fn new(name: &'static str) -> Self {
        Report {
            inner: BenchReport::new(name),
        }
    }

    /// Runs [`bench_samples`] and records label, unit (`ns/iter`), the
    /// median, and the raw batch samples. Returns the median.
    pub fn bench<R, F: FnMut() -> R>(&mut self, label: &str, f: F) -> f64 {
        let samples = bench_samples(label, f);
        self.inner.record_samples(label, "ns/iter", &samples);
        dlp_core::obs::bench::median(&samples)
    }

    /// Records an already-derived ratio (e.g. a speedup or overhead
    /// ratio) — no samples, unit `ratio`.
    pub fn record(&mut self, label: &str, value: f64) {
        self.inner.record(label, "ratio", value);
    }

    /// Writes `BENCH_<name>.json` at the workspace root. Failures are
    /// reported but non-fatal — a read-only checkout still benches.
    pub fn write(&self) {
        let path = format!(
            "{}/../../BENCH_{}.json",
            env!("CARGO_MANIFEST_DIR"),
            self.inner.name
        );
        match self.inner.write_to(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
