//! Minimal self-contained bench harness (the workspace builds offline, so
//! no criterion). Each measurement warms up, then reports the median of a
//! few timed batches as ns/iter. Invoked through `cargo bench` via the
//! `harness = false` targets.

use std::time::Instant;

/// Times `f`, printing `name: <median> ns/iter (<batches> batches of <iters>)`.
pub fn bench<R, F: FnMut() -> R>(name: &str, mut f: F) {
    // Warm-up and batch sizing: grow the batch until it takes ≥ 10 ms.
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 10 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    const BATCHES: usize = 5;
    let mut samples = [0f64; BATCHES];
    for s in &mut samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        *s = t0.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    println!(
        "{name}: {:.0} ns/iter ({BATCHES} batches of {iters})",
        samples[BATCHES / 2]
    );
}
