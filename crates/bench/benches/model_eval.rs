//! Criterion bench: defect-level model evaluation and fitting — the cheap
//! closed-form evaluations (eqs. 1, 2, 11) versus the Nelder–Mead fits.

use criterion::{criterion_group, criterion_main, Criterion};
use dlp_core::agrawal::AgrawalModel;
use dlp_core::fit;
use dlp_core::sousa::SousaModel;
use dlp_core::williams_brown;

fn bench_models(c: &mut Criterion) {
    let sousa = SousaModel::new(0.75, 1.9, 0.96).expect("model");
    let agrawal = AgrawalModel::new(0.75, 3.0).expect("model");

    c.bench_function("eval_williams_brown", |b| {
        b.iter(|| williams_brown::defect_level(std::hint::black_box(0.75), 0.9).unwrap());
    });
    c.bench_function("eval_sousa_eq11", |b| {
        b.iter(|| sousa.defect_level(std::hint::black_box(0.9)).unwrap());
    });
    c.bench_function("eval_agrawal_eq2", |b| {
        b.iter(|| agrawal.defect_level(std::hint::black_box(0.9)).unwrap());
    });
    c.bench_function("inverse_required_coverage", |b| {
        b.iter(|| {
            sousa
                .required_coverage(std::hint::black_box(100e-6))
                .unwrap()
        });
    });

    let points: Vec<(f64, f64)> = (0..=40)
        .map(|i| {
            let t = i as f64 / 40.0;
            (t, sousa.defect_level(t).unwrap())
        })
        .collect();
    c.bench_function("fit_sousa_41pts", |b| {
        b.iter(|| {
            fit::fit_sousa(0.75, &points)
                .unwrap()
                .susceptibility_ratio()
        });
    });
    c.bench_function("fit_agrawal_41pts", |b| {
        b.iter(|| fit::fit_agrawal(0.75, &points).unwrap().multiplicity());
    });
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
