//! Bench: defect-level model evaluation and fitting — the cheap
//! closed-form evaluations (eqs. 1, 2, 11) versus the Nelder–Mead fits —
//! plus the serial-vs-parallel comparison of the sharded Monte-Carlo
//! fallout simulation.

use dlp_core::agrawal::AgrawalModel;
use dlp_core::fit;
use dlp_core::montecarlo::{simulate_fallout_with, MonteCarloConfig};
use dlp_core::par::ThreadCount;
use dlp_core::sousa::SousaModel;
use dlp_core::weighted::FaultWeights;
use dlp_core::williams_brown;

#[path = "harness/mod.rs"]
mod harness;

fn main() {
    let mut report = harness::Report::new("model_eval");
    let sousa = SousaModel::new(0.75, 1.9, 0.96).expect("model");
    let agrawal = AgrawalModel::new(0.75, 3.0).expect("model");

    report.bench("eval_williams_brown", || {
        williams_brown::defect_level(std::hint::black_box(0.75), 0.9).unwrap()
    });
    report.bench("eval_sousa_eq11", || {
        sousa.defect_level(std::hint::black_box(0.9)).unwrap()
    });
    report.bench("eval_agrawal_eq2", || {
        agrawal.defect_level(std::hint::black_box(0.9)).unwrap()
    });
    // θ_max = 0.96 leaves a residual defect-level floor of ~1.1%, so the
    // inversion target must sit above it (100 ppm would be unreachable).
    report.bench("inverse_required_coverage", || {
        sousa.required_coverage(std::hint::black_box(0.02)).unwrap()
    });

    let points: Vec<(f64, f64)> = (0..=40)
        .map(|i| {
            let t = i as f64 / 40.0;
            (t, sousa.defect_level(t).unwrap())
        })
        .collect();
    report.bench("fit_sousa_41pts", || {
        fit::fit_sousa(0.75, &points)
            .unwrap()
            .susceptibility_ratio()
    });
    report.bench("fit_agrawal_41pts", || {
        fit::fit_agrawal(0.75, &points).unwrap().multiplicity()
    });

    // Serial vs parallel Monte-Carlo fallout over die shards (counts are
    // bit-identical across thread counts).
    let weights = FaultWeights::new(vec![1.0; 24])
        .expect("weights")
        .scaled_to_yield(0.75)
        .expect("scaled");
    let detected: Vec<bool> = (0..24).map(|j| j % 4 != 0).collect();
    let config = MonteCarloConfig {
        dies: 100_000,
        seed: 0x5EED,
    };
    let mut serial = f64::NAN;
    for workers in [1usize, 2, 4] {
        let threads = ThreadCount::fixed(workers).unwrap();
        let ns = report.bench(&format!("montecarlo/100k_dies/threads{workers}"), || {
            simulate_fallout_with(&weights, &detected, &config, threads)
                .unwrap()
                .escapes
        });
        if workers == 1 {
            serial = ns;
        } else {
            report.record(
                &format!("montecarlo/100k_dies/speedup_t{workers}"),
                serial / ns,
            );
        }
    }
    report.write();
}
