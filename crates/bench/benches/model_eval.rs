//! Bench: defect-level model evaluation and fitting — the cheap
//! closed-form evaluations (eqs. 1, 2, 11) versus the Nelder–Mead fits.

use dlp_core::agrawal::AgrawalModel;
use dlp_core::fit;
use dlp_core::sousa::SousaModel;
use dlp_core::williams_brown;

#[path = "harness/mod.rs"]
mod harness;

fn main() {
    let sousa = SousaModel::new(0.75, 1.9, 0.96).expect("model");
    let agrawal = AgrawalModel::new(0.75, 3.0).expect("model");

    harness::bench("eval_williams_brown", || {
        williams_brown::defect_level(std::hint::black_box(0.75), 0.9).unwrap()
    });
    harness::bench("eval_sousa_eq11", || {
        sousa.defect_level(std::hint::black_box(0.9)).unwrap()
    });
    harness::bench("eval_agrawal_eq2", || {
        agrawal.defect_level(std::hint::black_box(0.9)).unwrap()
    });
    harness::bench("inverse_required_coverage", || {
        sousa
            .required_coverage(std::hint::black_box(100e-6))
            .unwrap()
    });

    let points: Vec<(f64, f64)> = (0..=40)
        .map(|i| {
            let t = i as f64 / 40.0;
            (t, sousa.defect_level(t).unwrap())
        })
        .collect();
    harness::bench("fit_sousa_41pts", || {
        fit::fit_sousa(0.75, &points)
            .unwrap()
            .susceptibility_ratio()
    });
    harness::bench("fit_agrawal_41pts", || {
        fit::fit_agrawal(0.75, &points).unwrap().multiplicity()
    });
}
