//! Criterion bench: switch-level simulation — good-circuit evaluation and
//! per-fault detection cost (the event-driven component scheduling is what
//! keeps the Fig. 4–6 pipeline affordable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlp_circuit::{generators, switch};
use dlp_sim::detection::random_vectors;
use dlp_sim::switchlevel::{SwitchConfig, SwitchFault, SwitchSimulator};

fn bench_switch(c: &mut Criterion) {
    let netlist = generators::c432_class();
    let sw = switch::expand(&netlist).expect("expand");
    let sim = SwitchSimulator::new(sw, SwitchConfig::default());
    let vectors = random_vectors(netlist.inputs().len(), 256, 3);

    let mut group = c.benchmark_group("switch_sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(vectors.len() as u64));
    group.bench_function("good_c432_256v", |b| {
        b.iter(|| sim.run_good(&vectors).len());
    });

    // One fault of each family, detection over the full sequence.
    let n10 = sim
        .netlist()
        .node_of_net(netlist.node_ids().nth(40).expect("node"));
    let n20 = sim
        .netlist()
        .node_of_net(netlist.node_ids().nth(80).expect("node"));
    let faults = vec![
        ("bridge", SwitchFault::Bridge { a: n10, b: n20 }),
        ("stuck_open", SwitchFault::StuckOpen { transistor: 11 }),
        ("stuck_on", SwitchFault::StuckOn { transistor: 12 }),
        (
            "floating_input",
            SwitchFault::FloatingInput {
                net: n10,
                owners: netlist
                    .fanout(netlist.node_ids().nth(40).expect("node"))
                    .to_vec(),
                level: dlp_sim::switchlevel::Logic::One,
            },
        ),
    ];
    for (name, fault) in faults {
        group.bench_with_input(BenchmarkId::new("detect", name), &fault, |b, fault| {
            b.iter(|| {
                sim.detect(std::slice::from_ref(fault), &vectors)
                    .detected_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_switch);
criterion_main!(benches);
