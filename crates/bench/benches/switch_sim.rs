//! Bench: switch-level simulation — good-circuit evaluation and
//! per-fault detection cost (the event-driven component scheduling is what
//! keeps the Fig. 4–6 pipeline affordable), plus the serial-vs-parallel
//! comparison of fanning a fault list across workers.

use dlp_circuit::{generators, switch};
use dlp_core::par::ThreadCount;
use dlp_sim::detection::random_vectors;
use dlp_sim::switchlevel::{DetectionMode, SwitchConfig, SwitchFault, SwitchSimulator};

#[path = "harness/mod.rs"]
mod harness;

fn main() {
    let mut report = harness::Report::new("switch_sim");
    let netlist = generators::c432_class();
    let sw = switch::expand(&netlist).expect("expand");
    let sim = SwitchSimulator::new(sw, SwitchConfig::default());
    let vectors = random_vectors(netlist.inputs().len(), 256, 3);

    report.bench("switch_sim/good_c432_256v", || sim.run_good(&vectors).len());

    // One fault of each family, detection over the full sequence.
    let n10 = sim
        .netlist()
        .node_of_net(netlist.node_ids().nth(40).expect("node"));
    let n20 = sim
        .netlist()
        .node_of_net(netlist.node_ids().nth(80).expect("node"));
    let faults = vec![
        ("bridge", SwitchFault::Bridge { a: n10, b: n20 }),
        ("stuck_open", SwitchFault::StuckOpen { transistor: 11 }),
        ("stuck_on", SwitchFault::StuckOn { transistor: 12 }),
        (
            "floating_input",
            SwitchFault::FloatingInput {
                net: n10,
                owners: netlist
                    .fanout(netlist.node_ids().nth(40).expect("node"))
                    .to_vec(),
                level: dlp_sim::switchlevel::Logic::One,
            },
        ),
    ];
    for (name, fault) in &faults {
        report.bench(&format!("switch_sim/detect/{name}"), || {
            sim.detect(std::slice::from_ref(fault), &vectors)
                .unwrap()
                .detected_count()
        });
    }

    // Serial vs parallel over a fault list fanned across workers (the
    // per-fault simulations are independent; the record is bit-identical).
    let fanned: Vec<SwitchFault> = (0..16)
        .map(|i| SwitchFault::StuckOpen { transistor: i * 7 })
        .collect();
    let short = random_vectors(netlist.inputs().len(), 64, 3);
    let mut serial = f64::NAN;
    for workers in [1usize, 2, 4] {
        let threads = ThreadCount::fixed(workers).unwrap();
        let ns = report.bench(&format!("switch_sim/detect16/threads{workers}"), || {
            sim.detect_with_threads(&fanned, &short, DetectionMode::Voltage, threads)
                .unwrap()
                .detected_count()
        });
        if workers == 1 {
            serial = ns;
        } else {
            report.record(
                &format!("switch_sim/detect16/speedup_t{workers}"),
                serial / ns,
            );
        }
    }
    report.write();
}
