//! Bench: switch-level simulation — good-circuit evaluation and
//! per-fault detection cost (the event-driven component scheduling is what
//! keeps the Fig. 4–6 pipeline affordable).

use dlp_circuit::{generators, switch};
use dlp_sim::detection::random_vectors;
use dlp_sim::switchlevel::{SwitchConfig, SwitchFault, SwitchSimulator};

#[path = "harness/mod.rs"]
mod harness;

fn main() {
    let netlist = generators::c432_class();
    let sw = switch::expand(&netlist).expect("expand");
    let sim = SwitchSimulator::new(sw, SwitchConfig::default());
    let vectors = random_vectors(netlist.inputs().len(), 256, 3);

    harness::bench("switch_sim/good_c432_256v", || sim.run_good(&vectors).len());

    // One fault of each family, detection over the full sequence.
    let n10 = sim
        .netlist()
        .node_of_net(netlist.node_ids().nth(40).expect("node"));
    let n20 = sim
        .netlist()
        .node_of_net(netlist.node_ids().nth(80).expect("node"));
    let faults = vec![
        ("bridge", SwitchFault::Bridge { a: n10, b: n20 }),
        ("stuck_open", SwitchFault::StuckOpen { transistor: 11 }),
        ("stuck_on", SwitchFault::StuckOn { transistor: 12 }),
        (
            "floating_input",
            SwitchFault::FloatingInput {
                net: n10,
                owners: netlist
                    .fanout(netlist.node_ids().nth(40).expect("node"))
                    .to_vec(),
                level: dlp_sim::switchlevel::Logic::One,
            },
        ),
    ];
    for (name, fault) in faults {
        harness::bench(&format!("switch_sim/detect/{name}"), || {
            sim.detect(std::slice::from_ref(&fault), &vectors)
                .unwrap()
                .detected_count()
        });
    }
}
