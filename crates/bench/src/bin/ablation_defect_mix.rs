//! Ablation (DESIGN.md §5): defect-statistics mix versus the
//! susceptibility ratio `R`.
//!
//! The paper argues `R > 1` *because* bridging faults dominate in
//! positive-photoresist CMOS lines. Flipping the line to open-heavy should
//! pull `R` down toward (or below) 1 — the model parameters are physical,
//! not curve-fitting artefacts.

use dlp_bench::pipeline::{self, PAPER_YIELD};
use dlp_bench::print_table;
use dlp_core::fit;
use dlp_extract::defects::DefectStatistics;

fn run_line(
    name: &str,
    stats: &DefectStatistics,
) -> Result<(String, f64, f64, f64), dlp_core::PipelineError> {
    eprintln!("pipeline ({name} line)...");
    let ex = pipeline::extract_c432(stats)?;
    dlp_bench::report_diagnostics(&ex.diagnostics);
    let run = pipeline::simulate(&ex, 1994)?;
    let samples = pipeline::curve_samples(&ex, &run)?;
    let points: Vec<(f64, f64)> = samples.iter().map(|&(_, t, _, _, dl)| (t, dl)).collect();
    let fitted = fit::fit_sousa(PAPER_YIELD, &points)?;
    let share = ex.faults.bridge_weight() / (ex.faults.bridge_weight() + ex.faults.open_weight());
    Ok((
        name.to_string(),
        share,
        fitted.susceptibility_ratio(),
        fitted.theta_max(),
    ))
}

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    let lines = [
        run_line("bridge-heavy (Maly)", &DefectStatistics::maly_cmos())?,
        run_line("open-heavy (ablation)", &DefectStatistics::open_heavy())?,
    ];
    println!("\nAblation: defect mix vs fitted (R, theta_max), c432-class, Y = 0.75\n");
    let rows: Vec<Vec<String>> = lines
        .iter()
        .map(|(name, share, r, tmax)| {
            vec![
                name.clone(),
                format!("{:.1} %", 100.0 * share),
                format!("{r:.2}"),
                format!("{tmax:.3}"),
            ]
        })
        .collect();
    print_table(&["process line", "bridge share", "R", "theta_max"], &rows);

    let r_bridge = lines[0].2;
    let r_open = lines[1].2;
    println!("\nR(bridge-heavy) = {r_bridge:.2} vs R(open-heavy) = {r_open:.2}");
    assert!(
        r_bridge > r_open,
        "bridge dominance must raise the susceptibility ratio"
    );
    println!("ablation check passed: R tracks the physical defect mix.");
    Ok(())
}
