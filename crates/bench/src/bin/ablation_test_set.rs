//! Ablation (DESIGN.md §5): test-set composition versus `theta_max`.
//!
//! Random-only versus random+deterministic vector sequences: the
//! deterministic top-up raises the stuck-at endpoint `T` but barely moves
//! the realistic saturation `theta_max` — supporting the paper's claim
//! that "the main limitation resides in the detection technique rather
//! than in the test length".

use dlp_bench::pipeline;
use dlp_bench::print_table;
use dlp_extract::defects::DefectStatistics;
use dlp_extract::faults::OpenLevelModel;
use dlp_sim::switchlevel::{SwitchConfig, SwitchSimulator};
use dlp_sim::{detection, ppsfp, stuck_at};

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    eprintln!("layout + extraction (c432-class)...");
    let ex = pipeline::extract_c432(&DefectStatistics::maly_cmos())?;
    dlp_bench::report_diagnostics(&ex.diagnostics);
    let netlist = &ex.netlist;
    let w = ex.faults.weights();

    let sw = dlp_circuit::switch::expand(netlist)?;
    let sim = SwitchSimulator::new(sw, SwitchConfig::default());
    let lowered = ex
        .faults
        .to_switch_faults(netlist, sim.netlist(), &OpenLevelModel::default())?;
    let sa = stuck_at::enumerate(netlist).collapse();

    let mut rows = Vec::new();
    // Random-only sequences of growing length, then the full ATPG recipe.
    for &n in &[256usize, 1024, 4096] {
        eprintln!("random-only, {n} vectors...");
        let vectors = detection::random_vectors(36, n, 1994);
        let t = ppsfp::simulate(netlist, sa.faults(), &vectors)?.coverage_after(n);
        let rec = sim.detect(&lowered, &vectors)?;
        let theta = rec.weighted_coverage_after(n, &w)?;
        rows.push(vec![
            format!("random x{n}"),
            format!("{:.4}", t),
            format!("{theta:.4}"),
        ]);
    }
    eprintln!("random + deterministic (full ATPG)...");
    let run = pipeline::simulate(&ex, 1994)?;
    let k = run.vectors.len();
    rows.push(vec![
        format!("ATPG x{k}"),
        format!("{:.4}", run.record_t.coverage_after(k)),
        format!("{:.4}", run.record_theta.weighted_coverage_after(k, &w)?),
    ]);

    println!("\nAblation: test-set composition vs coverages, c432-class\n");
    print_table(&["test set", "T", "theta"], &rows);
    println!("\nobservation: quadrupling random vectors or adding deterministic");
    println!("stuck-at tests moves T far more than theta — the theta ceiling is");
    println!("set by the voltage detection technique, exactly the paper's point");
    println!("about needing IDDQ/delay tests for a zero-defect strategy.");
    Ok(())
}
