//! Ablation (DESIGN.md §5): weighted vs unweighted fault sets.
//!
//! The Fig. 5 / Fig. 6 contrast, quantified: predict the defect level from
//! the *unweighted* coverage `Γ` (as if all realistic faults were equally
//! likely, Huisman's hypothesis) and measure its error against the
//! weighted ground truth `DL(θ)` at every test length.

use dlp_bench::pipeline::{self, PAPER_YIELD};
use dlp_bench::print_table;
use dlp_core::sousa::SousaModel;
use dlp_extract::defects::DefectStatistics;

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    eprintln!("pipeline (c432-class)...");
    let ex = pipeline::extract_c432(&DefectStatistics::maly_cmos())?;
    dlp_bench::report_diagnostics(&ex.diagnostics);
    let run = pipeline::simulate(&ex, 1994)?;
    let samples = pipeline::curve_samples(&ex, &run)?;
    let naive = SousaModel::williams_brown(PAPER_YIELD)?;

    println!("Ablation: weighted DL(theta) vs unweighted prediction 1-Y^(1-Gamma)\n");
    let mut worst: f64 = 0.0;
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|&(k, _, theta, gamma, dl)| {
            let unweighted = naive.defect_level(gamma).unwrap();
            let err = (unweighted - dl).abs() / dl.max(1e-9);
            worst = worst.max(err);
            vec![
                format!("{k}"),
                format!("{theta:.4}"),
                format!("{gamma:.4}"),
                format!("{:.0}", 1e6 * dl),
                format!("{:.0}", 1e6 * unweighted),
                format!("{:.0} %", 100.0 * err),
            ]
        })
        .collect();
    print_table(
        &[
            "k",
            "theta",
            "Gamma",
            "DL(theta) ppm",
            "DL(Gamma) ppm",
            "rel err",
        ],
        &rows,
    );
    println!(
        "\nworst relative error of the unweighted prediction: {:.0} %",
        100.0 * worst
    );
    println!("conclusion: ignoring fault weights mispredicts DL even with a");
    println!("complete realistic fault list — eq. 4's weighting is essential.");
    assert!(
        worst > 0.10,
        "the ablation should show a visible (>10 %) error"
    );
    Ok(())
}
