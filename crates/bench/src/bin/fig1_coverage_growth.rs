//! Figure 1 of the paper: the analytic coverage-growth curves
//! `T(k) = 1 − e^(−ln k / ln τ_T)` (eq. 7) and
//! `θ(k) = θ_max (1 − e^(−ln k / ln τ_θ))` (eq. 8) for the paper's
//! illustration parameters `τ_T = e³`, `τ_θ = e²`, `θ_max = 0.96`,
//! k = 1 … 10⁶.
//!
//! Expected shape: θ(k) rises *faster* (lower susceptibility — the
//! weighted realistic faults are dominated by easy bridges) but saturates
//! at θ_max < 1, while T(k) grinds on toward 1; the curves cross.

use dlp_bench::{ascii_plot, print_table, to_csv, Series};
use dlp_core::coverage::CoverageGrowth;

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    let tau_t = 3.0f64.exp();
    let tau_theta = 2.0f64.exp();
    let theta_max = 0.96;
    let t = CoverageGrowth::new(tau_t, 1.0)?;
    let th = CoverageGrowth::new(tau_theta, theta_max)?;

    let ks: Vec<u64> = (0..=24)
        .map(|e| (10f64.powf(e as f64 / 4.0)) as u64)
        .collect();
    let t_series = Series::new(
        "T(k)",
        ks.iter().map(|&k| ((k as f64).log10(), t.at(k))).collect(),
    );
    let th_series = Series::new(
        "theta(k)",
        ks.iter().map(|&k| ((k as f64).log10(), th.at(k))).collect(),
    );

    println!("Fig. 1 — coverage growth under random vectors");
    println!("parameters: tau_T = e^3, tau_theta = e^2, theta_max = 0.96\n");
    let rows: Vec<Vec<String>> = ks
        .iter()
        .map(|&k| {
            vec![
                format!("{k}"),
                format!("{:.4}", t.at(k)),
                format!("{:.4}", th.at(k)),
            ]
        })
        .collect();
    print_table(&["k", "T(k)", "theta(k)"], &rows);

    println!(
        "\n{}",
        ascii_plot(&[t_series.clone(), th_series.clone()], 72, 18)
    );
    println!("(x axis: log10 k)");
    println!("\nCSV:\n{}", to_csv(&[t_series, th_series]));

    // Shape assertions (the acceptance criteria of DESIGN.md §4).
    assert!(th.at(10) > t.at(10), "theta leads at small k");
    assert!(
        t.at(1_000_000) > th.at(1_000_000),
        "T overtakes at saturation"
    );
    assert!(th.at(1_000_000) <= theta_max + 1e-12);
    println!("shape checks passed: theta leads early, T overtakes near saturation.");
    Ok(())
}
