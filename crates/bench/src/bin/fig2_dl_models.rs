//! Figure 2 of the paper: `DL(T)` for the Williams–Brown model against the
//! new model (eq. 11) with `R = 2`, `θ_max = 0.96` at `Y = 0.75` — the
//! "typical case" plot showing the concave deviation observed in real
//! fallout data.

use dlp_bench::{ascii_plot, print_table, to_csv, Series};
use dlp_core::sousa::SousaModel;

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    let y = 0.75;
    let wb = SousaModel::williams_brown(y)?;
    let sousa = SousaModel::new(y, 2.0, 0.96)?;

    let samples = 40usize;
    let wb_series = Series::new("Williams-Brown", wb.curve(samples).into_iter().collect());
    let sousa_series = Series::new(
        "eq.11 (R=2, theta_max=0.96)",
        sousa.curve(samples).into_iter().collect(),
    );

    println!("Fig. 2 — DL(T) at Y = {y}\n");
    let rows: Vec<Vec<String>> = (0..=10)
        .map(|i| {
            let t = i as f64 / 10.0;
            vec![
                format!("{:.0}", 100.0 * t),
                format!("{:.0}", 1e6 * wb.defect_level(t).unwrap()),
                format!("{:.0}", 1e6 * sousa.defect_level(t).unwrap()),
            ]
        })
        .collect();
    print_table(&["T %", "WB ppm", "eq.11 ppm"], &rows);

    println!(
        "\n{}",
        ascii_plot(&[wb_series.clone(), sousa_series.clone()], 72, 18)
    );
    println!("CSV:\n{}", to_csv(&[wb_series, sousa_series]));

    // Shape assertions: below WB at mid coverage, above at full coverage,
    // with the residual floor 1 - Y^(1-theta_max).
    let mid = sousa.defect_level(0.5)?;
    let mid_wb = wb.defect_level(0.5)?;
    assert!(mid < mid_wb, "eq.11 dips below WB mid-range");
    assert!(sousa.defect_level(1.0)? > 0.0, "residual floor at T = 1");
    println!(
        "shape checks passed: concave dip below WB, residual floor {:.0} ppm.",
        1e6 * sousa.residual_defect_level()
    );
    Ok(())
}
