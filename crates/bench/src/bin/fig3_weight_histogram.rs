//! Figure 3 of the paper: the histogram of extracted fault weights for the
//! c432-class standard-cell layout.
//!
//! The paper's point: occurrence probabilities disperse over roughly three
//! decades (~10⁻⁹..10⁻⁶ before scaling), which "clearly invalidates the
//! assumption that this effect could be negligible" (Huisman's
//! equal-probability hypothesis).

use dlp_bench::pipeline::{self, PAPER_YIELD};
use dlp_bench::print_table;
use dlp_core::weighted::FaultWeights;
use dlp_extract::defects::DefectStatistics;

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    eprintln!("building layout and extracting faults (c432-class)...");
    let ex = pipeline::extract_c432(&DefectStatistics::maly_cmos())?;
    dlp_bench::report_diagnostics(&ex.diagnostics);
    println!(
        "chip: {} x {} λ, {} shapes; {} weighted faults (bridge share {:.1} %)",
        ex.chip.bbox().width(),
        ex.chip.bbox().height(),
        ex.chip.shapes().len(),
        ex.faults.len(),
        100.0 * ex.faults.bridge_weight() / (ex.faults.bridge_weight() + ex.faults.open_weight())
    );

    let weights = FaultWeights::new(ex.faults.weights())?.scaled_to_yield(PAPER_YIELD)?;
    println!(
        "yield-scaled to Y = {PAPER_YIELD}: total weight {:.4}\n",
        weights.total_weight()
    );

    let bins = 14;
    let (edges, counts) = weights.log_weight_histogram(bins);
    println!("Fig. 3 — histogram of log10(fault weight)");
    let peak = *counts.iter().max().unwrap_or(&1);
    let rows: Vec<Vec<String>> = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            vec![
                format!("[{:.2}, {:.2})", edges[i], edges[i + 1]),
                format!("{c}"),
                "#".repeat(1 + c * 48 / peak.max(1)),
            ]
        })
        .collect();
    print_table(&["log10(w)", "count", ""], &rows);

    let dispersion = weights.weight_dispersion_decades();
    println!("\nweight dispersion: {dispersion:.1} decades (paper: ≈3 decades for c432)");
    assert!(
        dispersion >= 2.5,
        "acceptance: dispersion must span ≥2.5 decades, got {dispersion:.2}"
    );
    println!("acceptance check passed: dispersion ≥ 2.5 decades.");
    Ok(())
}
