//! Figure 4 of the paper: measured fault coverage versus test length for
//! the c432-class chip — stuck-at `T(k)` (gate-level), weighted realistic
//! `θ(k)` and unweighted realistic `Γ(k)` (switch-level).
//!
//! Expected shape (the paper's §4): the three curves have distinct
//! susceptibilities; `θ` saturates below 1 (voltage-undetectable opens),
//! and the weighted curve's susceptibility `τ_θ` is *smaller* than `τ_T`
//! (bridges dominate the weight and are easy), so `R > 1`.

use dlp_bench::pipeline;
use dlp_bench::{ascii_plot, print_table, to_csv, Series};
use dlp_core::fit;
use dlp_extract::defects::DefectStatistics;

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    eprintln!("stage 1: layout + extraction...");
    let ex = pipeline::extract_c432(&DefectStatistics::maly_cmos())?;
    dlp_bench::report_diagnostics(&ex.diagnostics);
    eprintln!(
        "stage 2: ATPG + fault simulation ({} realistic faults)...",
        ex.faults.len()
    );
    let run = pipeline::simulate(&ex, 1994)?;
    let samples = pipeline::curve_samples(&ex, &run)?;

    println!(
        "Fig. 4 — coverage vs test length, c432-class ({} vectors: {} random + {} deterministic)\n",
        run.vectors.len(),
        run.random_prefix,
        run.vectors.len() - run.random_prefix
    );
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|&(k, t, theta, gamma, _)| {
            vec![
                format!("{k}"),
                format!("{t:.4}"),
                format!("{theta:.4}"),
                format!("{gamma:.4}"),
            ]
        })
        .collect();
    print_table(&["k", "T(k)", "theta(k)", "Gamma(k)"], &rows);

    let series = vec![
        Series::new(
            "T",
            samples
                .iter()
                .map(|&(k, t, ..)| ((k as f64).log10(), t))
                .collect(),
        ),
        Series::new(
            "theta",
            samples
                .iter()
                .map(|&(k, _, th, ..)| ((k as f64).log10(), th))
                .collect(),
        ),
        Series::new(
            "Gamma",
            samples
                .iter()
                .map(|&(k, _, _, g, _)| ((k as f64).log10(), g))
                .collect(),
        ),
    ];
    println!("\n{}", ascii_plot(&series, 72, 18));
    println!("(x axis: log10 k)\nCSV:\n{}", to_csv(&series));

    // Fit susceptibilities to the measured curves (eqs. 7-8) and report
    // the susceptibility ratio R (eq. 10).
    let t_pts: Vec<(u64, f64)> = samples.iter().map(|&(k, t, ..)| (k as u64, t)).collect();
    let th_pts: Vec<(u64, f64)> = samples
        .iter()
        .map(|&(k, _, th, ..)| (k as u64, th))
        .collect();
    let g_pts: Vec<(u64, f64)> = samples
        .iter()
        .map(|&(k, _, _, g, _)| (k as u64, g))
        .collect();
    let fit_t = fit::fit_coverage_growth(&t_pts, true)?;
    let fit_th = fit::fit_coverage_growth(&th_pts, true)?;
    let fit_g = fit::fit_coverage_growth(&g_pts, true)?;
    println!(
        "susceptibility fits: ln tau_T = {:.2} (sat {:.3}), ln tau_theta = {:.2} (sat {:.3}), ln tau_Gamma = {:.2} (sat {:.3})",
        fit_t.tau().ln(),
        fit_t.max(),
        fit_th.tau().ln(),
        fit_th.max(),
        fit_g.tau().ln(),
        fit_g.max(),
    );
    let r = fit_t.tau().ln() / fit_th.tau().ln();
    println!("susceptibility ratio R = ln tau_T / ln tau_theta = {r:.2}");

    // Acceptance criteria (DESIGN.md §4).
    let last = samples.last().expect("samples");
    assert!(
        r > 1.0,
        "R must exceed 1 in a bridge-heavy line (got {r:.2})"
    );
    assert!(
        fit_th.max() < 0.995,
        "theta must saturate below 1 (got {:.4})",
        fit_th.max()
    );
    assert!(
        last.1 > 0.8,
        "random+deterministic vectors reach high stuck-at coverage"
    );
    println!("\nacceptance checks passed: R > 1, theta_max < 1, final T > 0.8.");
    Ok(())
}
