//! Figure 5 of the paper: simulated defect level versus stuck-at coverage
//! `(T(k), DL(θ(k)))` for the c432-class chip at `Y = 0.75`, against the
//! Williams–Brown prediction and the fitted eq. 11 curve.
//!
//! The paper fit `R = 1.9`, `θ_max = 0.96` on its real c432 layout; we fit
//! the same two parameters to our simulated points and check the same
//! qualitative shape: the simulated fallout dips *below* Williams–Brown at
//! moderate coverage and stays *above* it (residual floor) at high
//! coverage.

use dlp_bench::pipeline::{self, PAPER_YIELD};
use dlp_bench::{ascii_plot, print_table, to_csv, Series};
use dlp_core::fit;
use dlp_core::sousa::SousaModel;
use dlp_extract::defects::DefectStatistics;

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    eprintln!("stage 1: layout + extraction...");
    let ex = pipeline::extract_c432(&DefectStatistics::maly_cmos())?;
    dlp_bench::report_diagnostics(&ex.diagnostics);
    eprintln!("stage 2: ATPG + fault simulation...");
    let run = pipeline::simulate(&ex, 1994)?;
    let samples = pipeline::curve_samples(&ex, &run)?;

    let points: Vec<(f64, f64)> = samples.iter().map(|&(_, t, _, _, dl)| (t, dl)).collect();
    let fitted = fit::fit_sousa(PAPER_YIELD, &points)?;
    let wb = SousaModel::williams_brown(PAPER_YIELD)?;

    println!("Fig. 5 — DL vs stuck-at coverage, c432-class, Y = {PAPER_YIELD}\n");
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|&(k, t, _, _, dl)| {
            vec![
                format!("{k}"),
                format!("{:.2}", 100.0 * t),
                format!("{:.0}", 1e6 * dl),
                format!("{:.0}", 1e6 * wb.defect_level(t).unwrap()),
                format!("{:.0}", 1e6 * fitted.defect_level(t).unwrap()),
            ]
        })
        .collect();
    print_table(&["k", "T %", "sim DL ppm", "WB ppm", "fit ppm"], &rows);

    println!(
        "\nfitted eq. 11: R = {:.2}, theta_max = {:.3}   (paper, real c432: R = 1.9, theta_max = 0.96)",
        fitted.susceptibility_ratio(),
        fitted.theta_max()
    );
    println!(
        "residual defect level: {:.0} ppm",
        1e6 * fitted.residual_defect_level()
    );

    let sim_series = Series::new("simulated", points.clone());
    let wb_series = Series::new("Williams-Brown", wb.curve(40));
    let fit_series = Series::new("fitted eq.11", fitted.curve(40));
    println!(
        "\n{}",
        ascii_plot(
            &[wb_series.clone(), fit_series.clone(), sim_series.clone()],
            72,
            18
        )
    );
    println!("CSV (model curves):\n{}", to_csv(&[wb_series, fit_series]));
    println!("CSV (simulated points):\n{}", to_csv(&[sim_series]));

    // Acceptance criteria (DESIGN.md §4): concavity relative to WB and the
    // paper's parameter regime.
    let mid = samples.iter().find(|&&(_, t, ..)| (0.3..0.9).contains(&t));
    if let Some(&(_, t, _, _, dl)) = mid {
        assert!(
            dl < wb.defect_level(t)?,
            "simulated DL must dip below WB at T = {t:.2}"
        );
    }
    let last = samples.last().expect("samples");
    assert!(
        last.4 > wb.defect_level(last.1)?,
        "simulated DL must exceed WB near full coverage (residual floor)"
    );
    assert!(fitted.susceptibility_ratio() > 1.0, "R > 1");
    assert!(fitted.theta_max() < 1.0, "theta_max < 1");
    println!("\nacceptance checks passed: concavity, R > 1, theta_max < 1.");
    Ok(())
}
