//! Figure 6 of the paper: simulated defect level against the *unweighted*
//! realistic fault coverage `(Γ(k), DL(θ(k)))`, versus the naive
//! prediction `DL = 1 − Y^(1−Γ)`.
//!
//! The paper's point: even with a complete realistic fault list, ignoring
//! the weights mispredicts the defect level the same way the stuck-at
//! model does — "the fault set must be weighted according to eq. 4".

use dlp_bench::pipeline::{self, PAPER_YIELD};
use dlp_bench::{ascii_plot, print_table, to_csv, Series};
use dlp_core::sousa::SousaModel;
use dlp_extract::defects::DefectStatistics;

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    eprintln!("stage 1: layout + extraction...");
    let ex = pipeline::extract_c432(&DefectStatistics::maly_cmos())?;
    dlp_bench::report_diagnostics(&ex.diagnostics);
    eprintln!("stage 2: ATPG + fault simulation...");
    let run = pipeline::simulate(&ex, 1994)?;
    let samples = pipeline::curve_samples(&ex, &run)?;

    let naive = SousaModel::williams_brown(PAPER_YIELD)?; // DL = 1 - Y^(1-Gamma)

    println!("Fig. 6 — DL vs unweighted coverage Gamma, c432-class, Y = {PAPER_YIELD}\n");
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|&(k, _, _, gamma, dl)| {
            vec![
                format!("{k}"),
                format!("{:.2}", 100.0 * gamma),
                format!("{:.0}", 1e6 * dl),
                format!("{:.0}", 1e6 * naive.defect_level(gamma).unwrap()),
            ]
        })
        .collect();
    print_table(&["k", "Gamma %", "sim DL ppm", "1-Y^(1-Gamma) ppm"], &rows);

    let sim_series = Series::new(
        "simulated (Gamma, DL(theta))",
        samples.iter().map(|&(_, _, _, g, dl)| (g, dl)).collect(),
    );
    let naive_series = Series::new("DL(Gamma) unweighted", naive.curve(40));
    println!(
        "\n{}",
        ascii_plot(&[naive_series.clone(), sim_series.clone()], 72, 18)
    );
    println!("CSV:\n{}", to_csv(&[naive_series, sim_series]));

    // Acceptance: the unweighted prediction deviates from the simulated DL
    // the same way Fig. 5's stuck-at prediction does — at moderate Gamma
    // the simulated DL sits below the naive curve.
    let mid = samples
        .iter()
        .find(|&&(_, _, _, g, _)| (0.3..0.8).contains(&g))
        .copied();
    if let Some((_, _, _, g, dl)) = mid {
        let predicted = naive.defect_level(g)?;
        assert!(
            dl < predicted,
            "weighted DL {dl:.5} must undercut the unweighted prediction {predicted:.5} at Gamma = {g:.2}"
        );
        println!(
            "\nacceptance check passed: at Gamma = {:.2}, simulated DL = {:.0} ppm vs naive {:.0} ppm.",
            g,
            1e6 * dl,
            1e6 * predicted
        );
    } else {
        println!("\n(no mid-range Gamma sample; see table for the deviation)");
    }
    println!("conclusion: a complete but unweighted fault set still mispredicts DL;");
    println!("the weights of eq. 4 are what carry the accuracy.");
    Ok(())
}
