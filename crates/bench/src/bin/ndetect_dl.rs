//! DL versus n-detection target: the defect-level payoff of requiring
//! every stuck-at fault to be detected `n` times instead of once.
//!
//! For the c432-class chip at the paper's `Y = 0.75` operating point, an
//! incremental n-detect schedule is built for targets `n = 1..=8`
//! (greedy pool selection + per-rank PODEM top-ups). Because the test
//! set for target `n` is a *prefix* of the set for `n + 1`, one
//! switch-level realistic-fault simulation over the full sequence yields
//! every θ(n) = weighted realistic coverage at prefix `len_at[n]`, and
//! `DL(n) = 1 − Y^(1−θ(n))` (eq. 3) is monotone non-increasing in `n` by
//! construction. The measured `(n, θ(n))` points are then fitted with the
//! saturating growth law `θ(n) = θ_max·(1 − ρ^n)` from
//! `dlp_core::ndetect`.
//!
//! Writes `BENCH_ndetect.json` at the workspace root in the versioned
//! [`BenchReport`] schema, one entry per measured quantity (see
//! EXPERIMENTS.md, "DL vs n").

use dlp_bench::pipeline::{self, PAPER_YIELD};
use dlp_core::ndetect::fit_ndetect_growth;
use dlp_core::obs::BenchReport;
use dlp_core::par::ThreadCount;
use dlp_core::{PipelineError, Ppm, RunBudget, Stage};
use dlp_extract::defects::DefectStatistics;
use dlp_extract::faults::OpenLevelModel;
use dlp_ndetect::{build_schedule_resumable, NDetectConfig};
use dlp_sim::switchlevel::{DetectionMode, SwitchConfig, SwitchSimulator};
use dlp_sim::stuck_at;
use dlp_circuit::switch;

const MAX_N: usize = 8;

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), PipelineError> {
    let obs = pipeline::recorder_from_env();
    let extraction = pipeline::extract_c432_obs(&DefectStatistics::maly_cmos(), &obs)?;
    dlp_bench::report_diagnostics(&extraction.diagnostics);
    let netlist = &extraction.netlist;
    let sa = stuck_at::enumerate(netlist).collapse();

    // Build the incremental n-detect schedule for the largest target;
    // every smaller target's test set is one of its prefixes. The build
    // honours the DLP_BUDGET_* knobs: a tripped budget is a stage-tagged
    // error carrying a resume checkpoint.
    let budget = RunBudget::from_env()?;
    let schedule = {
        let _span = obs.span("ndetect.build");
        build_schedule_resumable(
            netlist,
            sa.faults(),
            MAX_N,
            &NDetectConfig::default(),
            &budget,
            None,
        )?
    };
    obs.add("ndetect.vectors", schedule.vectors.len() as u64);
    obs.add("ndetect.pool_selected", schedule.pool_selected as u64);
    obs.add("ndetect.below_target", schedule.below_target.len() as u64);

    // One switch-level realistic-fault simulation over the full sequence
    // covers every prefix measurement.
    let threads = ThreadCount::from_env().map_err(dlp_core::ModelError::from)?;
    let sw = switch::expand(netlist)
        .map_err(|e| PipelineError::from(e).context("expanding to switch level"))?;
    let sim = SwitchSimulator::new(sw, SwitchConfig::default());
    let lowered = extraction.faults.to_switch_faults(
        netlist,
        sim.netlist(),
        &OpenLevelModel::default(),
    )?;
    let record_theta = sim.detect_obs(
        &lowered,
        &schedule.vectors,
        DetectionMode::Voltage,
        threads,
        &obs,
    )?;
    let w = extraction.faults.weights();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut samples: Vec<(usize, usize, f64, f64, f64)> = Vec::new(); // (n, k, θ, Γ, DL)
    let mut theta_points: Vec<(u32, f64)> = Vec::new();
    for n in 1..=MAX_N {
        let k = schedule.len_at[n - 1];
        let theta = record_theta.weighted_coverage_after(k, &w)?;
        let gamma = record_theta.coverage_after(k);
        let dl = extraction
            .weights
            .defect_level(theta)
            .map_err(|e| PipelineError::from(e).context(format!("DL at n = {n}")))?;
        theta_points.push((n as u32, theta));
        rows.push(vec![
            n.to_string(),
            k.to_string(),
            format!("{theta:.4}"),
            format!("{gamma:.4}"),
            format!("{:.1}", Ppm::from_fraction(dl).value()),
        ]);
        samples.push((n, k, theta, gamma, dl));
    }

    // The measured-DL monotonicity contract: prefixes only grow, so a
    // violation here is a schedule or record inconsistency, not noise.
    for pair in samples.windows(2) {
        let (n0, _, _, _, dl0) = pair[0];
        let (n1, _, _, _, dl1) = pair[1];
        if dl1 > dl0 {
            return Err(PipelineError::with_source(
                Stage::Model,
                dlp_core::ModelError::BadFitData(
                    "measured DL(n) increased with n on a prefix schedule",
                ),
            )
            .context(format!("DL({n0}) = {dl0:.6e} < DL({n1}) = {dl1:.6e}")));
        }
    }

    let growth = fit_ndetect_growth(&theta_points)
        .map_err(|e| PipelineError::from(e).context("fitting the θ(n) growth law"))?;

    println!(
        "DL vs n-detection target — c432-class, Y = {PAPER_YIELD}, \
         {} realistic faults, {} stuck-at faults",
        lowered.len(),
        sa.len()
    );
    println!(
        "schedule: {} vectors ({} from the pool), {} fault(s) below target {MAX_N}",
        schedule.vectors.len(),
        schedule.pool_selected,
        schedule.below_target.len()
    );
    dlp_bench::print_table(
        &["n", "|T(n)|", "theta(n)", "gamma(n)", "DL ppm"],
        &rows,
    );
    println!(
        "fitted growth law: theta_max = {:.4}, theta_1 = {:.4}, miss ratio rho = {:.4}",
        growth.theta_max(),
        growth.theta1(),
        growth.miss_ratio()
    );

    let mut report = BenchReport::new("ndetect");
    let base = format!("ndetect/c432_class/max_n{MAX_N}");
    report.record(&format!("{base}/yield"), "fraction", PAPER_YIELD);
    report.record(
        &format!("{base}/total_vectors"),
        "vectors",
        schedule.vectors.len() as f64,
    );
    report.record(
        &format!("{base}/pool_selected"),
        "vectors",
        schedule.pool_selected as f64,
    );
    report.record(
        &format!("{base}/below_target"),
        "faults",
        schedule.below_target.len() as f64,
    );
    report.record(&format!("{base}/fit_theta_max"), "fraction", growth.theta_max());
    report.record(&format!("{base}/fit_theta_1"), "fraction", growth.theta1());
    report.record(&format!("{base}/fit_miss_ratio"), "fraction", growth.miss_ratio());
    for &(n, k, theta, gamma, dl) in &samples {
        report.record(&format!("{base}/n{n}/vectors"), "vectors", k as f64);
        report.record(&format!("{base}/n{n}/theta"), "fraction", theta);
        report.record(&format!("{base}/n{n}/gamma"), "fraction", gamma);
        report.record(&format!("{base}/n{n}/defect_level"), "fraction", dl);
    }
    let path = format!("{}/../../BENCH_ndetect.json", env!("CARGO_MANIFEST_DIR"));
    report.write_to(&path).map_err(|e| {
        PipelineError::with_source(
            Stage::Model,
            dlp_core::ModelError::BadFitData("cannot write BENCH_ndetect.json"),
        )
        .context(e.to_string())
    })?;
    println!("wrote {path}");
    if let Some(trace) = pipeline::write_run_report(&obs, "ndetect").map_err(|e| {
        PipelineError::with_source(
            Stage::Model,
            dlp_core::ModelError::BadFitData("cannot write the ndetect trace report"),
        )
        .context(e.to_string())
    })? {
        println!("wrote {trace}");
    }
    Ok(())
}
