//! Parallel-speedup measurement: PPSFP stuck-at simulation of the
//! c432-class circuit over ≥1024 random vectors, serial (1 worker) versus
//! 4 workers.
//!
//! Asserts the `DetectionRecord`s are bit-identical — the determinism
//! contract of the parallel execution layer — and writes the measured
//! wall-clock numbers to `BENCH_parallel_speedup.json` at the workspace
//! root using the versioned [`BenchReport`] schema. The ≥2× speedup
//! criterion can only manifest on a machine with ≥4 hardware threads;
//! the report's `env.cpus` records the machine's parallelism so a
//! single-core result is interpretable.

use std::time::Instant;

use dlp_circuit::generators;
use dlp_core::obs::{bench::median, BenchReport};
use dlp_core::par::ThreadCount;
use dlp_core::PipelineError;
use dlp_sim::{detection, ppsfp, stuck_at};

const VECTORS: usize = 1024;
const REPEATS: usize = 5;

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

/// Wall-clock seconds of `REPEATS` runs of `f`.
fn sample_secs<R>(mut f: impl FnMut() -> R) -> Vec<f64> {
    (0..REPEATS)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect()
}

fn run() -> Result<(), PipelineError> {
    let netlist = generators::c432_class();
    let faults = stuck_at::enumerate(&netlist).collapse();
    let vectors = detection::random_vectors(netlist.inputs().len(), VECTORS, 7);
    let t1 = ThreadCount::fixed(1).map_err(dlp_sim::SimError::from)?;
    let t4 = ThreadCount::fixed(4).map_err(dlp_sim::SimError::from)?;

    let serial = ppsfp::simulate_with(&netlist, faults.faults(), &vectors, t1)?;
    let parallel = ppsfp::simulate_with(&netlist, faults.faults(), &vectors, t4)?;
    assert_eq!(
        serial, parallel,
        "DetectionRecord must be bit-identical across thread counts"
    );

    let samples_t1 = sample_secs(|| {
        ppsfp::simulate_with(&netlist, faults.faults(), &vectors, t1).map(|r| r.detected_count())
    });
    let samples_t4 = sample_secs(|| {
        ppsfp::simulate_with(&netlist, faults.faults(), &vectors, t4).map(|r| r.detected_count())
    });
    let secs_t1 = median(&samples_t1);
    let secs_t4 = median(&samples_t4);
    let speedup = secs_t1 / secs_t4;
    let hw = std::thread::available_parallelism().map_or(1, usize::from);

    println!("parallel speedup — ppsfp/c432_class/{VECTORS} vectors");
    println!("  hardware threads : {hw}");
    println!("  DLP_THREADS=1    : {:.3} ms", secs_t1 * 1e3);
    println!("  DLP_THREADS=4    : {:.3} ms", secs_t4 * 1e3);
    println!("  speedup          : {speedup:.2}x");
    println!("  records identical: yes ({} faults)", faults.len());
    if hw >= 4 && speedup < 2.0 {
        eprintln!("warning: <2x speedup despite {hw} hardware threads");
    }

    let mut report = BenchReport::new("parallel_speedup");
    report.record_samples(
        &format!("ppsfp/c432_class/{VECTORS}/seconds_threads1"),
        "s",
        &samples_t1,
    );
    report.record_samples(
        &format!("ppsfp/c432_class/{VECTORS}/seconds_threads4"),
        "s",
        &samples_t4,
    );
    report.record(
        &format!("ppsfp/c432_class/{VECTORS}/speedup"),
        "ratio",
        speedup,
    );
    report.record(
        &format!("ppsfp/c432_class/{VECTORS}/records_bit_identical"),
        "bool",
        1.0,
    );
    let path = format!(
        "{}/../../BENCH_parallel_speedup.json",
        env!("CARGO_MANIFEST_DIR")
    );
    report.write_to(&path).map_err(|e| {
        PipelineError::with_source(
            dlp_core::Stage::Model,
            dlp_core::ModelError::BadFitData("cannot write BENCH_parallel_speedup.json"),
        )
        .context(e.to_string())
    })?;
    println!("wrote {path}");
    Ok(())
}
