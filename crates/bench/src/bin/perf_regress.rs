//! Cross-run performance regression gate.
//!
//! Measures a small fixed set of hot-path workloads (gate-level PPSFP,
//! switch-level detection, critical-area extraction, Monte-Carlo
//! fallout) plus a CPU calibration loop, and compares the
//! calibration-normalized costs against a committed baseline
//! (`baselines/perf_baseline.json`, versioned [`BenchReport`] schema).
//! Normalization by the in-process calibration loop cancels machine
//! speed, so the committed baseline stays meaningful on different
//! hardware; see `dlp_bench::regress` for the thresholds.
//!
//! Usage:
//!
//! ```text
//! perf_regress                   # compare against the committed baseline
//! perf_regress --write-baseline  # measure and (re)write the baseline
//! perf_regress --self-test       # verify the gate's own detection power
//! perf_regress --baseline <path> # compare against a specific baseline
//! perf_regress --current <path>  # gate a report file instead of measuring
//! ```
//!
//! `--current` turns the binary into a pure file-vs-file comparator:
//! any versioned [`BenchReport`] that carries the calibration entry
//! (e.g. `BENCH_serve.json` from `serve_load`) can be gated against its
//! own committed baseline without re-measuring here.
//!
//! `--self-test` measures once, then (a) compares the measurement
//! against itself — must pass with unit ratios — and (b) compares it
//! against a doctored baseline in which one workload was made 2x
//! cheaper (equivalent to the current run being 2x slower) — the gate
//! must fail. A gate that cannot flag a synthetic 2x slowdown would be
//! decorative.

use std::process::ExitCode;
use std::time::Instant;

use dlp_bench::regress::{self, Verdict, CALIBRATION_LABEL, TIMED_UNIT};
use dlp_circuit::{generators, switch};
use dlp_core::montecarlo::{simulate_fallout_with, MonteCarloConfig};
use dlp_core::obs::BenchReport;
use dlp_core::par::ThreadCount;
use dlp_core::weighted::FaultWeights;
use dlp_core::PipelineError;
use dlp_extract::defects::DefectStatistics;
use dlp_extract::extractor::{extract_with, ExtractionConfig};
use dlp_layout::chip::ChipLayout;
use dlp_sim::detection::random_vectors;
use dlp_sim::switchlevel::{DetectionMode, SwitchConfig, SwitchFault, SwitchSimulator};
use dlp_sim::{ppsfp, stuck_at};

/// Timed batches per workload; the gate compares the best one.
const BATCHES: usize = 5;

fn default_baseline_path() -> String {
    format!(
        "{}/../../baselines/perf_baseline.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Times `f` over [`BATCHES`] batches after a short warm-up and returns
/// each batch's ns/iter. Batches are auto-sized to ≥ 5 ms so the numbers
/// are above timer noise without making the gate slow.
fn sample_ns<R>(mut f: impl FnMut() -> R) -> Vec<f64> {
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        if t0.elapsed().as_millis() >= 5 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut samples = vec![0f64; BATCHES];
    for s in &mut samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        *s = t0.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples
}

/// The fixed CPU-bound calibration loop: integer xorshift, no memory
/// traffic, so it tracks raw core speed and nothing else.
fn calibration_spin() -> u64 {
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut acc = 0u64;
    for _ in 0..4096 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    acc
}

/// Measures every gated workload into a fresh report.
fn measure() -> Result<BenchReport, PipelineError> {
    let mut report = BenchReport::new("perf_regress");
    let t1 = ThreadCount::fixed(1).map_err(dlp_core::ModelError::from)?;

    report.record_samples(CALIBRATION_LABEL, TIMED_UNIT, &sample_ns(calibration_spin));

    let netlist = generators::c432_class();
    let faults = stuck_at::enumerate(&netlist).collapse();
    let vectors = random_vectors(netlist.inputs().len(), 256, 7);
    report.record_samples(
        "ppsfp/c432_class/256v",
        TIMED_UNIT,
        &sample_ns(|| {
            ppsfp::simulate_with(&netlist, faults.faults(), &vectors, t1)
                .map(|r| r.detected_count())
        }),
    );

    let c17 = generators::c17();
    let sw = switch::expand(&c17)
        .map_err(|e| PipelineError::from(e).context("expanding c17 to switch level"))?;
    let sim = SwitchSimulator::new(sw, SwitchConfig::default());
    let n_trans = sim.netlist().transistors().len();
    let sw_faults: Vec<SwitchFault> = (0..n_trans)
        .step_by(2)
        .map(|t| SwitchFault::StuckOpen { transistor: t })
        .collect();
    let sw_vectors = random_vectors(c17.inputs().len(), 48, 17);
    report.record_samples(
        "switch/c17/voltage_48v",
        TIMED_UNIT,
        &sample_ns(|| {
            sim.detect_with_threads(&sw_faults, &sw_vectors, DetectionMode::Voltage, t1)
                .map(|r| r.detected_count())
        }),
    );

    let adder = generators::ripple_adder(4);
    let chip = ChipLayout::generate(&adder, &Default::default())
        .map_err(|e| PipelineError::from(e).context("ripple-adder layout"))?;
    let stats = DefectStatistics::maly_cmos();
    let config = ExtractionConfig {
        size_samples: 6,
        ..Default::default()
    };
    report.record_samples(
        "extract/ripple_adder4/s6",
        TIMED_UNIT,
        &sample_ns(|| extract_with(&chip, &stats, &config).map(|f| f.len())),
    );

    let weights = FaultWeights::new(vec![1.0; 24])
        .map_err(PipelineError::from)?
        .scaled_to_yield(0.75)
        .map_err(PipelineError::from)?;
    let detected: Vec<bool> = (0..24).map(|j| j % 4 != 0).collect();
    let mc = MonteCarloConfig {
        dies: 20_000,
        seed: 0x5EED,
    };
    report.record_samples(
        "montecarlo/20k_dies",
        TIMED_UNIT,
        &sample_ns(|| simulate_fallout_with(&weights, &detected, &mc, t1).map(|r| r.escapes)),
    );

    Ok(report)
}

fn print_comparison(cmp: &regress::Comparison) {
    if let Some((base, cur)) = cmp.cpu_mismatch {
        eprintln!(
            "warning: baseline was recorded on {base} CPU(s), this machine has {cur} — \
             thread-scaling numbers are not comparable; \
             rewrite the baseline here with --write-baseline"
        );
    }
    let rows: Vec<Vec<String>> = cmp
        .findings
        .iter()
        .map(|f| {
            vec![
                f.label.clone(),
                format!("{:.0}", f.baseline_ns),
                format!("{:.0}", f.current_ns),
                format!("{:.2}x", f.ratio),
                match f.verdict {
                    Verdict::Pass => "ok".to_string(),
                    Verdict::Warn => "WARN".to_string(),
                    Verdict::Fail => "FAIL".to_string(),
                },
            ]
        })
        .collect();
    dlp_bench::print_table(
        &["workload", "base ns", "now ns", "normalized", "verdict"],
        &rows,
    );
    for label in &cmp.low_confidence {
        eprintln!(
            "warning: {label} was compared without repeat samples on at least one side — \
             its verdict is low-confidence"
        );
    }
    for label in &cmp.missing_in_baseline {
        eprintln!("warning: {label} is not in the baseline (rewrite it with --write-baseline)");
    }
    for label in &cmp.missing_in_current {
        eprintln!("warning: baseline workload {label} was not measured — coverage shrank");
    }
    for f in cmp.flagged() {
        let what = if f.verdict == Verdict::Fail { "regression" } else { "drift" };
        eprintln!(
            "{}: {what}: {} is {:.2}x its baseline cost (warn at {:.1}x, fail at {:.1}x)",
            if f.verdict == Verdict::Fail { "error" } else { "warning" },
            f.label,
            f.ratio,
            regress::WARN_RATIO,
            regress::FAIL_RATIO,
        );
    }
}

fn self_test() -> Result<bool, PipelineError> {
    let current = measure()?;

    // (a) Unchanged baseline: comparing a measurement against itself
    // must pass with exactly unit ratios.
    let unchanged = regress::compare(&current, &current)
        .map_err(|e| pipeline_err(&e.to_string()))?;
    let clean = unchanged.passed()
        && !unchanged.findings.is_empty()
        && unchanged
            .findings
            .iter()
            .all(|f| (f.ratio - 1.0).abs() < 1e-9);
    println!(
        "self-test: unchanged baseline {} ({} workloads at 1.00x)",
        if clean { "passes" } else { "FAILED" },
        unchanged.findings.len()
    );

    // (b) Synthetic 2x slowdown: halve every baseline workload cost
    // (calibration untouched), making the current run look 2x slower.
    let mut doctored = current.clone();
    for entry in &mut doctored.entries {
        if entry.unit == TIMED_UNIT && entry.label != CALIBRATION_LABEL {
            entry.value /= 2.0;
            for s in &mut entry.samples {
                *s /= 2.0;
            }
        }
    }
    let slowed = regress::compare(&doctored, &current)
        .map_err(|e| pipeline_err(&e.to_string()))?;
    let detected = !slowed.passed()
        && slowed
            .findings
            .iter()
            .all(|f| f.verdict == Verdict::Fail);
    println!(
        "self-test: synthetic 2x slowdown {} ({} workloads flagged)",
        if detected { "detected" } else { "NOT DETECTED" },
        slowed.flagged().len()
    );

    // (c)/(d) Coverage drift, both directions: a timed workload absent
    // from either side must be reported by name and stay non-fatal —
    // silent coverage loss would hide regressions, a hard failure would
    // block every baseline predating a new workload.
    let dropped = current
        .entries
        .iter()
        .find(|e| e.unit == TIMED_UNIT && e.label != CALIBRATION_LABEL)
        .map(|e| e.label.clone())
        .ok_or_else(|| pipeline_err("self-test needs at least one timed workload"))?;
    let mut pruned = current.clone();
    pruned.entries.retain(|e| e.label != dropped);
    let stale_baseline = regress::compare(&pruned, &current)
        .map_err(|e| pipeline_err(&e.to_string()))?;
    let names_new = stale_baseline.passed()
        && stale_baseline.missing_in_baseline == [dropped.clone()]
        && stale_baseline.missing_in_current.is_empty();
    println!(
        "self-test: workload absent from the baseline {} ({dropped:?} flagged, non-fatal)",
        if names_new { "is named" } else { "NOT NAMED" },
    );
    let shrunk_current = regress::compare(&current, &pruned)
        .map_err(|e| pipeline_err(&e.to_string()))?;
    let names_lost = shrunk_current.passed()
        && shrunk_current.missing_in_current == [dropped.clone()]
        && shrunk_current.missing_in_baseline.is_empty();
    println!(
        "self-test: workload no longer measured {} ({dropped:?} flagged, non-fatal)",
        if names_lost { "is named" } else { "NOT NAMED" },
    );

    // (e) Environment drift: a baseline recorded with a different CPU
    // count must be flagged (the committed 0.6x parallel "speedup" was
    // a single-CPU-container artifact) and stay non-fatal — calibration
    // cancels core speed, not core count.
    let mut other_env = current.clone();
    other_env.env.cpus = current.env.cpus + 1;
    let drifted = regress::compare(&other_env, &current)
        .map_err(|e| pipeline_err(&e.to_string()))?;
    let cpus_named = drifted.passed()
        && drifted.cpu_mismatch == Some((current.env.cpus + 1, current.env.cpus));
    println!(
        "self-test: baseline from a {}-CPU machine {} (non-fatal)",
        current.env.cpus + 1,
        if cpus_named { "is flagged" } else { "NOT FLAGGED" },
    );

    Ok(clean && detected && names_new && names_lost && cpus_named)
}

fn pipeline_err(msg: &str) -> PipelineError {
    PipelineError::with_source(
        dlp_core::Stage::Model,
        dlp_core::ModelError::BadFitData("perf_regress gate error"),
    )
    .context(msg.to_string())
}

fn run() -> Result<bool, PipelineError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = default_baseline_path();
    let mut current_path: Option<String> = None;
    let mut write_baseline = false;
    let mut want_self_test = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--write-baseline" => write_baseline = true,
            "--self-test" => want_self_test = true,
            "--baseline" => {
                baseline_path = it
                    .next()
                    .ok_or_else(|| pipeline_err("--baseline needs a path"))?
                    .clone();
            }
            "--current" => {
                current_path = Some(
                    it.next()
                        .ok_or_else(|| pipeline_err("--current needs a path"))?
                        .clone(),
                );
            }
            other => {
                return Err(pipeline_err(&format!(
                    "unknown argument {other:?} \
                     (expected --write-baseline, --self-test, --baseline <path>, \
                      or --current <path>)"
                )));
            }
        }
    }

    if want_self_test {
        return self_test();
    }

    if write_baseline {
        let report = measure()?;
        report
            .write_to(&baseline_path)
            .map_err(|e| pipeline_err(&format!("cannot write {baseline_path}: {e}")))?;
        println!("wrote {baseline_path} (git_rev {})", report.env.git_rev);
        return Ok(true);
    }

    let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        pipeline_err(&format!(
            "cannot read baseline {baseline_path}: {e} \
             (create it with perf_regress --write-baseline)"
        ))
    })?;
    let baseline = BenchReport::from_json(&text)
        .map_err(|e| pipeline_err(&format!("baseline {baseline_path}: {e}")))?;
    let current = match &current_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| pipeline_err(&format!("cannot read current report {path}: {e}")))?;
            BenchReport::from_json(&text)
                .map_err(|e| pipeline_err(&format!("current report {path}: {e}")))?
        }
        None => measure()?,
    };
    let cmp = regress::compare(&baseline, &current)
        .map_err(|e| pipeline_err(&e.to_string()))?;
    println!(
        "perf_regress: current git_rev {} vs baseline git_rev {}",
        current.env.git_rev, baseline.env.git_rev
    );
    print_comparison(&cmp);
    if cmp.passed() {
        println!("perf_regress: OK");
    }
    Ok(cmp.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
