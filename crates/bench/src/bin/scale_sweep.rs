//! Scale sweep: layout → extraction → PPSFP → DL(T) across the
//! million-fault circuit family, recording faults/sec per member.
//!
//! Monolithic place-and-route stops being viable a few hundred gates in
//! (the negotiated-congestion router spends minutes on the 424-gate
//! c1355 class and still strands nets), so critical-area weights come
//! from the tiled template path of DESIGN.md §13: one small template is
//! laid out and extracted once, its per-node weight profile is
//! distributed onto stuck-at sites by
//! [`stuck_at_weights`](dlp_extract::sharded::stuck_at_weights)
//! semantics, and [`TiledWeights::expand`] replicates that profile onto
//! every family member. For tiled members the node map is exact — each
//! tile is emitted by the very routine that built the template, so tile
//! gate `j` *is* template gate `j`. For the ISCAS-85-class analogues
//! each gate maps to a template gate of the same [`GateKind`]
//! (kind-proxy), which preserves per-cell-kind critical-area ratios;
//! unmapped sites (primary inputs, kinds absent from the template) take
//! the template's average per-fault weight.
//!
//! The collapsed stuck-at universe of each member is then simulated
//! with the sharded PPSFP engine under the `DLP_BUDGET_*` knobs
//! ([`SIM_REPEATS`] timed repeats, so the perf gate sees raw samples
//! rather than a single-shot wall time), and `faults/sec = collapsed
//! faults / best PPSFP wall-clock` is recorded per member in
//! `BENCH_scale_sweep.json` (BenchReport schema v1), together with
//! θ(T) and `DL(T) = 1 − Y^(1−θ)` at the paper's `Y = 0.75`.
//!
//! `--smoke` restricts the sweep to the smallest member over the
//! c432-class template (the scripts/check.sh wiring); the full sweep
//! lays out the 8×8 multiplier tile itself and ends on a
//! `tiled_multiplier` member whose collapsed universe exceeds 10^6
//! faults (enforced, not assumed).

use std::collections::HashMap;
use std::time::Instant;

use dlp_bench::pipeline::{self, PAPER_YIELD};
use dlp_circuit::generators::{self, TILE_INPUTS};
use dlp_circuit::{GateKind, Netlist, NodeId};
use dlp_core::obs::BenchReport;
use dlp_core::par::ThreadCount;
use dlp_core::{PipelineError, Ppm, RunBudget, Stage};
use dlp_extract::defects::DefectStatistics;
use dlp_extract::sharded::TiledWeights;
use dlp_sim::sharded::{simulate_sharded_obs, DEFAULT_SHARD_FAULTS};
use dlp_sim::detection::random_vectors;
use dlp_sim::stuck_at;

/// Applied test length `T`: enough for the random-pattern-easy family
/// members to saturate while keeping the million-fault run bounded.
const VECTORS: usize = 256;

/// Seed for the applied random vectors (shared by every member so the
/// sweep is reproducible run to run).
const SEED: u64 = 0x5CA1_E5EE;

/// Tile count of the largest member: ~1.5k collapsed faults per tile
/// puts 672 tiles safely past 10^6.
const BIG_TILES: usize = 672;

/// Timed repeats per member (smoke included): `regress::best_ns`
/// compares the minimum sample, so single-shot wall times would give
/// the perf gate no noise floor and let it flap on scheduler jitter.
const SIM_REPEATS: usize = 3;

/// One family member: a netlist plus its site → template-node map.
struct Member {
    name: &'static str,
    netlist: Netlist,
    map: Box<dyn Fn(NodeId) -> Option<NodeId>>,
}

/// Exact structural map for `tiled_multiplier(tiles)`: pool inputs and
/// fold gates fall outside every tile (default weight); tile gate `j`
/// maps to template gate `j`.
fn tiled_map(template: &Netlist, tiles: usize) -> Box<dyn Fn(NodeId) -> Option<NodeId>> {
    let tpl_inputs = template.inputs().len();
    let tpl_gates = template.gate_count();
    Box::new(move |n: NodeId| {
        let i = n.index();
        if i < TILE_INPUTS || i >= TILE_INPUTS + tiles * tpl_gates {
            return None;
        }
        Some(NodeId::from_index(tpl_inputs + (i - TILE_INPUTS) % tpl_gates))
    })
}

/// Kind-proxy map for non-tiled members: every gate maps to the first
/// template gate of the same kind, primary inputs to `None`.
fn kind_map(template: &Netlist, member: &Netlist) -> Box<dyn Fn(NodeId) -> Option<NodeId>> {
    let mut rep: HashMap<GateKind, NodeId> = HashMap::new();
    for id in template.node_ids() {
        if !template.fanin(id).is_empty() {
            rep.entry(template.kind(id)).or_insert(id);
        }
    }
    let kinds: Vec<Option<NodeId>> = member
        .node_ids()
        .map(|id| {
            if member.fanin(id).is_empty() {
                None
            } else {
                rep.get(&member.kind(id)).copied()
            }
        })
        .collect();
    Box::new(move |n: NodeId| kinds.get(n.index()).copied().flatten())
}

fn model_err(msg: String) -> PipelineError {
    PipelineError::with_source(
        Stage::Model,
        dlp_core::ModelError::BadFitData("scale sweep invariant failed"),
    )
    .context(msg)
}

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), PipelineError> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let obs = pipeline::recorder_from_env();
    let threads = ThreadCount::from_env().map_err(dlp_core::ModelError::from)?;
    let budget = RunBudget::from_env()?;

    // One template layout + extraction feeds every member's weights.
    let (template_name, template_netlist) = if smoke {
        ("c432_class", generators::c432_class())
    } else {
        ("multiplier_tile", generators::multiplier_tile())
    };
    println!(
        "scale sweep ({}): template {template_name}, {} gates",
        if smoke { "smoke" } else { "full" },
        template_netlist.gate_count()
    );
    let extraction =
        pipeline::extract_netlist_obs(template_netlist, &DefectStatistics::maly_cmos(), &obs)?;
    dlp_bench::report_diagnostics(&extraction.diagnostics);
    let template = &extraction.netlist;
    let template_sites = stuck_at::enumerate(template).collapse();
    let tiled = TiledWeights::new(template, &extraction.faults, template_sites.faults())?;

    let members: Vec<Member> = if smoke {
        let nl = generators::c1355_class();
        let map = kind_map(template, &nl);
        vec![Member { name: "c1355_class", netlist: nl, map }]
    } else {
        let mut out = Vec::new();
        for (name, nl) in [
            ("c1355_class", generators::c1355_class()),
            ("c2670_class", generators::c2670_class()),
            ("c5315_class", generators::c5315_class()),
            ("c6288_class", generators::c6288_class()),
            ("c7552_class", generators::c7552_class()),
        ] {
            let map = kind_map(template, &nl);
            out.push(Member { name, netlist: nl, map });
        }
        for (name, tiles) in [("tiledmul16", 16usize), ("tiledmul672", BIG_TILES)] {
            let map = tiled_map(template, tiles);
            out.push(Member {
                name,
                netlist: generators::tiled_multiplier(tiles),
                map,
            });
        }
        out
    };

    let mut report = BenchReport::new("scale_sweep");
    report.record(
        "scale/template/gates",
        "gates",
        extraction.netlist.gate_count() as f64,
    );
    report.record(
        "scale/template/realistic_faults",
        "faults",
        extraction.faults.len() as f64,
    );
    report.record("scale/yield", "fraction", PAPER_YIELD);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut max_faults = 0usize;
    for m in &members {
        let sites = stuck_at::enumerate(&m.netlist).collapse();
        let w = tiled.expand(&m.netlist, sites.faults(), &m.map)?;
        let weights = dlp_core::weighted::FaultWeights::new(w.clone())
            .map_err(|e| PipelineError::from(e).context(format!("{} weights", m.name)))?
            .scaled_to_yield(PAPER_YIELD)
            .map_err(|e| PipelineError::from(e).context(format!("{} yield scaling", m.name)))?;
        let vectors = random_vectors(m.netlist.inputs().len(), VECTORS, SEED);

        // Every repeat produces the same record bit for bit (determinism
        // contract), so the first one feeds θ/DL and the rest only time.
        let mut sim_samples = Vec::with_capacity(SIM_REPEATS);
        let mut record = None;
        for _ in 0..SIM_REPEATS {
            let t0 = Instant::now();
            let r = simulate_sharded_obs(
                &m.netlist,
                sites.faults(),
                &vectors,
                DEFAULT_SHARD_FAULTS,
                threads,
                &obs,
                &budget,
            )
            .map_err(|e| PipelineError::from(e).context(format!("simulating {}", m.name)))?;
            sim_samples.push(t0.elapsed().as_secs_f64());
            record.get_or_insert(r);
        }
        let record = record.ok_or_else(|| model_err("no simulation repeats ran".to_string()))?;
        let sim_s = sim_samples.iter().copied().fold(f64::INFINITY, f64::min);
        let faults_per_sec = sites.len() as f64 / sim_s.max(1e-9);
        max_faults = max_faults.max(sites.len());

        let theta = record
            .weighted_coverage_after(VECTORS, &w)
            .map_err(|e| PipelineError::from(e).context(format!("θ of {}", m.name)))?;
        let dl = weights
            .defect_level(theta)
            .map_err(|e| PipelineError::from(e).context(format!("DL of {}", m.name)))?;

        rows.push(vec![
            m.name.to_string(),
            m.netlist.gate_count().to_string(),
            sites.len().to_string(),
            format!("{sim_s:.2}"),
            format!("{faults_per_sec:.0}"),
            format!("{theta:.4}"),
            format!("{:.1}", Ppm::from_fraction(dl).value()),
        ]);
        let base = format!("scale/{}", m.name);
        report.record(&format!("{base}/gates"), "gates", m.netlist.gate_count() as f64);
        report.record(&format!("{base}/collapsed_faults"), "faults", sites.len() as f64);
        report.record(&format!("{base}/vectors"), "vectors", VECTORS as f64);
        report.record_samples(&format!("{base}/sim_seconds"), "s", &sim_samples);
        let rate_samples: Vec<f64> = sim_samples
            .iter()
            .map(|s| sites.len() as f64 / s.max(1e-9))
            .collect();
        report.record_samples(&format!("{base}/faults_per_sec"), "faults/s", &rate_samples);
        report.record(&format!("{base}/theta"), "fraction", theta);
        report.record(
            &format!("{base}/defect_level_ppm"),
            "ppm",
            Ppm::from_fraction(dl).value(),
        );
        println!(
            "  {}: {} faults in {sim_s:.2}s ({faults_per_sec:.0} faults/s)",
            m.name,
            sites.len()
        );
    }

    // The whole point of the sweep: the family must actually reach
    // million-fault scale (smoke mode exempt by design).
    if !smoke && max_faults < 1_000_000 {
        return Err(model_err(format!(
            "largest member has {max_faults} collapsed faults, need >= 10^6"
        )));
    }

    dlp_bench::print_table(
        &[
            "member", "gates", "faults", "sim s", "faults/s", "theta", "DL ppm",
        ],
        &rows,
    );

    // Smoke runs (CI) write next to the full report, not over it: the
    // committed BENCH_scale_sweep.json always describes the full family.
    let file = if smoke {
        "BENCH_scale_sweep_smoke.json"
    } else {
        "BENCH_scale_sweep.json"
    };
    let path = format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"));
    report
        .write_to(&path)
        .map_err(|e| model_err(format!("cannot write {path}: {e}")))?;
    println!("wrote {path}");
    if let Some(trace) = pipeline::write_run_report(&obs, "scale_sweep")
        .map_err(|e| model_err(format!("cannot write the scale_sweep trace report: {e}")))?
    {
        println!("wrote {trace}");
    }
    Ok(())
}
