//! The paper's two worked numeric examples (§2), reproduced exactly.
//!
//! * **Example 1**: `Y = 0.75`, `θ_max = 1`, `R = 2.1`, target
//!   `DL = 100 ppm` → required coverage `T = 97.7 %` (the Williams–Brown
//!   model would demand `99.97 %`).
//! * **Example 2**: `Y = 0.75`, `T = 100 %`, `θ_max = 0.99`, `R = 1` →
//!   a residual defect level in the thousands of ppm where Williams–Brown
//!   predicts zero. Eq. 11 evaluates to 2873 ppm; the paper prints
//!   2279 ppm (see `EXPERIMENTS.md` for the discrepancy note).

use dlp_bench::print_table;
use dlp_core::sousa::SousaModel;
use dlp_core::{williams_brown, Ppm};

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    println!("Worked examples of Sousa et al. §2 (Y = 0.75)\n");

    // Example 1.
    let m1 = SousaModel::new(0.75, 2.1, 1.0)?;
    let t_eq11 = m1.required_coverage(100e-6)?;
    let t_wb = williams_brown::required_coverage(0.75, 100e-6)?;
    // Example 2.
    let m2 = SousaModel::new(0.75, 1.0, 0.99)?;
    let dl_eq11 = m2.defect_level(1.0)?;
    let dl_wb = williams_brown::defect_level(0.75, 1.0)?;

    print_table(
        &["example", "quantity", "eq. 11", "Williams-Brown", "paper"],
        &[
            vec![
                "1".into(),
                "T needed for DL = 100 ppm".into(),
                format!("{:.2} %", 100.0 * t_eq11),
                format!("{:.2} %", 100.0 * t_wb),
                "97.7 % / 99.97 %".into(),
            ],
            vec![
                "2".into(),
                "DL at T = 100 %".into(),
                format!("{}", Ppm::from_fraction(dl_eq11)),
                format!("{}", Ppm::from_fraction(dl_wb)),
                "2279 ppm / 0".into(),
            ],
        ],
    );

    // Exact agreement on Example 1; Example 2 shape agreement (non-zero
    // residual), with the numeric delta recorded in EXPERIMENTS.md.
    assert!((t_eq11 - 0.977).abs() < 5e-4);
    assert!((t_wb - 0.9997).abs() < 5e-5);
    assert!(dl_eq11 > 2000e-6 && dl_eq11 < 3000e-6);
    assert_eq!(dl_wb, 0.0);
    println!("\nchecks passed: Example 1 exact; Example 2 residual floor reproduced");
    println!(
        "(our eq. 11 value {:.0} ppm vs the paper's printed 2279 ppm — see",
        1e6 * dl_eq11
    );
    println!("EXPERIMENTS.md; the formula admits no parameter choice giving 2279");
    println!("at theta_max = 0.99 exactly, so we record both).");
    Ok(())
}
