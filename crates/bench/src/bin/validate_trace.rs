//! CI validator for observability artifacts.
//!
//! Usage:
//!
//! ```text
//! validate_trace <report.json>               # run-report mode
//! validate_trace --bench <bench.json>        # bench-report schema mode
//! validate_trace --serve-trace <traces.json> # flight-recorder dump mode
//! ```
//!
//! Run-report mode parses the report with the in-tree JSON parser and
//! checks that every pipeline stage left a span, the load-bearing
//! counters are nonzero, the per-worker timeline telemetry is coherent
//! (wall/slot accounting, utilization and imbalance gauges in range),
//! the required histograms are well-formed, and the report round-trips
//! through [`RunReport::from_json`] into a valid OpenMetrics exposition
//! — the check.sh gate that keeps the `DLP_TRACE` path honest.
//!
//! Bench mode checks a `BENCH_*.json` file against the versioned
//! [`BenchReport`] schema (schema_version, env, entries), so the bench
//! writers cannot silently drift back to ad-hoc maps, and warns (without
//! failing) when the recorded `env.git_rev` does not match the current
//! checkout or carries the `-dirty` worktree marker.
//!
//! Serve-trace mode checks a `GET /v1/traces` flight-recorder dump
//! (`TRACE_serve_gate.json` in CI): unique well-formed trace ids, a
//! single `request` root per trace, parent links that resolve, children
//! contained in their parents (start and duration), the required stage
//! spans on every recomputing trace, and a span tree that explains at
//! least 90% of each recomputing request's wall time.

use std::process::ExitCode;

use dlp_core::obs::{openmetrics, BenchReport, Json, RunReport};

/// Spans every full-flow run must produce.
const REQUIRED_SPANS: &[&str] = &[
    "layout",
    "extract",
    "atpg",
    "sim.gate",
    "sim.switch",
    "montecarlo",
    "model.fit",
];

/// Counters that must exist and be nonzero.
const REQUIRED_COUNTERS: &[&str] = &[
    "extract.defect_classes",
    "extract.bridge_pairs",
    "extract.faults",
    "atpg.vectors",
    "sim.gate.faults",
    "sim.gate.blocks",
    "sim.gate.detected",
    "sim.switch.faults",
    "mc.shards",
    "mc.dies",
];

/// Histograms every full-flow run must carry. Timing histograms
/// (`*.block_nanos`, `*.chunk_nanos`) are scheduling-dependent and so
/// checked for shape, not content.
const REQUIRED_HISTS: &[&str] = &[
    "sim.gate.detects_per_block",
    "sim.gate.chunk_nanos",
    "mc.shard_escapes",
    "extract.pair_weight",
    "pipeline.fault_weight",
];

/// Parallel regions that must leave worker-timeline telemetry.
const TIMELINE_SCOPES: &[&str] = &["sim.gate", "sim.switch", "extract", "mc"];

fn counter(counters: &[(String, Json)], name: &str) -> Option<f64> {
    counters
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.as_f64())
}

fn check_spans_and_counters(report: &Json) -> Result<(), String> {
    let spans = report
        .get("spans")
        .and_then(Json::as_object)
        .ok_or("report has no spans object")?;
    for name in REQUIRED_SPANS {
        let span = spans
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing span {name:?}"))?;
        let nanos = span
            .get("nanos")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("span {name:?} has no nanos"))?;
        let count = span
            .get("count")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("span {name:?} has no count"))?;
        if count < 1.0 {
            return Err(format!("span {name:?} never entered"));
        }
        if nanos < 0.0 {
            return Err(format!("span {name:?} has negative time"));
        }
    }
    let counters = report
        .get("counters")
        .and_then(Json::as_object)
        .ok_or("report has no counters object")?;
    for name in REQUIRED_COUNTERS {
        let value = counter(counters, name)
            .ok_or_else(|| format!("missing counter {name:?}"))?;
        if value <= 0.0 {
            return Err(format!("counter {name:?} is zero"));
        }
    }
    // Per-worker tallies must account for every gate-level fault
    // simulation: their sum equals the sum of the live-per-block series.
    let worker_sum: f64 = counters
        .iter()
        .filter(|(k, _)| k.starts_with("sim.gate.worker") && k.ends_with(".items"))
        .filter_map(|(_, v)| v.as_f64())
        .sum();
    let live_sum: f64 = report
        .get("series")
        .and_then(|s| s.get("sim.gate.live_per_block"))
        .and_then(Json::as_array)
        .map(|xs| xs.iter().filter_map(Json::as_f64).sum())
        .ok_or("missing series sim.gate.live_per_block")?;
    if worker_sum != live_sum {
        return Err(format!(
            "sim.gate worker tallies sum to {worker_sum}, \
             but {live_sum} fault simulations were performed"
        ));
    }
    Ok(())
}

/// Worker-timeline coherence per parallel scope: wall/slot accounting,
/// at least one worker timeline, and both balance gauges in range.
fn check_timelines(report: &Json) -> Result<(), String> {
    let counters = report
        .get("counters")
        .and_then(Json::as_object)
        .ok_or("report has no counters object")?;
    let gauges = report
        .get("gauges")
        .and_then(Json::as_object)
        .ok_or("report has no gauges object")?;
    let series = report
        .get("series")
        .and_then(Json::as_object)
        .ok_or("report has no series object")?;
    for scope in TIMELINE_SCOPES {
        let wall = counter(counters, &format!("{scope}.wall_nanos"))
            .ok_or_else(|| format!("missing counter {scope}.wall_nanos"))?;
        let slot = counter(counters, &format!("{scope}.slot_nanos"))
            .ok_or_else(|| format!("missing counter {scope}.slot_nanos"))?;
        if wall <= 0.0 || slot < wall {
            return Err(format!(
                "{scope}: wall {wall} / slot {slot} nanos are incoherent \
                 (slot = wall x workers must be >= wall > 0)"
            ));
        }
        let busy_sum: f64 = counters
            .iter()
            .filter(|(k, _)| {
                k.starts_with(&format!("{scope}.worker")) && k.ends_with(".busy_nanos")
            })
            .filter_map(|(_, v)| v.as_f64())
            .sum();
        let timeline = series
            .iter()
            .find(|(k, _)| *k == format!("{scope}.worker0.timeline"))
            .and_then(|(_, v)| v.as_array())
            .ok_or_else(|| format!("missing series {scope}.worker0.timeline"))?;
        if timeline.is_empty() {
            return Err(format!("{scope}.worker0.timeline is empty"));
        }
        let utilization = gauges
            .iter()
            .find(|(k, _)| *k == format!("{scope}.utilization"))
            .and_then(|(_, v)| v.as_f64())
            .ok_or_else(|| format!("missing gauge {scope}.utilization"))?;
        // Busy time is measured inside the worker loop, so Σbusy can
        // only undershoot the slot budget (plus timer granularity).
        if !(0.0..=1.001).contains(&utilization) || busy_sum > slot * 1.001 {
            return Err(format!(
                "{scope}: utilization {utilization} (busy {busy_sum} of slot {slot}) \
                 is out of range"
            ));
        }
        let imbalance = gauges
            .iter()
            .find(|(k, _)| *k == format!("{scope}.imbalance"))
            .and_then(|(_, v)| v.as_f64())
            .ok_or_else(|| format!("missing gauge {scope}.imbalance"))?;
        if imbalance < 1.0 {
            return Err(format!(
                "{scope}: imbalance {imbalance} < 1 (defined as max busy / mean busy)"
            ));
        }
    }
    Ok(())
}

/// Histogram well-formedness: present, populated, strictly increasing
/// bucket bounds, and bucket counts that sum to the observation count.
fn check_hists(report: &Json) -> Result<(), String> {
    let hists = report
        .get("hists")
        .and_then(Json::as_object)
        .ok_or("report has no hists object")?;
    for name in REQUIRED_HISTS {
        let hist = hists
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing histogram {name:?}"))?;
        let count = hist
            .get("count")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("histogram {name:?} has no count"))?;
        if count < 1.0 {
            return Err(format!("histogram {name:?} is empty"));
        }
        let buckets = hist
            .get("buckets")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("histogram {name:?} has no buckets"))?;
        let mut total = 0.0;
        let mut last_bound = f64::NEG_INFINITY;
        for bucket in buckets {
            let pair = bucket
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("histogram {name:?} has a malformed bucket"))?;
            let bound = pair[0]
                .as_f64()
                .ok_or_else(|| format!("histogram {name:?} has a non-numeric bound"))?;
            if bound <= last_bound {
                return Err(format!(
                    "histogram {name:?} bucket bounds are not strictly increasing"
                ));
            }
            last_bound = bound;
            total += pair[1]
                .as_f64()
                .ok_or_else(|| format!("histogram {name:?} has a non-numeric count"))?;
        }
        if total != count {
            return Err(format!(
                "histogram {name:?}: bucket counts sum to {total}, \
                 but count is {count}"
            ));
        }
    }
    Ok(())
}

/// The report must round-trip through the typed [`RunReport`] parser and
/// render to a valid OpenMetrics exposition.
fn check_openmetrics(text: &str) -> Result<(), String> {
    let report = RunReport::from_json(text)
        .map_err(|e| format!("report does not parse as a RunReport: {e}"))?;
    let exposition = report.to_openmetrics();
    openmetrics::validate(&exposition)
        .map_err(|e| format!("OpenMetrics exposition is invalid: {e}"))
}

fn check(report: &Json, text: &str) -> Result<(), String> {
    check_spans_and_counters(report)?;
    check_timelines(report)?;
    check_hists(report)?;
    check_openmetrics(text)
}

fn check_bench(text: &str) -> Result<String, String> {
    let report = BenchReport::from_json(text).map_err(|e| e.to_string())?;
    if report.entries.is_empty() {
        return Err("bench report has no entries".to_string());
    }
    // Stale-metadata watchdog (non-fatal): the recorded revision should
    // match the checkout being validated, and a dirty marker means the
    // numbers came from a modified worktree.
    if let Some(current) = dlp_core::obs::BenchEnv::current_git_rev() {
        if report.env.git_rev != current {
            eprintln!(
                "validate_trace: warning: report records git_rev {} but the checkout is at {} — \
                 regenerate the report, its numbers describe another tree",
                report.env.git_rev, current
            );
        }
    }
    if report.env.git_rev.ends_with("-dirty") {
        eprintln!(
            "validate_trace: warning: report was written from a modified worktree ({})",
            report.env.git_rev
        );
    }
    Ok(format!(
        "{} ({} entries, git_rev {})",
        report.name,
        report.entries.len(),
        report.env.git_rev
    ))
}

/// One span row lifted out of a trace's JSON for containment checks.
struct SpanRow {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: u64,
    nanos: u64,
}

fn span_rows(trace: &Json) -> Result<Vec<SpanRow>, String> {
    let spans = trace
        .get("spans")
        .and_then(Json::as_array)
        .ok_or("trace has no spans array")?;
    if spans.is_empty() {
        return Err("trace has an empty span tree".to_string());
    }
    spans
        .iter()
        .map(|s| {
            let field = |name: &str| {
                s.get(name)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("span has no numeric {name}"))
            };
            Ok(SpanRow {
                id: field("id")? as u64,
                parent: s.get("parent").and_then(Json::as_f64).map(|p| p as u64),
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("span has no name")?
                    .to_string(),
                start: field("start_nanos")? as u64,
                nanos: field("nanos")? as u64,
            })
        })
        .collect()
}

/// Stage spans every recomputing (cache-miss) request must carry.
const REQUIRED_SERVE_SPANS: &[&str] = &["route", "cache.probe", "recompute", "seal", "write"];

fn check_one_trace(trace: &Json) -> Result<(bool, String), String> {
    let trace_id = trace
        .get("trace_id")
        .and_then(Json::as_str)
        .ok_or("trace has no trace_id")?;
    if trace_id.len() != 16 || !trace_id.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("trace_id {trace_id:?} is not 16 hex digits"));
    }
    let spans = span_rows(trace)?;
    let roots: Vec<&SpanRow> = spans.iter().filter(|s| s.parent.is_none()).collect();
    if roots.len() != 1 || roots[0].name != "request" {
        return Err(format!(
            "{trace_id}: expected exactly one root span named \"request\", \
             found {} root(s)",
            roots.len()
        ));
    }
    let root = roots[0];
    for span in &spans {
        let Some(parent_id) = span.parent else {
            continue;
        };
        let parent = spans
            .iter()
            .find(|s| s.id == parent_id)
            .ok_or_else(|| format!("{trace_id}: span {} has a dangling parent", span.id))?;
        if span.nanos > parent.nanos {
            return Err(format!(
                "{trace_id}: child {:?} ({} ns) outlasts its parent {:?} ({} ns)",
                span.name, span.nanos, parent.name, parent.nanos
            ));
        }
        if span.start < parent.start {
            return Err(format!(
                "{trace_id}: child {:?} starts before its parent {:?}",
                span.name, parent.name
            ));
        }
    }
    let recomputed = spans.iter().any(|s| s.name == "recompute");
    if recomputed {
        for name in REQUIRED_SERVE_SPANS {
            if !spans.iter().any(|s| s.name == *name) {
                return Err(format!("{trace_id}: recomputing trace has no {name:?} span"));
            }
        }
        let recompute_id = spans
            .iter()
            .find(|s| s.name == "recompute")
            .map(|s| s.id)
            .unwrap_or_default();
        if !spans.iter().any(|s| s.parent == Some(recompute_id)) {
            return Err(format!(
                "{trace_id}: the recompute span adopted no pipeline stage spans"
            ));
        }
        let covered: u64 = spans
            .iter()
            .filter(|s| s.parent == Some(root.id))
            .map(|s| s.nanos)
            .sum();
        if (covered as f64) < 0.9 * root.nanos as f64 {
            return Err(format!(
                "{trace_id}: the span tree explains only {covered} of {} root nanos",
                root.nanos
            ));
        }
    }
    Ok((recomputed, trace_id.to_string()))
}

fn check_serve_trace(text: &str) -> Result<String, String> {
    let dump = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let traces = dump
        .get("traces")
        .and_then(Json::as_array)
        .ok_or("dump has no traces array")?;
    if traces.is_empty() {
        return Err("dump has no traces".to_string());
    }
    let mut ids = Vec::new();
    let mut recomputes = 0usize;
    for trace in traces {
        let (recomputed, id) = check_one_trace(trace)?;
        if ids.contains(&id) {
            return Err(format!("trace id {id} appears twice"));
        }
        ids.push(id);
        recomputes += usize::from(recomputed);
    }
    if recomputes == 0 {
        return Err("no trace in the dump recomputed — the gate should have \
                    driven at least one cold miss"
            .to_string());
    }
    Ok(format!(
        "{} traces, {recomputes} with recompute span trees",
        traces.len()
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [path] => ("run", path.clone()),
        [flag, path] if flag == "--bench" => ("bench", path.clone()),
        [flag, path] if flag == "--serve-trace" => ("serve", path.clone()),
        _ => {
            eprintln!("usage: validate_trace [--bench | --serve-trace] <report.json>");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if mode != "run" {
        let checked = if mode == "bench" {
            check_bench(&text)
        } else {
            check_serve_trace(&text)
        };
        return match checked {
            Ok(summary) => {
                println!("validate_trace: {path} OK — {summary}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("validate_trace: {path}: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let report = match Json::parse(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("validate_trace: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&report, &text) {
        Ok(()) => {
            println!("validate_trace: {path} OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_trace: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
