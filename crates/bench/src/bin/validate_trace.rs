//! CI validator for observability run reports.
//!
//! Usage: `validate_trace <report.json>`. Parses the report with the
//! in-tree JSON parser and checks that every pipeline stage left a span
//! and that the load-bearing counters are nonzero — the check.sh gate
//! that keeps the `DLP_TRACE` path honest.

use std::process::ExitCode;

use dlp_core::obs::Json;

/// Spans every full-flow run must produce.
const REQUIRED_SPANS: &[&str] = &[
    "layout",
    "extract",
    "atpg",
    "sim.gate",
    "sim.switch",
    "montecarlo",
    "model.fit",
];

/// Counters that must exist and be nonzero.
const REQUIRED_COUNTERS: &[&str] = &[
    "extract.defect_classes",
    "extract.bridge_pairs",
    "extract.faults",
    "atpg.vectors",
    "sim.gate.faults",
    "sim.gate.blocks",
    "sim.gate.detected",
    "sim.switch.faults",
    "mc.shards",
    "mc.dies",
];

fn check(report: &Json) -> Result<(), String> {
    let spans = report
        .get("spans")
        .and_then(Json::as_object)
        .ok_or("report has no spans object")?;
    for name in REQUIRED_SPANS {
        let span = spans
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing span {name:?}"))?;
        let nanos = span
            .get("nanos")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("span {name:?} has no nanos"))?;
        let count = span
            .get("count")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("span {name:?} has no count"))?;
        if count < 1.0 {
            return Err(format!("span {name:?} never entered"));
        }
        if nanos < 0.0 {
            return Err(format!("span {name:?} has negative time"));
        }
    }
    let counters = report
        .get("counters")
        .and_then(Json::as_object)
        .ok_or("report has no counters object")?;
    for name in REQUIRED_COUNTERS {
        let value = counters
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64())
            .ok_or_else(|| format!("missing counter {name:?}"))?;
        if value <= 0.0 {
            return Err(format!("counter {name:?} is zero"));
        }
    }
    // Per-worker tallies must account for every gate-level fault
    // simulation: their sum equals the sum of the live-per-block series.
    let worker_sum: f64 = counters
        .iter()
        .filter(|(k, _)| k.starts_with("sim.gate.worker") && k.ends_with(".items"))
        .filter_map(|(_, v)| v.as_f64())
        .sum();
    let live_sum: f64 = report
        .get("series")
        .and_then(|s| s.get("sim.gate.live_per_block"))
        .and_then(Json::as_array)
        .map(|xs| xs.iter().filter_map(Json::as_f64).sum())
        .ok_or("missing series sim.gate.live_per_block")?;
    if worker_sum != live_sum {
        return Err(format!(
            "sim.gate worker tallies sum to {worker_sum}, \
             but {live_sum} fault simulations were performed"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <report.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match Json::parse(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("validate_trace: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&report) {
        Ok(()) => {
            println!("validate_trace: {path} OK");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("validate_trace: {path}: {msg}");
            ExitCode::FAILURE
        }
    }
}
