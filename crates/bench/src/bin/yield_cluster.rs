//! DL(T) under non-Poisson fallout: how defect clustering shifts the
//! paper's projections.
//!
//! The study holds the operating point fixed — analytic yield
//! `Y = 0.75`, the same extracted fault list, the same simulated
//! coverage trajectory θ(k) — and swaps the fallout distribution:
//! independent Poisson (the paper's assumption), Stapper's
//! negative-binomial at three cluster settings (α = 0.5 / 2 / 8), and
//! the hierarchical die × wafer × lot compound model. Each distribution
//! is calibrated to the target yield (`λ = λ(Y)`), its DL(T) trajectory
//! is computed from the *measured* θ(k) via `DL = 1 − Y(λ)/Y(θλ)`, and
//! eq. 11 is refitted per distribution, so the shift in (R, θ_max)
//! quantifies how far the Poisson-fitted paper model drifts when
//! defects cluster. A Monte-Carlo fallout run per distribution
//! cross-checks the analytic layer at the full test length.
//!
//! Writes `BENCH_yield.json` at the workspace root (versioned
//! [`BenchReport`] schema): per-distribution λ, final DL, (R, θ_max)
//! fits, the full DL(T) trajectory at logarithmic test lengths, the MC
//! cross-check, timed `yield/mc/...` entries, and the standard
//! `calibration/spin` entry so `perf_regress` can gate it.
//!
//! `--smoke` runs the same study on c17 in seconds and writes
//! `BENCH_yield_smoke.json` — the report CI gates against
//! `baselines/yield_baseline.json`.
//!
//! The bin *asserts* the headline physics: at fixed yield and fixed
//! test quality, clustering strictly lowers DL (escapes concentrate on
//! dies the test already rejects), monotonically in the cluster
//! parameter; and the MC estimates agree with the closed forms.

use std::time::Instant;

use dlp_bench::pipeline::{self, PAPER_YIELD};
use dlp_circuit::generators;
use dlp_core::fit::fit_sousa;
use dlp_core::montecarlo::MonteCarloConfig;
use dlp_core::obs::BenchReport;
use dlp_core::weighted::FaultWeights;
use dlp_core::{PipelineError, Ppm, Stage};
use dlp_extract::defects::DefectStatistics;
use dlp_yield::dist::Fallout;
use dlp_yield::mc::simulate_fallout_dist;

/// Simulated production volume for the Monte-Carlo cross-check.
const MC_DIES: usize = 200_000;

/// Seed of the cross-check production line.
const MC_SEED: u64 = 0xC1A5;

/// Tolerance on |MC − analytic| for yield and DL at `MC_DIES` dies.
/// The hierarchical model dominates this bound: its lot-level mixing
/// shrinks the effective sample count to the lot count.
const MC_TOLERANCE: f64 = 0.02;

fn workspace_path(file: &str) -> String {
    format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR"))
}

/// Same fixed CPU-bound loop as `perf_regress`: cancels machine speed
/// when reports are compared across runs.
fn calibration_spin() -> u64 {
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut acc = 0u64;
    for _ in 0..4096 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        acc = acc.wrapping_add(x);
    }
    acc
}

fn calibration_samples() -> Vec<f64> {
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(calibration_spin());
        }
        if t0.elapsed().as_millis() >= 5 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    (0..5)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(calibration_spin());
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect()
}

/// The swept distributions with short report-label names. The
/// hierarchical grouping is scaled down (64-die wafers, 4-wafer lots)
/// so the `MC_DIES` population spans ~780 lots — a production-sized
/// 400 × 25 grouping would leave the cross-check with 20 lots of
/// effective sample.
fn sweep() -> Result<Vec<(&'static str, Fallout)>, PipelineError> {
    let model = |r: Result<Fallout, dlp_core::ModelError>| {
        r.map_err(|e| PipelineError::with_source(Stage::Model, e))
    };
    Ok(vec![
        ("poisson", Fallout::poisson()),
        ("nb_a0.5", model(Fallout::negative_binomial(0.5))?),
        ("nb_a2", model(Fallout::negative_binomial(2.0))?),
        ("nb_a8", model(Fallout::negative_binomial(8.0))?),
        ("hier", model(Fallout::hierarchical(2.0, 8.0, 20.0, 64, 4))?),
    ])
}

struct DistResult {
    label: &'static str,
    lambda: f64,
    dl_final: f64,
    dl_mid: f64,
    fit_r: f64,
    fit_theta_max: f64,
    mc_yield: f64,
    mc_dl: f64,
    analytic_dl_at_mask: f64,
}

fn model_err(e: dlp_core::ModelError) -> PipelineError {
    PipelineError::with_source(Stage::Model, e)
}

fn run() -> Result<(), PipelineError> {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let (circuit, netlist, report_file) = if smoke {
        ("c17", generators::c17(), "BENCH_yield_smoke.json")
    } else {
        ("c432_class", generators::c432_class(), "BENCH_yield.json")
    };

    let obs = pipeline::recorder_from_env();
    let extraction = pipeline::extract_netlist_obs(netlist, &DefectStatistics::maly_cmos(), &obs)?;
    dlp_bench::report_diagnostics(&extraction.diagnostics);
    let run = pipeline::simulate_obs(&extraction, 1, &obs)?;
    let raw_w = extraction.faults.weights();
    let total_vectors = run.vectors.len();
    let ks = dlp_bench::log_lengths(total_vectors);

    // The measured coverage trajectory, shared by every distribution
    // (θ is a weight *fraction*, independent of the λ calibration).
    let mut curve: Vec<(usize, f64, f64)> = Vec::new(); // (k, T, θ)
    for &k in &ks {
        let t = run.record_t.coverage_after(k);
        let theta = run.record_theta.weighted_coverage_after(k, &raw_w)?;
        curve.push((k, t, theta));
    }
    // Mid-curve comparison point: the last sample with θ clearly below
    // saturation, falling back to the middle sample (on tiny circuits
    // the full test set may reach θ = 1, where every DL is 0).
    let mid = curve
        .iter()
        .rev()
        .find(|&&(_, _, theta)| theta < 0.995)
        .copied()
        .unwrap_or(curve[curve.len() / 2]);

    let mut report = BenchReport::new("yield_cluster");
    report.record_samples("calibration/spin", "ns/iter", &calibration_samples());
    let base = format!("yield/{circuit}");
    report.record(&format!("{base}/target_yield"), "fraction", PAPER_YIELD);
    report.record(&format!("{base}/vectors"), "vectors", total_vectors as f64);
    report.record(&format!("{base}/faults"), "faults", raw_w.len() as f64);
    for &(k, t, theta) in &curve {
        report.record(&format!("{base}/curve/k{k}/t"), "fraction", t);
        report.record(&format!("{base}/curve/k{k}/theta"), "fraction", theta);
    }

    let full_mask = run.record_theta.detected_after(total_vectors);
    let mut results: Vec<DistResult> = Vec::new();
    for (label, fallout) in sweep()? {
        let dist = fallout.dist();
        let lambda = dist.lambda_for_yield(PAPER_YIELD).map_err(model_err)?;

        // DL(T) trajectory and the eq. 11 refit for this distribution.
        let mut points: Vec<(f64, f64)> = Vec::new();
        let mut dl_final = 0.0;
        let mut dl_mid = 0.0;
        for &(k, t, theta) in &curve {
            let dl = dist.defect_level(lambda, theta).map_err(model_err)?;
            report.record(&format!("{base}/{label}/k{k}/dl"), "fraction", dl);
            points.push((t, dl));
            if k == curve[curve.len() - 1].0 {
                dl_final = dl;
            }
            if k == mid.0 {
                dl_mid = dl;
            }
        }
        let fitted = fit_sousa(PAPER_YIELD, &points).map_err(model_err)?;

        // Monte-Carlo cross-check at the full test length: weights
        // rescaled so Σw = λ(Y), the mask exactly as simulated.
        let scaled = FaultWeights::new(raw_w.clone())
            .map_err(model_err)?
            .scaled_to_yield((-lambda).exp())
            .map_err(model_err)?;
        let theta_full = run.record_theta.weighted_coverage_after(total_vectors, &raw_w)?;
        let analytic_dl_at_mask = dist.defect_level(lambda, theta_full).map_err(model_err)?;
        let cfg = MonteCarloConfig {
            dies: MC_DIES,
            seed: MC_SEED,
        };
        let mut mc_ns: Vec<f64> = Vec::new();
        let mut est = None;
        for _ in 0..3 {
            let t0 = Instant::now();
            let e = simulate_fallout_dist(&scaled, &full_mask, &cfg, dist)
                .map_err(model_err)?;
            mc_ns.push(t0.elapsed().as_nanos() as f64);
            est = Some(e);
        }
        let est = est.ok_or_else(|| {
            PipelineError::with_source(
                Stage::Model,
                dlp_core::ModelError::BadFitData("no MC repeats ran"),
            )
        })?;
        report.record_samples(&format!("yield/mc/{circuit}/{label}"), "ns/iter", &mc_ns);

        let expected_yield = dist.expected_yield(lambda).map_err(model_err)?;
        if (est.yield_estimate() - expected_yield).abs() > MC_TOLERANCE
            || (est.defect_level() - analytic_dl_at_mask).abs() > MC_TOLERANCE
        {
            return Err(PipelineError::with_source(
                Stage::Model,
                dlp_core::ModelError::BadFitData(
                    "Monte-Carlo fallout disagrees with the analytic model",
                ),
            )
            .context(format!(
                "{label}: MC (Y {:.4}, DL {:.4}) vs analytic (Y {:.4}, DL {:.4})",
                est.yield_estimate(),
                est.defect_level(),
                expected_yield,
                analytic_dl_at_mask
            )));
        }

        report.record(&format!("{base}/{label}/lambda"), "defects", lambda);
        report.record(&format!("{base}/{label}/dl_final"), "fraction", dl_final);
        report.record(&format!("{base}/{label}/dl_mid"), "fraction", dl_mid);
        report.record(
            &format!("{base}/{label}/fit_r"),
            "ratio",
            fitted.susceptibility_ratio(),
        );
        report.record(
            &format!("{base}/{label}/fit_theta_max"),
            "fraction",
            fitted.theta_max(),
        );
        report.record(
            &format!("{base}/{label}/mc_yield"),
            "fraction",
            est.yield_estimate(),
        );
        report.record(
            &format!("{base}/{label}/mc_dl"),
            "fraction",
            est.defect_level(),
        );
        results.push(DistResult {
            label,
            lambda,
            dl_final,
            dl_mid,
            fit_r: fitted.susceptibility_ratio(),
            fit_theta_max: fitted.theta_max(),
            mc_yield: est.yield_estimate(),
            mc_dl: est.defect_level(),
            analytic_dl_at_mask,
        });
    }

    // Headline physics, asserted: at fixed yield and fixed coverage,
    // clustering lowers DL, monotonically in cluster strength. (Checked
    // at the mid-curve point; at θ = 1 every distribution ships DL 0.)
    let dl_of = |label: &str| {
        results
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.dl_mid)
            .unwrap_or(f64::NAN)
    };
    let ordered = [
        dl_of("nb_a0.5"),
        dl_of("nb_a2"),
        dl_of("nb_a8"),
        dl_of("poisson"),
    ];
    if dl_of("poisson") > 1e-12
        && !(ordered.windows(2).all(|p| p[0] < p[1]) && dl_of("hier") < dl_of("poisson"))
    {
        return Err(PipelineError::with_source(
            Stage::Model,
            dlp_core::ModelError::BadFitData(
                "clustered DL ordering violated (expected DL to fall as clustering grows)",
            ),
        )
        .context(format!("mid-curve DLs: {ordered:?}, hier {}", dl_of("hier"))));
    }

    println!(
        "yield_cluster — {circuit}, Y = {PAPER_YIELD}, {} faults, {} vectors \
         (mid-curve point: k = {}, θ = {:.4})",
        raw_w.len(),
        total_vectors,
        mid.0,
        mid.2
    );
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.4}", r.lambda),
                format!("{:.1}", Ppm::from_fraction(r.dl_mid).value()),
                format!("{:.1}", Ppm::from_fraction(r.dl_final).value()),
                format!("{:.3}", r.fit_r),
                format!("{:.4}", r.fit_theta_max),
                format!("{:.4}", r.mc_yield),
                format!("{:.1}", Ppm::from_fraction(r.mc_dl).value()),
                format!("{:.1}", Ppm::from_fraction(r.analytic_dl_at_mask).value()),
            ]
        })
        .collect();
    dlp_bench::print_table(
        &[
            "dist",
            "lambda",
            "DL_mid ppm",
            "DL_end ppm",
            "fit R",
            "fit th_max",
            "MC yield",
            "MC DL ppm",
            "ana DL ppm",
        ],
        &rows,
    );

    let path = workspace_path(report_file);
    report
        .write_to(&path)
        .map_err(|e| PipelineError::new(Stage::Model, format!("cannot write {path}: {e}")))?;
    println!("yield_cluster: wrote {path}");
    if let Some(trace) = pipeline::write_run_report(&obs, "yield_cluster")
        .map_err(|e| PipelineError::new(Stage::Model, format!("cannot write trace: {e}")))?
    {
        println!("yield_cluster: wrote {trace}");
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}
