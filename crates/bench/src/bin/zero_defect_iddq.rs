//! The paper's conclusion, quantified: "more sophisticated detection
//! techniques, like delay and/or current testing, must become part of the
//! production routine, if a zero defect level strategy is aimed."
//!
//! This experiment re-runs the Fig. 4 detection with the I_DDQ observation
//! model added and reports how much of the voltage-invisible residual
//! weight (the `1 − θ_max` slice, eq. 11's floor) current testing
//! recovers.

use dlp_bench::pipeline::{self, PAPER_YIELD};
use dlp_bench::print_table;
use dlp_circuit::switch;
use dlp_core::Ppm;
use dlp_extract::defects::DefectStatistics;
use dlp_extract::faults::OpenLevelModel;
use dlp_sim::switchlevel::{DetectionMode, SwitchConfig, SwitchSimulator};

fn main() -> std::process::ExitCode {
    dlp_bench::run_main(run)
}

fn run() -> Result<(), dlp_core::PipelineError> {
    eprintln!("layout + extraction (c432-class)...");
    let ex = pipeline::extract_c432(&DefectStatistics::maly_cmos())?;
    dlp_bench::report_diagnostics(&ex.diagnostics);
    eprintln!("ATPG...");
    let run = pipeline::simulate(&ex, 1994)?;
    let w = ex.faults.weights();
    let k = run.vectors.len();

    let sw = switch::expand(&ex.netlist)?;
    let sim = SwitchSimulator::new(sw, SwitchConfig::default());
    let lowered =
        ex.faults
            .to_switch_faults(&ex.netlist, sim.netlist(), &OpenLevelModel::default())?;

    let mut rows = Vec::new();
    let mut thetas = Vec::new();
    for (name, mode) in [
        ("voltage only", DetectionMode::Voltage),
        ("IDDQ only", DetectionMode::Iddq),
        ("voltage + IDDQ", DetectionMode::VoltageAndIddq),
    ] {
        eprintln!("detection: {name}...");
        let record = sim.detect_with(&lowered, &run.vectors, mode)?;
        let theta = record.weighted_coverage_after(k, &w)?;
        let dl = ex.weights.defect_level(theta)?;
        thetas.push(theta);
        rows.push(vec![
            name.to_string(),
            format!("{theta:.4}"),
            format!("{:.4}", record.coverage_after(k)),
            format!("{}", Ppm::from_fraction(dl)),
        ]);
    }

    println!("\nZero-defect strategy: detection technique vs realistic coverage");
    println!("(c432-class, Y = {PAPER_YIELD}, {k} vectors)\n");
    print_table(&["technique", "theta", "Gamma", "DL"], &rows);

    let (v, i, c) = (thetas[0], thetas[1], thetas[2]);
    println!(
        "\nvoltage-invisible weight recovered by adding IDDQ: {:.1} % of the residual",
        100.0 * (c - v) / (1.0 - v).max(1e-9)
    );
    assert!(c > v, "adding IDDQ must raise theta");
    assert!(
        (1.0 - c) < 0.6 * (1.0 - v),
        "IDDQ should recover most of the voltage residual: 1-theta {:.4} -> {:.4}",
        1.0 - v,
        1.0 - c
    );
    println!(
        "residual DL floor: voltage {} -> combined {}",
        Ppm::from_fraction(ex.weights.defect_level(v)?),
        Ppm::from_fraction(ex.weights.defect_level(c)?)
    );
    let _ = i;
    println!("\nacceptance check passed: current testing collapses the residual —");
    println!("exactly the production change the paper calls for.");
    Ok(())
}
