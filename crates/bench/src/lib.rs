//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one figure or table of the
//! paper (see `DESIGN.md` §4); this module supplies the common output
//! plumbing: aligned numeric tables, CSV emission, and a small ASCII line
//! plot good enough to eyeball curve shapes in a terminal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod regress;

use std::fmt::Write as _;

use dlp_core::{Diagnostics, PipelineError};

/// Prints graceful-degradation warnings (if any) to stderr, so a figure
/// binary surfaces partial-result caveats without aborting.
pub fn report_diagnostics(diags: &Diagnostics) {
    if !diags.is_empty() {
        eprintln!("warnings (degraded stages):\n{diags}");
    }
}

/// Runs a figure binary's fallible body: a stage-tagged error is rendered
/// to stderr and the process exits nonzero, instead of unwinding through
/// a panic.
pub fn run_main(
    body: impl FnOnce() -> Result<(), PipelineError>,
) -> std::process::ExitCode {
    match body() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// A named data series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// The points, in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// Renders series as CSV (`x,name1,name2,...`), merging on the x values of
/// the first series (other series must share them — the binaries all
/// sample on a common grid).
pub fn to_csv(series: &[Series]) -> String {
    let mut out = String::new();
    let _ = write!(out, "x");
    for s in series {
        let _ = write!(out, ",{}", s.name);
    }
    let _ = writeln!(out);
    if series.is_empty() {
        return out;
    }
    for (i, &(x, _)) in series[0].points.iter().enumerate() {
        let _ = write!(out, "{x}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => {
                    let _ = write!(out, ",{y}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders series as an ASCII plot (linear axes), `width × height`
/// characters, one glyph per series.
pub fn ascii_plot(series: &[Series], width: usize, height: usize) -> String {
    const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
    }
    if !(x0.is_finite() && y0.is_finite()) || x1 <= x0 {
        return String::from("(no data)\n");
    }
    if y1 <= y0 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "y: {y0:.4} .. {y1:.4}");
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "|{line}|");
    }
    let _ = writeln!(out, "x: {x0:.4} .. {x1:.4}");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", GLYPHS[si % GLYPHS.len()], s.name);
    }
    out
}

/// Prints a numeric table with a header.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("{}", line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Logarithmically spaced test-length samples `1..=max` (deduplicated).
pub fn log_lengths(max: usize) -> Vec<usize> {
    let mut out = vec![1usize];
    let mut k = 1.0f64;
    while (k as usize) < max {
        k *= 1.5;
        let v = (k as usize).min(max);
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape() {
        let s = vec![
            Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]),
            Series::new("b", vec![(0.0, 3.0), (1.0, 4.0)]),
        ];
        let csv = to_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "0,1,3");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn plot_contains_glyphs_and_bounds() {
        let s = vec![Series::new("t", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)])];
        let p = ascii_plot(&s, 20, 8);
        assert!(p.contains('*'));
        assert!(p.contains("x: 0.0000 .. 2.0000"));
    }

    #[test]
    fn plot_survives_degenerate_data() {
        assert_eq!(ascii_plot(&[], 10, 5), "(no data)\n");
        let s = vec![Series::new("flat", vec![(0.0, 1.0), (1.0, 1.0)])];
        assert!(ascii_plot(&s, 10, 5).contains('*'));
    }

    #[test]
    fn log_lengths_monotone_and_capped() {
        let ls = log_lengths(1000);
        assert_eq!(ls[0], 1);
        assert_eq!(*ls.last().unwrap(), 1000);
        assert!(ls.windows(2).all(|w| w[1] > w[0]));
    }
}
