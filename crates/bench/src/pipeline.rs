//! The shared experimental pipeline behind Figs. 3–6: layout → extraction
//! → ATPG → gate- and switch-level fault simulation, with the paper's
//! yield scaling. Each figure binary runs the stages it needs.

use dlp_atpg::generate::{generate_tests, AtpgConfig, PodemVerdict};
use dlp_circuit::{generators, switch, Netlist};
use dlp_core::obs::{Recorder, RunReport, TraceSetting};
use dlp_core::par::ThreadCount;
use dlp_core::weighted::FaultWeights;
use dlp_core::{Diagnostics, PipelineError, RunBudget, Stage};
use dlp_extract::defects::DefectStatistics;
use dlp_extract::extractor;
use dlp_extract::faults::{FaultSet, OpenLevelModel};
use dlp_extract::ExtractError;
use dlp_layout::chip::ChipLayout;
use dlp_sim::detection::DetectionRecord;
use dlp_sim::switchlevel::{SwitchConfig, SwitchSimulator};
use dlp_sim::{ppsfp, stuck_at};

/// The paper's yield operating point.
pub const PAPER_YIELD: f64 = 0.75;

/// Stage 1 output: the physical design and its extracted fault list.
pub struct Extraction {
    /// The benchmark netlist.
    pub netlist: Netlist,
    /// Its standard-cell layout.
    pub chip: ChipLayout,
    /// The weighted realistic fault list (pruned of negligible weights).
    pub faults: FaultSet,
    /// The weights scaled so that `Y = 0.75` (eq. 5 / §3 of the paper).
    pub weights: FaultWeights,
    /// Warnings from stages that degraded gracefully (connectivity
    /// violations, pruning anomalies). Empty on a clean run.
    pub diagnostics: Diagnostics,
}

/// Builds the c432-class chip and extracts faults under the given defect
/// statistics.
///
/// # Errors
///
/// See [`extract_netlist`].
pub fn extract_c432(stats: &DefectStatistics) -> Result<Extraction, PipelineError> {
    extract_netlist(generators::c432_class(), stats)
}

/// [`extract_c432`] with an observability [`Recorder`]; see
/// [`extract_netlist_obs`].
///
/// # Errors
///
/// See [`extract_netlist`].
pub fn extract_c432_obs(
    stats: &DefectStatistics,
    obs: &Recorder,
) -> Result<Extraction, PipelineError> {
    extract_netlist_obs(generators::c432_class(), stats, obs)
}

/// Same pipeline for an arbitrary netlist.
///
/// Recoverable anomalies degrade gracefully instead of aborting: layout
/// connectivity violations and a prune that would drop every fault are
/// recorded as [`Diagnostics`] warnings on the returned [`Extraction`],
/// which still carries usable partial results.
///
/// # Errors
///
/// A stage-tagged [`PipelineError`] when a stage cannot produce a result
/// at all: layout generation fails, the defect statistics are unusable,
/// or extraction finds no faults (so no weights exist to scale).
pub fn extract_netlist(
    netlist: Netlist,
    stats: &DefectStatistics,
) -> Result<Extraction, PipelineError> {
    extract_netlist_obs(netlist, stats, Recorder::noop())
}

/// [`extract_netlist`] with an observability [`Recorder`].
///
/// Adds `layout` and `extract` spans, layout shape / pruning counters,
/// and the extraction-stage counters and gauges recorded by
/// [`extractor::extract_obs`]. Tracing never changes the extraction.
///
/// # Errors
///
/// See [`extract_netlist`].
pub fn extract_netlist_obs(
    netlist: Netlist,
    stats: &DefectStatistics,
    obs: &Recorder,
) -> Result<Extraction, PipelineError> {
    let mut diagnostics = Diagnostics::new();
    let chip = {
        let _span = obs.span("layout");
        ChipLayout::generate(&netlist, &Default::default())
            .map_err(|e| PipelineError::from(e).context(netlist.name().to_string()))?
    };
    let violations = chip.verify_connectivity();
    obs.add("layout.violations", violations.len() as u64);
    if !violations.is_empty() {
        diagnostics.warn(
            Stage::Layout,
            format!(
                "{} connectivity violations (first: {:?}); \
                 critical areas may be distorted",
                violations.len(),
                violations[0]
            ),
        );
    }
    let threads = ThreadCount::from_env().map_err(ExtractError::from)?;
    let config = dlp_extract::extractor::ExtractionConfig::default();
    let mut faults = extractor::extract_obs(&chip, stats, &config, threads, obs)?;
    let before = faults.len();
    let dropped = faults.prune_below(1e-5);
    obs.add("extract.pruned", dropped as u64);
    if faults.is_empty() && before > 0 {
        diagnostics.warn(
            Stage::Extraction,
            format!(
                "pruning would drop all {before} faults; keeping the unpruned list"
            ),
        );
        faults = extractor::extract_obs(&chip, stats, &config, threads, obs)?;
    } else if dropped > 0 && dropped * 4 > before {
        diagnostics.warn(
            Stage::Extraction,
            format!("pruning dropped {dropped} of {before} faults"),
        );
    }
    let weights = FaultWeights::new(faults.weights())
        .map_err(|e| PipelineError::from(e).context("building fault weights"))?
        .scaled_to_yield(PAPER_YIELD)
        .map_err(|e| PipelineError::from(e).context("scaling weights to the paper yield"))?;
    obs.gauge("weights.yield", PAPER_YIELD);
    if obs.is_enabled() {
        // Distribution of post-prune fault weights: the tail (a few
        // heavy bridges dominating DL) is visible as p99/max ≫ p50.
        for &w in &faults.weights() {
            obs.observe("pipeline.fault_weight", w);
        }
    }
    Ok(Extraction {
        netlist,
        chip,
        faults,
        weights,
        diagnostics,
    })
}

/// Stage 2 output: vectors and both fault-simulation records.
pub struct SimulationRun {
    /// The applied vector sequence (random prefix + deterministic tail).
    pub vectors: Vec<Vec<bool>>,
    /// Length of the random prefix.
    pub random_prefix: usize,
    /// Gate-level stuck-at record over *testable* faults (`T(k)`).
    pub record_t: DetectionRecord,
    /// Switch-level record over the realistic faults (`θ(k)`, `Γ(k)`).
    pub record_theta: DetectionRecord,
    /// Number of stuck-at faults proven redundant (excluded from `T`).
    pub redundant: usize,
}

/// Runs ATPG and both simulators for an extraction.
///
/// The gate-level pass honours the `DLP_BUDGET_MS` / `DLP_BUDGET_MB` /
/// `DLP_CANCEL_AFTER` environment knobs (see `dlp_core::budget`): a
/// tripped budget surfaces as a stage-tagged interruption carrying a
/// resume checkpoint rather than a partial result.
///
/// # Errors
///
/// A stage-tagged [`PipelineError`] when the netlist cannot be expanded
/// to switch level, the fault list cannot be lowered onto it, a
/// `DLP_BUDGET_*` variable is set to garbage, or the run budget trips.
pub fn simulate(extraction: &Extraction, seed: u64) -> Result<SimulationRun, PipelineError> {
    simulate_obs(extraction, seed, Recorder::noop())
}

/// [`simulate`] with an observability [`Recorder`].
///
/// Adds an `atpg` span and vector/redundancy counters, then runs the
/// gate-level simulator via [`ppsfp::simulate_obs`] (scope `sim.gate`)
/// and the switch-level simulator via
/// [`SwitchSimulator::detect_obs`] (scope `sim.switch`). Tracing never
/// changes either record.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_obs(
    extraction: &Extraction,
    seed: u64,
    obs: &Recorder,
) -> Result<SimulationRun, PipelineError> {
    let threads = ThreadCount::from_env().map_err(dlp_core::ModelError::from)?;
    let budget = RunBudget::from_env()?;
    simulate_budgeted(extraction, seed, threads, &budget, obs)
}

/// [`simulate_obs`] with an explicit worker count and [`RunBudget`]
/// instead of the `DLP_THREADS` / `DLP_BUDGET_*` environment knobs —
/// for embedders (the projection service) that manage budgets per
/// request rather than per process.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_budgeted(
    extraction: &Extraction,
    seed: u64,
    threads: ThreadCount,
    budget: &RunBudget,
    obs: &Recorder,
) -> Result<SimulationRun, PipelineError> {
    let netlist = &extraction.netlist;
    let sa = stuck_at::enumerate(netlist).collapse();
    let atpg = {
        let _span = obs.span("atpg");
        generate_tests(
            netlist,
            sa.faults(),
            &AtpgConfig {
                random_budget: 1024,
                random_stall: 192,
                seed,
                ..Default::default()
            },
        )?
    };
    let redundant: Vec<_> = atpg
        .undetected
        .iter()
        .filter(|(_, v)| *v == PodemVerdict::Redundant)
        .map(|(f, _)| *f)
        .collect();
    let testable: Vec<_> = sa
        .faults()
        .iter()
        .copied()
        .filter(|f| !redundant.contains(f))
        .collect();
    obs.add("atpg.vectors", atpg.vectors.len() as u64);
    obs.add("atpg.random_prefix", atpg.random_prefix_len as u64);
    obs.add("atpg.redundant", redundant.len() as u64);

    let record_t = ppsfp::simulate_resumable(
        netlist,
        &testable,
        &atpg.vectors,
        threads,
        obs,
        budget,
        None,
    )?;

    let sw = switch::expand(netlist)
        .map_err(|e| PipelineError::from(e).context("expanding to switch level"))?;
    let sim = SwitchSimulator::new(sw, SwitchConfig::default());
    let lowered = extraction.faults.to_switch_faults(
        netlist,
        sim.netlist(),
        &OpenLevelModel::default(),
    )?;
    let record_theta = sim.detect_obs(
        &lowered,
        &atpg.vectors,
        dlp_sim::switchlevel::DetectionMode::Voltage,
        threads,
        obs,
    )?;

    Ok(SimulationRun {
        vectors: atpg.vectors,
        random_prefix: atpg.random_prefix_len,
        record_t,
        record_theta,
        redundant: redundant.len(),
    })
}

/// Builds a [`Recorder`] from the `DLP_TRACE` environment variable:
/// enabled when tracing is requested (`DLP_TRACE=1` or an explicit
/// path), a no-op recorder otherwise.
pub fn recorder_from_env() -> Recorder {
    Recorder::from_setting(&TraceSetting::from_env())
}

/// Writes the recorder's [`RunReport`] to the path requested by
/// `DLP_TRACE`, next to the `BENCH_*.json` files at the workspace root.
///
/// `DLP_TRACE=1` selects the default path `TRACE_<name>.json`; any other
/// non-empty, non-`"0"` value is used as the path verbatim. Returns the
/// written path, or `None` when tracing is off (including a disabled
/// recorder, so callers can pass the recorder straight through).
///
/// # Errors
///
/// Propagates the I/O error if the report file cannot be written.
pub fn write_run_report(obs: &Recorder, name: &str) -> std::io::Result<Option<String>> {
    let setting = TraceSetting::from_env();
    if !obs.is_enabled() || !setting.is_on() {
        return Ok(None);
    }
    let default = format!(
        "{}/../../TRACE_{name}.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let Some(path) = setting.resolve(&default) else {
        return Ok(None);
    };
    let report: RunReport = obs.report(name);
    report.write_to(&path)?;
    Ok(Some(path))
}

/// One curve sample: `(k, T(k), θ(k), Γ(k), DL(θ(k)))`.
pub type CurveSample = (usize, f64, f64, f64, f64);

/// The `(T(k), θ(k), Γ(k), DL(θ(k)))` samples at logarithmic test lengths.
///
/// # Errors
///
/// [`PipelineError`] (model stage) if a coverage sample falls outside
/// `[0, 1]` — a simulator-record inconsistency, not an input condition.
pub fn curve_samples(
    extraction: &Extraction,
    run: &SimulationRun,
) -> Result<Vec<CurveSample>, PipelineError> {
    let w = extraction.faults.weights();
    crate::log_lengths(run.vectors.len())
        .into_iter()
        .map(|k| {
            let t = run.record_t.coverage_after(k);
            let theta = run.record_theta.weighted_coverage_after(k, &w)?;
            let gamma = run.record_theta.coverage_after(k);
            let dl = extraction
                .weights
                .defect_level(theta)
                .map_err(|e| PipelineError::from(e).context(format!("DL at k = {k}")))?;
            Ok((k, t, theta, gamma, dl))
        })
        .collect()
}
