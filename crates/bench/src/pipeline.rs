//! The shared experimental pipeline behind Figs. 3–6: layout → extraction
//! → ATPG → gate- and switch-level fault simulation, with the paper's
//! yield scaling. Each figure binary runs the stages it needs.

use dlp_atpg::generate::{generate_tests, AtpgConfig, PodemVerdict};
use dlp_circuit::{generators, switch, Netlist};
use dlp_core::weighted::FaultWeights;
use dlp_extract::defects::DefectStatistics;
use dlp_extract::extractor;
use dlp_extract::faults::{FaultSet, OpenLevelModel};
use dlp_layout::chip::ChipLayout;
use dlp_sim::detection::DetectionRecord;
use dlp_sim::switchlevel::{SwitchConfig, SwitchSimulator};
use dlp_sim::{ppsfp, stuck_at};

/// The paper's yield operating point.
pub const PAPER_YIELD: f64 = 0.75;

/// Stage 1 output: the physical design and its extracted fault list.
pub struct Extraction {
    /// The benchmark netlist.
    pub netlist: Netlist,
    /// Its standard-cell layout.
    pub chip: ChipLayout,
    /// The weighted realistic fault list (pruned of negligible weights).
    pub faults: FaultSet,
    /// The weights scaled so that `Y = 0.75` (eq. 5 / §3 of the paper).
    pub weights: FaultWeights,
}

/// Builds the c432-class chip and extracts faults under the given defect
/// statistics.
///
/// # Panics
///
/// Panics if layout generation fails (a tuning bug, not an input
/// condition).
pub fn extract_c432(stats: &DefectStatistics) -> Extraction {
    extract_netlist(generators::c432_class(), stats)
}

/// Same pipeline for an arbitrary netlist.
///
/// # Panics
///
/// See [`extract_c432`].
pub fn extract_netlist(netlist: Netlist, stats: &DefectStatistics) -> Extraction {
    let chip = ChipLayout::generate(&netlist, &Default::default()).expect("layout generates");
    assert_eq!(
        chip.verify_connectivity().len(),
        0,
        "layout has geometric shorts"
    );
    let mut faults = extractor::extract(&chip, stats);
    faults.prune_below(1e-5);
    let weights = FaultWeights::new(faults.weights())
        .expect("non-empty fault list")
        .scaled_to_yield(PAPER_YIELD)
        .expect("valid yield");
    Extraction {
        netlist,
        chip,
        faults,
        weights,
    }
}

/// Stage 2 output: vectors and both fault-simulation records.
pub struct SimulationRun {
    /// The applied vector sequence (random prefix + deterministic tail).
    pub vectors: Vec<Vec<bool>>,
    /// Length of the random prefix.
    pub random_prefix: usize,
    /// Gate-level stuck-at record over *testable* faults (`T(k)`).
    pub record_t: DetectionRecord,
    /// Switch-level record over the realistic faults (`θ(k)`, `Γ(k)`).
    pub record_theta: DetectionRecord,
    /// Number of stuck-at faults proven redundant (excluded from `T`).
    pub redundant: usize,
}

/// Runs ATPG and both simulators for an extraction.
///
/// # Panics
///
/// Panics on internal inconsistencies only.
pub fn simulate(extraction: &Extraction, seed: u64) -> SimulationRun {
    let netlist = &extraction.netlist;
    let sa = stuck_at::enumerate(netlist).collapse();
    let atpg = generate_tests(
        netlist,
        sa.faults(),
        &AtpgConfig {
            random_budget: 1024,
            random_stall: 192,
            seed,
            ..Default::default()
        },
    );
    let redundant: Vec<_> = atpg
        .undetected
        .iter()
        .filter(|(_, v)| *v == PodemVerdict::Redundant)
        .map(|(f, _)| *f)
        .collect();
    let testable: Vec<_> = sa
        .faults()
        .iter()
        .copied()
        .filter(|f| !redundant.contains(f))
        .collect();

    let record_t = ppsfp::simulate(netlist, &testable, &atpg.vectors);

    let sw = switch::expand(netlist).expect("expandable");
    let sim = SwitchSimulator::new(sw, SwitchConfig::default());
    let lowered =
        extraction
            .faults
            .to_switch_faults(netlist, sim.netlist(), &OpenLevelModel::default());
    let record_theta = sim.detect(&lowered, &atpg.vectors);

    SimulationRun {
        vectors: atpg.vectors,
        random_prefix: atpg.random_prefix_len,
        record_t,
        record_theta,
        redundant: redundant.len(),
    }
}

/// The `(T(k), θ(k), Γ(k), DL(θ(k)))` samples at logarithmic test lengths.
pub fn curve_samples(
    extraction: &Extraction,
    run: &SimulationRun,
) -> Vec<(usize, f64, f64, f64, f64)> {
    let w = extraction.faults.weights();
    crate::log_lengths(run.vectors.len())
        .into_iter()
        .map(|k| {
            let t = run.record_t.coverage_after(k);
            let theta = run.record_theta.weighted_coverage_after(k, &w);
            let gamma = run.record_theta.coverage_after(k);
            let dl = extraction
                .weights
                .defect_level(theta)
                .expect("theta in range");
            (k, t, theta, gamma, dl)
        })
        .collect()
}
