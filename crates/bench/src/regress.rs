//! Cross-run performance comparison for the `perf_regress` gate.
//!
//! Raw ns/iter numbers are not comparable across machines, so every
//! [`BenchReport`] fed to this module must carry a **calibration** entry
//! — a fixed CPU-bound workload measured in the same process as the real
//! workloads. Comparing *calibration-normalized* costs
//! (`workload / calibration`) cancels the machine-speed factor; what
//! remains is the algorithmic cost, which is what a regression gate
//! should track.
//!
//! Noise handling: when an entry carries raw samples, the **minimum**
//! sample is used instead of the median — the best observed time is the
//! least contaminated estimate of a workload's true cost (interference
//! only ever adds time). A timed entry with *no* samples has no noise
//! floor at all, so any comparison touching one is flagged as
//! low-confidence ([`Comparison::low_confidence`]) rather than silently
//! trusted. On top of that the thresholds are deliberately loose: drift
//! below [`WARN_RATIO`] passes silently, drift in
//! `[WARN_RATIO, FAIL_RATIO)` is reported but non-fatal, and only a
//! normalized slowdown of [`FAIL_RATIO`] or worse fails the gate.

use dlp_core::obs::{BenchEntry, BenchReport};

/// Normalized slowdown at which a finding is reported (non-fatal).
pub const WARN_RATIO: f64 = 1.5;

/// Normalized slowdown at which the gate fails.
pub const FAIL_RATIO: f64 = 2.0;

/// The entry label every comparable report must carry.
pub const CALIBRATION_LABEL: &str = "calibration/spin";

/// The unit of timed entries; only these are compared.
pub const TIMED_UNIT: &str = "ns/iter";

/// Why two reports could not be compared at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressError {
    /// A report is missing its calibration entry.
    MissingCalibration {
        /// `"baseline"` or `"current"`.
        which: &'static str,
    },
    /// A calibration value was zero, negative, or non-finite.
    BadCalibration {
        /// `"baseline"` or `"current"`.
        which: &'static str,
    },
}

impl std::fmt::Display for RegressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressError::MissingCalibration { which } => write!(
                f,
                "{which} report has no {CALIBRATION_LABEL:?} entry; \
                 reports without calibration cannot be compared across machines"
            ),
            RegressError::BadCalibration { which } => {
                write!(f, "{which} report's calibration value is not a positive number")
            }
        }
    }
}

impl std::error::Error for RegressError {}

/// Per-workload comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Normalized drift below [`WARN_RATIO`].
    Pass,
    /// Normalized slowdown in `[WARN_RATIO, FAIL_RATIO)` — reported,
    /// non-fatal.
    Warn,
    /// Normalized slowdown of [`FAIL_RATIO`] or worse.
    Fail,
}

/// One compared workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The workload label.
    pub label: String,
    /// Baseline cost in ns/iter (best sample).
    pub baseline_ns: f64,
    /// Current cost in ns/iter (best sample).
    pub current_ns: f64,
    /// Calibration-normalized slowdown: `> 1` is slower than baseline.
    pub ratio: f64,
    /// The verdict the thresholds assign to `ratio`.
    pub verdict: Verdict,
}

/// The outcome of comparing a current report against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Compared workloads, in the current report's order.
    pub findings: Vec<Finding>,
    /// Timed workloads present now but absent from the baseline
    /// (non-fatal: the baseline predates them).
    pub missing_in_baseline: Vec<String>,
    /// Timed workloads in the baseline that were not measured now
    /// (non-fatal, but reported — silent coverage loss hides regressions).
    pub missing_in_current: Vec<String>,
    /// `(baseline, current)` CPU counts when they differ (non-fatal).
    ///
    /// Calibration cancels core *speed*, not core *count*: a baseline
    /// recorded on a single-CPU container makes any multi-threaded
    /// "speedup" (or slowdown) on real hardware an artifact of the
    /// environment, not the code — the committed 0.6x parallel
    /// "speedup" was exactly this.
    pub cpu_mismatch: Option<(usize, usize)>,
    /// Compared workloads where at least one side carried no raw
    /// samples (non-fatal, but reported): a single-shot wall time has
    /// no noise floor, so its verdict is low-confidence and a flap
    /// should be read as measurement noise before code drift.
    pub low_confidence: Vec<String>,
}

impl Comparison {
    /// Whether the gate passes (warnings allowed, failures not).
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.verdict != Verdict::Fail)
    }

    /// Findings at or above the warn threshold, worst first.
    pub fn flagged(&self) -> Vec<&Finding> {
        let mut out: Vec<&Finding> = self
            .findings
            .iter()
            .filter(|f| f.verdict != Verdict::Pass)
            .collect();
        out.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
        out
    }
}

/// The least-noise cost estimate of an entry: the minimum sample when
/// samples exist, the headline value otherwise.
fn best_ns(entry: &BenchEntry) -> f64 {
    entry
        .samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min)
        .min(if entry.samples.is_empty() {
            entry.value
        } else {
            f64::INFINITY
        })
}

fn calibration_of(report: &BenchReport, which: &'static str) -> Result<f64, RegressError> {
    let entry = report
        .entry(CALIBRATION_LABEL)
        .ok_or(RegressError::MissingCalibration { which })?;
    let value = best_ns(entry);
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(RegressError::BadCalibration { which })
    }
}

fn verdict_for(ratio: f64) -> Verdict {
    if !ratio.is_finite() || ratio >= FAIL_RATIO {
        Verdict::Fail
    } else if ratio >= WARN_RATIO {
        Verdict::Warn
    } else {
        Verdict::Pass
    }
}

/// Compares the timed (`ns/iter`) entries of `current` against
/// `baseline`, normalizing both sides by their own calibration entry.
///
/// # Errors
///
/// [`RegressError`] when either report lacks a usable calibration entry
/// — without it the numbers are not comparable across machines and any
/// verdict would be noise.
pub fn compare(baseline: &BenchReport, current: &BenchReport) -> Result<Comparison, RegressError> {
    let base_cal = calibration_of(baseline, "baseline")?;
    let cur_cal = calibration_of(current, "current")?;
    let timed =
        |e: &&BenchEntry| e.unit == TIMED_UNIT && e.label != CALIBRATION_LABEL;
    let mut findings = Vec::new();
    let mut missing_in_baseline = Vec::new();
    let mut low_confidence = Vec::new();
    for entry in current.entries.iter().filter(timed) {
        let Some(base) = baseline.entry(&entry.label).filter(|e| e.unit == TIMED_UNIT)
        else {
            missing_in_baseline.push(entry.label.clone());
            continue;
        };
        if base.samples.is_empty() || entry.samples.is_empty() {
            low_confidence.push(entry.label.clone());
        }
        let baseline_ns = best_ns(base);
        let current_ns = best_ns(entry);
        let ratio = if baseline_ns > 0.0 {
            (current_ns / cur_cal) / (baseline_ns / base_cal)
        } else {
            f64::INFINITY
        };
        findings.push(Finding {
            label: entry.label.clone(),
            baseline_ns,
            current_ns,
            ratio,
            verdict: verdict_for(ratio),
        });
    }
    let missing_in_current = baseline
        .entries
        .iter()
        .filter(timed)
        .filter(|e| current.entry(&e.label).is_none())
        .map(|e| e.label.clone())
        .collect();
    let cpu_mismatch = (baseline.env.cpus != current.env.cpus)
        .then_some((baseline.env.cpus, current.env.cpus));
    Ok(Comparison {
        findings,
        missing_in_baseline,
        missing_in_current,
        cpu_mismatch,
        low_confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new("t");
        for &(label, ns) in entries {
            r.record_samples(label, TIMED_UNIT, &[ns, ns * 1.1]);
        }
        r
    }

    #[test]
    fn identical_reports_pass_with_unit_ratios() {
        let base = report(&[(CALIBRATION_LABEL, 100.0), ("w/a", 1000.0), ("w/b", 5000.0)]);
        let cmp = compare(&base, &base).expect("comparable");
        assert_eq!(cmp.findings.len(), 2, "calibration itself is not a finding");
        for f in &cmp.findings {
            assert!((f.ratio - 1.0).abs() < 1e-12, "{f:?}");
            assert_eq!(f.verdict, Verdict::Pass);
        }
        assert!(cmp.passed());
        assert!(cmp.flagged().is_empty());
    }

    #[test]
    fn calibration_cancels_machine_speed() {
        // The "new machine" is uniformly 3x slower — every workload AND
        // the calibration loop. Normalized drift is 1.0: no regression.
        let base = report(&[(CALIBRATION_LABEL, 100.0), ("w/a", 1000.0)]);
        let cur = report(&[(CALIBRATION_LABEL, 300.0), ("w/a", 3000.0)]);
        let cmp = compare(&base, &cur).expect("comparable");
        assert!((cmp.findings[0].ratio - 1.0).abs() < 1e-12);
        assert!(cmp.passed());
    }

    #[test]
    fn a_2x_slowdown_fails_and_1_6x_warns() {
        let base = report(&[(CALIBRATION_LABEL, 100.0), ("w/slow", 1000.0), ("w/meh", 1000.0)]);
        let cur = report(&[(CALIBRATION_LABEL, 100.0), ("w/slow", 2000.0), ("w/meh", 1600.0)]);
        let cmp = compare(&base, &cur).expect("comparable");
        assert!(!cmp.passed());
        let flagged = cmp.flagged();
        assert_eq!(flagged.len(), 2);
        assert_eq!(flagged[0].label, "w/slow", "worst first");
        assert_eq!(flagged[0].verdict, Verdict::Fail);
        assert_eq!(flagged[1].verdict, Verdict::Warn);
    }

    #[test]
    fn best_sample_not_median_is_compared() {
        // One contaminated sample (10x) must not fail the gate: the
        // minimum sample is the cost estimate.
        let mut base = BenchReport::new("t");
        base.record_samples(CALIBRATION_LABEL, TIMED_UNIT, &[100.0]);
        base.record_samples("w/a", TIMED_UNIT, &[1000.0, 1010.0, 990.0]);
        let mut cur = BenchReport::new("t");
        cur.record_samples(CALIBRATION_LABEL, TIMED_UNIT, &[100.0]);
        cur.record_samples("w/a", TIMED_UNIT, &[10_000.0, 1005.0, 9900.0]);
        let cmp = compare(&base, &cur).expect("comparable");
        assert_eq!(cmp.findings[0].verdict, Verdict::Pass, "{:?}", cmp.findings[0]);
    }

    #[test]
    fn coverage_drift_is_reported_not_fatal() {
        let base = report(&[(CALIBRATION_LABEL, 100.0), ("w/old", 1000.0)]);
        let cur = report(&[(CALIBRATION_LABEL, 100.0), ("w/new", 1000.0)]);
        let cmp = compare(&base, &cur).expect("comparable");
        assert!(cmp.findings.is_empty());
        assert_eq!(cmp.missing_in_baseline, vec!["w/new".to_string()]);
        assert_eq!(cmp.missing_in_current, vec!["w/old".to_string()]);
        assert!(cmp.passed());
    }

    #[test]
    fn differing_cpu_counts_are_flagged_not_fatal() {
        let base = report(&[(CALIBRATION_LABEL, 100.0), ("w/a", 1000.0)]);
        let mut cur = base.clone();
        cur.env.cpus = base.env.cpus + 7;
        let cmp = compare(&base, &cur).expect("comparable");
        assert_eq!(cmp.cpu_mismatch, Some((base.env.cpus, base.env.cpus + 7)));
        assert!(cmp.passed(), "a cpus mismatch warns, it does not fail");
        let same = compare(&base, &base).expect("comparable");
        assert_eq!(same.cpu_mismatch, None);
    }

    #[test]
    fn non_timed_entries_are_ignored() {
        let mut base = report(&[(CALIBRATION_LABEL, 100.0)]);
        base.record("speedup", "ratio", 2.0);
        let mut cur = report(&[(CALIBRATION_LABEL, 100.0)]);
        cur.record("speedup", "ratio", 0.5);
        let cmp = compare(&base, &cur).expect("comparable");
        assert!(cmp.findings.is_empty(), "ratios are not timed workloads");
        assert!(cmp.missing_in_baseline.is_empty());
    }

    #[test]
    fn missing_calibration_is_a_typed_error() {
        let base = report(&[("w/a", 1000.0)]);
        let cur = report(&[(CALIBRATION_LABEL, 100.0), ("w/a", 1000.0)]);
        assert_eq!(
            compare(&base, &cur),
            Err(RegressError::MissingCalibration { which: "baseline" })
        );
        assert_eq!(
            compare(&cur, &base),
            Err(RegressError::MissingCalibration { which: "current" })
        );
        let mut zero = report(&[("w/a", 1000.0)]);
        zero.record_samples(CALIBRATION_LABEL, TIMED_UNIT, &[0.0]);
        assert_eq!(
            compare(&zero, &cur),
            Err(RegressError::BadCalibration { which: "baseline" })
        );
        let err = RegressError::MissingCalibration { which: "baseline" };
        assert!(err.to_string().contains("calibration"));
    }

    #[test]
    fn empty_samples_entries_are_flagged_low_confidence() {
        // A single-shot wall time (record(), no samples) on either side
        // must be named as low-confidence, not silently compared as if
        // it had a noise floor.
        let mut base = report(&[(CALIBRATION_LABEL, 100.0)]);
        base.record("w/oneshot", TIMED_UNIT, 1000.0);
        let mut cur = report(&[(CALIBRATION_LABEL, 100.0)]);
        cur.record_samples("w/oneshot", TIMED_UNIT, &[1000.0, 1010.0]);
        let cmp = compare(&base, &cur).expect("comparable");
        assert_eq!(cmp.low_confidence, vec!["w/oneshot".to_string()]);
        // The entry is still compared (its headline value is the best
        // available estimate), just not trusted silently.
        assert_eq!(cmp.findings.len(), 1);
        // Empty samples on the current side flag too.
        let cmp = compare(&cur, &base).expect("comparable");
        assert_eq!(cmp.low_confidence, vec!["w/oneshot".to_string()]);
        // Sampled entries on both sides do not.
        let cmp = compare(&cur, &cur).expect("comparable");
        assert!(cmp.low_confidence.is_empty());
    }

    #[test]
    fn vanished_baseline_cost_fails_instead_of_dividing_by_zero() {
        let mut base = report(&[(CALIBRATION_LABEL, 100.0)]);
        base.record_samples("w/a", TIMED_UNIT, &[0.0]);
        let cur = report(&[(CALIBRATION_LABEL, 100.0), ("w/a", 1000.0)]);
        let cmp = compare(&base, &cur).expect("comparable");
        assert_eq!(cmp.findings[0].verdict, Verdict::Fail);
        assert!(cmp.findings[0].ratio.is_infinite());
    }
}
