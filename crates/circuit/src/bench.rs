//! Reader and writer for the ISCAS-85 `.bench` netlist format.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! INPUT(a)
//! OUTPUT(z)
//! z = NAND(a, b)
//! ```
//!
//! Gate definitions may reference signals defined later in the file (the
//! original ISCAS distributions are not topologically sorted), so parsing is
//! two-phase: collect, then emit in dependency order.

use std::collections::HashMap;

use crate::{GateKind, Netlist, NetlistError, NodeId};

/// Parses a `.bench` document into a [`Netlist`].
///
/// # Errors
///
/// [`NetlistError::Parse`] for malformed lines, plus the usual construction
/// errors (duplicate names, unknown signals, bad arity). A combinational
/// cycle in the input is reported as [`NetlistError::Cycle`].
///
/// # Example
///
/// ```
/// use dlp_circuit::bench;
///
/// # fn main() -> Result<(), dlp_circuit::NetlistError> {
/// let n = bench::parse("c17-mini", "
///     INPUT(a)
///     INPUT(b)
///     OUTPUT(z)
///     z = NAND(a, b)
/// ")?;
/// assert_eq!(n.gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(name: &str, text: &str) -> Result<Netlist, NetlistError> {
    struct RawGate {
        name: String,
        kind: GateKind,
        fanin: Vec<String>,
        line: usize,
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<RawGate> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(sig) = parse_directive(line, "INPUT") {
            inputs.push(sig.to_string());
        } else if let Some(sig) = parse_directive(line, "OUTPUT") {
            outputs.push(sig.to_string());
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let lhs = lhs.trim().to_string();
            let rhs = rhs.trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: lineno,
                message: format!("expected `kind(args)` on the right of `=`, got `{rhs}`"),
            })?;
            if !rhs.ends_with(')') {
                return Err(NetlistError::Parse {
                    line: lineno,
                    message: "missing closing parenthesis".into(),
                });
            }
            let kw = rhs[..open].trim();
            let kind = GateKind::from_keyword(kw).ok_or_else(|| NetlistError::Parse {
                line: lineno,
                message: format!("unknown gate kind `{kw}`"),
            })?;
            let args = &rhs[open + 1..rhs.len() - 1];
            let fanin: Vec<String> = args
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            gates.push(RawGate {
                name: lhs,
                kind,
                fanin,
                line: lineno,
            });
        } else {
            return Err(NetlistError::Parse {
                line: lineno,
                message: format!("unrecognised line `{line}`"),
            });
        }
    }

    // Topologically order gate definitions (inputs are level 0).
    let mut netlist = Netlist::new(name);
    let mut resolved: HashMap<String, NodeId> = HashMap::new();
    for i in &inputs {
        let id = netlist.add_input(i.clone())?;
        resolved.insert(i.clone(), id);
    }

    let mut remaining: Vec<RawGate> = gates;
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut next = Vec::with_capacity(remaining.len());
        for g in remaining {
            if g.fanin.iter().all(|f| resolved.contains_key(f)) {
                let fanin_ids = g.fanin.iter().map(|f| resolved[f]).collect();
                let id = netlist.add_gate(g.name.clone(), g.kind, fanin_ids)?;
                resolved.insert(g.name, id);
                progressed = true;
            } else {
                next.push(g);
            }
        }
        if !progressed {
            // Either a reference to a missing signal or a genuine cycle.
            let g = &next[0];
            for f in &g.fanin {
                if !resolved.contains_key(f) && !next.iter().any(|o| o.name == *f) {
                    return Err(NetlistError::Parse {
                        line: g.line,
                        message: format!("gate `{}` references undeclared signal `{f}`", g.name),
                    });
                }
            }
            return Err(NetlistError::Cycle(next[0].name.clone()));
        }
        remaining = next;
    }

    for o in &outputs {
        let id = resolved
            .get(o)
            .copied()
            .ok_or_else(|| NetlistError::UndrivenOutput(o.clone()))?;
        netlist.mark_output(id);
    }
    netlist.freeze();
    netlist.validate()?;
    Ok(netlist)
}

fn parse_directive<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(kw)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Serialises a [`Netlist`] to `.bench` text. The output is topologically
/// sorted and re-parses to an equivalent netlist.
///
/// # Example
///
/// ```
/// use dlp_circuit::{bench, generators};
///
/// let c17 = generators::c17();
/// let text = bench::write(&c17);
/// let back = bench::parse("c17", &text).unwrap();
/// assert_eq!(back.gate_count(), c17.gate_count());
/// ```
pub fn write(netlist: &Netlist) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    for &i in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.node_name(i));
    }
    for &o in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.node_name(o));
    }
    for id in netlist.node_ids() {
        let kind = netlist.kind(id);
        if kind == GateKind::Input {
            continue;
        }
        let fanin: Vec<&str> = netlist
            .fanin(id)
            .iter()
            .map(|&f| netlist.node_name(f))
            .collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            netlist.node_name(id),
            kind.keyword(),
            fanin.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const C17: &str = "
        # c17 ISCAS-85
        INPUT(1)  INPUT-like comment is not allowed; see below
    ";

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse("bad", C17), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn parses_out_of_order_definitions() {
        let n = parse(
            "ooo",
            "INPUT(a)\nOUTPUT(z)\nz = NOT(y)\ny = NAND(a, a2)\nINPUT(a2)\n",
        )
        .unwrap();
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.depth(), 2);
    }

    #[test]
    fn detects_cycles() {
        let err = parse("cyc", "INPUT(a)\nx = NAND(a, y)\ny = NAND(a, x)\n").unwrap_err();
        assert!(matches!(err, NetlistError::Cycle(_)), "{err}");
    }

    #[test]
    fn reports_missing_signal_with_line() {
        let err = parse("miss", "INPUT(a)\nz = NAND(a, ghost)\n").unwrap_err();
        match err {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("ghost"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn reports_undriven_output() {
        let err = parse("u", "INPUT(a)\nOUTPUT(z)\n").unwrap_err();
        assert_eq!(err, NetlistError::UndrivenOutput("z".into()));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let n = parse(
            "c",
            "# header\n\nINPUT(a) # trailing\nOUTPUT(b)\nb = NOT(a)\n",
        )
        .unwrap();
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn round_trip_preserves_structure_and_function() {
        let n = crate::generators::c17();
        let text = write(&n);
        let back = parse("c17", &text).unwrap();
        assert_eq!(back.inputs().len(), n.inputs().len());
        assert_eq!(back.outputs().len(), n.outputs().len());
        assert_eq!(back.gate_count(), n.gate_count());
        // Exhaustive functional equivalence over all 32 input patterns.
        let words: Vec<u64> = (0..5)
            .map(|i| {
                let mut w = 0u64;
                for p in 0..32u64 {
                    if p >> i & 1 == 1 {
                        w |= 1 << p;
                    }
                }
                w
            })
            .collect();
        let mask = (1u64 << 32) - 1;
        let a = n.eval_words(&words);
        let b = back.eval_words(&words);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x & mask, y & mask);
        }
    }

    #[test]
    fn keyword_case_insensitive_and_buff_alias() {
        let n = parse("k", "INPUT(a)\nOUTPUT(z)\nz = buff(a)\n").unwrap();
        assert_eq!(n.kind(n.find("z").unwrap()), GateKind::Buf);
    }
}
