//! Static-CMOS standard-cell templates.
//!
//! A [`CellTemplate`] describes a logic cell as a list of [`Stage`]s, each a
//! fully complementary static-CMOS gate given by its pull-down network
//! (the pull-up network is always the series/parallel dual). Templates are
//! the *single source of truth* shared by:
//!
//! * the switch-level expander ([`crate::switch`]), which turns each stage
//!   into NMOS/PMOS transistors, and
//! * the layout generator (`dlp-layout`), which draws each stage as poly
//!   columns over diffusion strips.
//!
//! Multi-stage templates express cells whose CMOS realisation is not a
//! single complex gate: `BUF` (two inverters), `AND`/`OR` (NAND/NOR plus
//! inverter) and the classic 4-NAND `XOR` structure used by standard-cell
//! libraries.

use crate::{GateKind, NetlistError};

/// A signal visible inside a cell: either one of the cell's input pins or
/// the output of an earlier stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageSignal {
    /// Cell input pin by index.
    Pin(usize),
    /// Output of stage `i` (must be `< `the consuming stage's index).
    Stage(usize),
}

/// A series/parallel pull-down network expression.
///
/// `Series` stacks transistors between the stage output and ground
/// (AND-like); `Parallel` puts them side by side (OR-like). The pull-up
/// network is derived as the structural dual, so every stage is a proper
/// fully-complementary static-CMOS gate and the stage function is the
/// inversion of the PDN condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PdnExpr {
    /// A single NMOS transistor gated by the signal.
    Leaf(StageSignal),
    /// Series composition (all sub-networks must conduct).
    Series(Vec<PdnExpr>),
    /// Parallel composition (any sub-network suffices).
    Parallel(Vec<PdnExpr>),
}

impl PdnExpr {
    /// Number of transistor leaves in the expression.
    pub fn leaf_count(&self) -> usize {
        match self {
            PdnExpr::Leaf(_) => 1,
            PdnExpr::Series(v) | PdnExpr::Parallel(v) => v.iter().map(PdnExpr::leaf_count).sum(),
        }
    }

    /// The structural dual: series ↔ parallel, leaves unchanged. Applying
    /// it twice returns the original expression.
    pub fn dual(&self) -> PdnExpr {
        match self {
            PdnExpr::Leaf(s) => PdnExpr::Leaf(*s),
            PdnExpr::Series(v) => PdnExpr::Parallel(v.iter().map(PdnExpr::dual).collect()),
            PdnExpr::Parallel(v) => PdnExpr::Series(v.iter().map(PdnExpr::dual).collect()),
        }
    }

    /// Evaluates whether the network conducts given a predicate for each
    /// leaf signal being at logic 1.
    pub fn conducts(&self, high: &dyn Fn(StageSignal) -> bool) -> bool {
        match self {
            PdnExpr::Leaf(s) => high(*s),
            PdnExpr::Series(v) => v.iter().all(|e| e.conducts(high)),
            PdnExpr::Parallel(v) => v.iter().any(|e| e.conducts(high)),
        }
    }

    /// Leaf signals in left-to-right order (with repetition).
    pub fn leaves(&self) -> Vec<StageSignal> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves(&self, out: &mut Vec<StageSignal>) {
        match self {
            PdnExpr::Leaf(s) => out.push(*s),
            PdnExpr::Series(v) | PdnExpr::Parallel(v) => {
                for e in v {
                    e.collect_leaves(out);
                }
            }
        }
    }
}

/// One fully-complementary CMOS stage of a cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stage {
    /// Pull-down network between the stage output and ground. The pull-up
    /// network is `pdn.dual()` between VDD and the stage output.
    pub pdn: PdnExpr,
}

impl Stage {
    /// Stage output as a boolean function of its leaf signals: the output
    /// is high iff the PDN does *not* conduct.
    pub fn eval(&self, high: &dyn Fn(StageSignal) -> bool) -> bool {
        !self.pdn.conducts(high)
    }

    /// Total transistors in the stage (NMOS + PMOS).
    pub fn transistor_count(&self) -> usize {
        2 * self.pdn.leaf_count()
    }
}

/// A standard cell: named, with `pin_count` input pins and one output,
/// realised as a cascade of [`Stage`]s. The last stage drives the cell
/// output.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellTemplate {
    name: String,
    kind: GateKind,
    pin_count: usize,
    stages: Vec<Stage>,
}

impl CellTemplate {
    /// The library name of the cell, e.g. `NAND3` or `XOR2`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate kind this cell implements.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Number of input pins.
    pub fn pin_count(&self) -> usize {
        self.pin_count
    }

    /// The CMOS stages, in evaluation order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Total transistors in the cell.
    pub fn transistor_count(&self) -> usize {
        self.stages.iter().map(Stage::transistor_count).sum()
    }

    /// Evaluates the cell's logic function on concrete pin values, by
    /// cascading stages. Used for self-checks against [`GateKind`]
    /// word evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `pins.len() != self.pin_count()`.
    pub fn eval(&self, pins: &[bool]) -> bool {
        assert_eq!(pins.len(), self.pin_count, "one value per pin");
        let mut stage_out = Vec::with_capacity(self.stages.len());
        let mut last = false;
        for stage in &self.stages {
            let v = stage.eval(&|s| match s {
                StageSignal::Pin(i) => pins[i],
                StageSignal::Stage(j) => stage_out[j],
            });
            stage_out.push(v);
            last = v;
        }
        last
    }
}

fn pin(i: usize) -> PdnExpr {
    PdnExpr::Leaf(StageSignal::Pin(i))
}

fn stage_sig(i: usize) -> PdnExpr {
    PdnExpr::Leaf(StageSignal::Stage(i))
}

/// Builds the library template for a gate of the given kind and arity.
///
/// Supported cells: `INV`, `BUF`, `NAND2..8`, `NOR2..8`, `AND2..8`,
/// `OR2..8`, and XOR/XNOR of any arity ≥ 2 (decomposed into a cascade of
/// the classic 4-NAND XOR block).
///
/// # Errors
///
/// [`NetlistError::BadArity`] if the kind/arity combination is not
/// realisable as a library cell ([`GateKind::Input`] included).
pub fn template_for(kind: GateKind, arity: usize) -> Result<CellTemplate, NetlistError> {
    let bad = |expected: &'static str| NetlistError::BadArity {
        gate: format!("{kind}{arity}"),
        got: arity,
        expected,
    };
    let simple = |name: String, stages: Vec<Stage>| CellTemplate {
        name,
        kind,
        pin_count: arity,
        stages,
    };
    match kind {
        GateKind::Input => Err(bad("inputs are not cells")),
        GateKind::Not => {
            if arity != 1 {
                return Err(bad("exactly 1"));
            }
            Ok(simple("INV".into(), vec![Stage { pdn: pin(0) }]))
        }
        GateKind::Buf => {
            if arity != 1 {
                return Err(bad("exactly 1"));
            }
            Ok(simple(
                "BUF".into(),
                vec![Stage { pdn: pin(0) }, Stage { pdn: stage_sig(0) }],
            ))
        }
        GateKind::Nand | GateKind::And | GateKind::Nor | GateKind::Or => {
            if !(2..=8).contains(&arity) {
                return Err(bad("between 2 and 8"));
            }
            let leaves: Vec<PdnExpr> = (0..arity).map(pin).collect();
            let first = match kind {
                GateKind::Nand | GateKind::And => PdnExpr::Series(leaves),
                _ => PdnExpr::Parallel(leaves),
            };
            let mut stages = vec![Stage { pdn: first }];
            let inverted = matches!(kind, GateKind::And | GateKind::Or);
            if inverted {
                stages.push(Stage { pdn: stage_sig(0) });
            }
            let base = match kind {
                GateKind::Nand => "NAND",
                GateKind::And => "AND",
                GateKind::Nor => "NOR",
                GateKind::Or => "OR",
                _ => unreachable!(),
            };
            Ok(simple(format!("{base}{arity}"), stages))
        }
        GateKind::Xor | GateKind::Xnor => {
            if arity < 2 {
                return Err(bad("at least 2"));
            }
            // Cascade of 4-NAND XOR blocks:
            //   x = a xor b:  s0 = nand(a,b); s1 = nand(a,s0);
            //                 s2 = nand(b,s0); s3 = nand(s1,s2) = x
            let mut stages: Vec<Stage> = Vec::new();
            let mut acc = StageSignal::Pin(0);
            for p in 1..arity {
                let a = acc;
                let b = StageSignal::Pin(p);
                let s0 = stages.len();
                stages.push(Stage {
                    pdn: PdnExpr::Series(vec![PdnExpr::Leaf(a), PdnExpr::Leaf(b)]),
                });
                stages.push(Stage {
                    pdn: PdnExpr::Series(vec![PdnExpr::Leaf(a), stage_sig(s0)]),
                });
                stages.push(Stage {
                    pdn: PdnExpr::Series(vec![PdnExpr::Leaf(b), stage_sig(s0)]),
                });
                stages.push(Stage {
                    pdn: PdnExpr::Series(vec![stage_sig(s0 + 1), stage_sig(s0 + 2)]),
                });
                acc = StageSignal::Stage(s0 + 3);
            }
            if kind == GateKind::Xnor {
                let StageSignal::Stage(last) = acc else {
                    unreachable!()
                };
                stages.push(Stage {
                    pdn: stage_sig(last),
                });
            }
            let base = if kind == GateKind::Xor { "XOR" } else { "XNOR" };
            Ok(simple(format!("{base}{arity}"), stages))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_check(kind: GateKind, arity: usize) {
        let cell = template_for(kind, arity).unwrap();
        assert_eq!(cell.pin_count(), arity);
        for pattern in 0..1u32 << arity {
            let pins: Vec<bool> = (0..arity).map(|i| pattern >> i & 1 == 1).collect();
            let words: Vec<u64> = pins.iter().map(|&b| if b { 1 } else { 0 }).collect();
            let expect = kind.eval_words(&words) & 1 == 1;
            assert_eq!(
                cell.eval(&pins),
                expect,
                "{kind}{arity} pattern {pattern:b}"
            );
        }
    }

    #[test]
    fn every_supported_cell_matches_its_gate_function() {
        exhaustive_check(GateKind::Not, 1);
        exhaustive_check(GateKind::Buf, 1);
        for arity in 2..=8 {
            exhaustive_check(GateKind::Nand, arity);
            exhaustive_check(GateKind::Nor, arity);
            exhaustive_check(GateKind::And, arity);
            exhaustive_check(GateKind::Or, arity);
        }
        for arity in 2..=5 {
            exhaustive_check(GateKind::Xor, arity);
            exhaustive_check(GateKind::Xnor, arity);
        }
    }

    #[test]
    fn transistor_counts() {
        assert_eq!(
            template_for(GateKind::Not, 1).unwrap().transistor_count(),
            2
        );
        assert_eq!(
            template_for(GateKind::Nand, 2).unwrap().transistor_count(),
            4
        );
        assert_eq!(
            template_for(GateKind::Nand, 3).unwrap().transistor_count(),
            6
        );
        assert_eq!(
            template_for(GateKind::And, 2).unwrap().transistor_count(),
            6
        );
        // XOR2 = 4 NAND2-ish stages = 4*4 transistors.
        assert_eq!(
            template_for(GateKind::Xor, 2).unwrap().transistor_count(),
            16
        );
        assert_eq!(
            template_for(GateKind::Xnor, 2).unwrap().transistor_count(),
            18
        );
    }

    #[test]
    fn dual_is_involutive() {
        let e = PdnExpr::Series(vec![
            pin(0),
            PdnExpr::Parallel(vec![pin(1), PdnExpr::Series(vec![pin(2), pin(3)])]),
        ]);
        assert_eq!(e.dual().dual(), e);
        assert_eq!(e.leaf_count(), e.dual().leaf_count());
    }

    #[test]
    fn dual_complements_conduction_for_cmos() {
        // For any input assignment, exactly one of PDN / PUN conducts
        // (PUN conducts when the dual does on *inverted* inputs).
        let e = PdnExpr::Parallel(vec![PdnExpr::Series(vec![pin(0), pin(1)]), pin(2)]);
        let dual = e.dual();
        for pattern in 0..8u32 {
            let high = |s: StageSignal| match s {
                StageSignal::Pin(i) => pattern >> i & 1 == 1,
                _ => unreachable!(),
            };
            let low = |s: StageSignal| !high(s);
            assert_ne!(e.conducts(&high), dual.conducts(&low), "pattern {pattern}");
        }
    }

    #[test]
    fn unsupported_arities_rejected() {
        assert!(template_for(GateKind::Nand, 1).is_err());
        assert!(template_for(GateKind::Nand, 9).is_err());
        assert!(template_for(GateKind::Not, 2).is_err());
        assert!(template_for(GateKind::Input, 0).is_err());
        assert!(template_for(GateKind::Xor, 1).is_err());
    }

    #[test]
    fn cell_names_follow_convention() {
        assert_eq!(template_for(GateKind::Nand, 3).unwrap().name(), "NAND3");
        assert_eq!(template_for(GateKind::Not, 1).unwrap().name(), "INV");
        assert_eq!(template_for(GateKind::Xnor, 2).unwrap().name(), "XNOR2");
    }

    #[test]
    fn leaves_in_order() {
        let e = PdnExpr::Series(vec![pin(1), PdnExpr::Parallel(vec![pin(0), pin(2)])]);
        assert_eq!(
            e.leaves(),
            vec![
                StageSignal::Pin(1),
                StageSignal::Pin(0),
                StageSignal::Pin(2)
            ]
        );
    }
}
