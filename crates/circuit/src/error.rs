use std::error::Error;
use std::fmt;

use dlp_core::{PipelineError, Stage};

/// Errors raised while building or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A node name was declared twice.
    DuplicateName(String),
    /// A gate referenced a signal that was never declared.
    UnknownSignal(String),
    /// A gate was built with an arity its kind does not support.
    BadArity {
        /// The offending gate's name.
        gate: String,
        /// Number of fanins supplied.
        got: usize,
        /// Human-readable description of what the kind accepts.
        expected: &'static str,
    },
    /// The netlist contains a combinational cycle through the named node.
    Cycle(String),
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An output was declared for a signal that is never defined.
    UndrivenOutput(String),
    /// A generator was asked for a degenerate circuit shape (zero inputs,
    /// zero gates, more outputs than gates, ...).
    BadShape(&'static str),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate signal name `{n}`"),
            NetlistError::UnknownSignal(n) => write!(f, "reference to undeclared signal `{n}`"),
            NetlistError::BadArity {
                gate,
                got,
                expected,
            } => {
                write!(f, "gate `{gate}` has {got} fanins, expected {expected}")
            }
            NetlistError::Cycle(n) => write!(f, "combinational cycle through `{n}`"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::UndrivenOutput(n) => {
                write!(f, "output `{n}` is never driven by an input or gate")
            }
            NetlistError::BadShape(what) => write!(f, "degenerate circuit shape: {what}"),
        }
    }
}

impl Error for NetlistError {}

impl From<NetlistError> for PipelineError {
    fn from(e: NetlistError) -> Self {
        PipelineError::with_source(Stage::Netlist, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = NetlistError::BadArity {
            gate: "g1".into(),
            got: 1,
            expected: "at least 2",
        };
        assert_eq!(e.to_string(), "gate `g1` has 1 fanins, expected at least 2");
        assert!(NetlistError::Cycle("x".into()).to_string().contains("`x`"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<NetlistError>();
    }
}
