//! Arithmetic and datapath benchmark generators.

use crate::must::MustExt;
use crate::{GateKind, Netlist, NodeId};

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..` and `cout`. Built from XOR/AND/OR full adders (2n XORs), so it is
/// a good XOR-heavy extraction workload.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// let add = dlp_circuit::generators::ripple_adder(4);
/// assert_eq!(add.inputs().len(), 9);
/// assert_eq!(add.outputs().len(), 5);
/// ```
pub fn ripple_adder(n: usize) -> Netlist {
    assert!(n > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("rca{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| nl.add_input(format!("a{i}")).must())
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| nl.add_input(format!("b{i}")).must())
        .collect();
    let mut carry = nl.add_input("cin").must();
    for i in 0..n {
        let p = nl
            .add_gate(format!("p{i}"), GateKind::Xor, vec![a[i], b[i]])
            .must();
        let s = nl
            .add_gate(format!("s{i}"), GateKind::Xor, vec![p, carry])
            .must();
        let g = nl
            .add_gate(format!("g{i}"), GateKind::And, vec![a[i], b[i]])
            .must();
        let t = nl
            .add_gate(format!("t{i}"), GateKind::And, vec![p, carry])
            .must();
        let c = nl
            .add_gate(format!("c{i}"), GateKind::Or, vec![g, t])
            .must();
        nl.mark_output(s);
        carry = c;
    }
    nl.mark_output(carry);
    nl.freeze();
    nl
}

/// An `n`-bit magnitude comparator: outputs `eq` and `gt` for inputs
/// `a0..` (LSB first) vs `b0..`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn comparator(n: usize) -> Netlist {
    assert!(n > 0, "comparator width must be positive");
    let mut nl = Netlist::new(format!("cmp{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| nl.add_input(format!("a{i}")).must())
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| nl.add_input(format!("b{i}")).must())
        .collect();
    // Bitwise equality, then a prefix-AND walked from the MSB down:
    // entering iteration i, `prefix` holds "bits i+1..n-1 all equal".
    let eqs: Vec<NodeId> = (0..n)
        .map(|i| {
            nl.add_gate(format!("eq{i}"), GateKind::Xnor, vec![a[i], b[i]])
                .must()
        })
        .collect();
    let mut prefix: Option<NodeId> = None;
    let mut gt: Option<NodeId> = None;
    for i in (0..n).rev() {
        let nb = nl
            .add_gate(format!("nb{i}"), GateKind::Not, vec![b[i]])
            .must();
        let here = match prefix {
            None => nl
                .add_gate(format!("gt{i}"), GateKind::And, vec![a[i], nb])
                .must(),
            Some(p) => {
                // a[i] > b[i] and all higher bits equal.
                nl.add_gate(format!("gt{i}"), GateKind::And, vec![a[i], nb, p])
                    .must()
            }
        };
        gt = Some(match gt {
            None => here,
            Some(acc) => nl
                .add_gate(format!("go{i}"), GateKind::Or, vec![acc, here])
                .must(),
        });
        prefix = Some(match prefix {
            None => eqs[i],
            Some(p) => nl
                .add_gate(format!("ea{i}"), GateKind::And, vec![p, eqs[i]])
                .must(),
        });
    }
    nl.mark_output(prefix.must());
    nl.mark_output(gt.must());
    nl.freeze();
    nl
}

/// A 1-bit ALU slice with two select lines: computes AND, OR, XOR or full
/// add (with `cin`/`cout`) of `a` and `b`. A classic textbook cell that
/// exercises every gate kind.
pub fn alu_slice() -> Netlist {
    let mut nl = Netlist::new("alu_slice");
    let a = nl.add_input("a").must();
    let b = nl.add_input("b").must();
    let cin = nl.add_input("cin").must();
    let s0 = nl.add_input("s0").must();
    let s1 = nl.add_input("s1").must();

    let and_ab = nl.add_gate("and_ab", GateKind::And, vec![a, b]).must();
    let or_ab = nl.add_gate("or_ab", GateKind::Or, vec![a, b]).must();
    let xor_ab = nl.add_gate("xor_ab", GateKind::Xor, vec![a, b]).must();
    let sum = nl
        .add_gate("sum", GateKind::Xor, vec![xor_ab, cin])
        .must();
    let t = nl.add_gate("t", GateKind::And, vec![xor_ab, cin]).must();
    let cout = nl.add_gate("cout", GateKind::Or, vec![and_ab, t]).must();

    // 4:1 mux on (s1, s0): 00=and, 01=or, 10=xor, 11=sum.
    let ns0 = nl.add_gate("ns0", GateKind::Not, vec![s0]).must();
    let ns1 = nl.add_gate("ns1", GateKind::Not, vec![s1]).must();
    let m0 = nl
        .add_gate("m0", GateKind::And, vec![and_ab, ns1, ns0])
        .must();
    let m1 = nl
        .add_gate("m1", GateKind::And, vec![or_ab, ns1, s0])
        .must();
    let m2 = nl
        .add_gate("m2", GateKind::And, vec![xor_ab, s1, ns0])
        .must();
    let m3 = nl.add_gate("m3", GateKind::And, vec![sum, s1, s0]).must();
    let y = nl
        .add_gate("y", GateKind::Or, vec![m0, m1, m2, m3])
        .must();

    nl.mark_output(y);
    nl.mark_output(cout);
    nl.freeze();
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_bits(nl: &Netlist, bits: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = bits.iter().map(|&b| if b { 1 } else { 0 }).collect();
        nl.eval_words(&words).iter().map(|&w| w & 1 == 1).collect()
    }

    #[test]
    fn adder_adds_exhaustively_4bit() {
        let nl = ripple_adder(4);
        for a in 0u32..16 {
            for b in 0u32..16 {
                for cin in 0u32..2 {
                    let mut bits = Vec::new();
                    for i in 0..4 {
                        bits.push(a >> i & 1 == 1);
                    }
                    for i in 0..4 {
                        bits.push(b >> i & 1 == 1);
                    }
                    bits.push(cin == 1);
                    let out = eval_bits(&nl, &bits);
                    let expect = a + b + cin;
                    for (i, &bit) in out.iter().enumerate().take(4) {
                        assert_eq!(bit, expect >> i & 1 == 1, "a={a} b={b} cin={cin} s{i}");
                    }
                    assert_eq!(out[4], expect >> 4 & 1 == 1, "a={a} b={b} cin={cin} cout");
                }
            }
        }
    }

    #[test]
    fn comparator_matches_integers() {
        let nl = comparator(3);
        for a in 0u32..8 {
            for b in 0u32..8 {
                let mut bits = Vec::new();
                for i in 0..3 {
                    bits.push(a >> i & 1 == 1);
                }
                for i in 0..3 {
                    bits.push(b >> i & 1 == 1);
                }
                let out = eval_bits(&nl, &bits);
                assert_eq!(out[0], a == b, "eq for {a} vs {b}");
                assert_eq!(out[1], a > b, "gt for {a} vs {b}");
            }
        }
    }

    #[test]
    fn alu_slice_all_ops() {
        let nl = alu_slice();
        for p in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| p >> i & 1 == 1).collect();
            let (a, b, cin, s0, s1) = (bits[0], bits[1], bits[2], bits[3], bits[4]);
            let out = eval_bits(&nl, &bits);
            let expect_y = match (s1, s0) {
                (false, false) => a & b,
                (false, true) => a | b,
                (true, false) => a ^ b,
                (true, true) => a ^ b ^ cin,
            };
            let expect_cout = (a & b) | ((a ^ b) & cin);
            assert_eq!(out[0], expect_y, "y at pattern {p}");
            assert_eq!(out[1], expect_cout, "cout at pattern {p}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_adder_panics() {
        let _ = ripple_adder(0);
    }
}
