//! Shared gate-emission helpers for the deterministic benchmark
//! generators: balanced trees, adders, the array-multiplier core, and a
//! parameterized ALU slice. Everything emits 2-input gates plus
//! inverters — the composition every cell in the layout library maps.

use crate::must::MustExt;
use crate::{GateKind, Netlist, NodeId};

/// Emits uniquely named gates into a netlist under a fixed name prefix.
pub(super) struct Emit<'n> {
    nl: &'n mut Netlist,
    prefix: String,
    fresh: usize,
}

impl<'n> Emit<'n> {
    pub(super) fn new(nl: &'n mut Netlist, prefix: impl Into<String>) -> Self {
        Emit {
            nl,
            prefix: prefix.into(),
            fresh: 0,
        }
    }

    /// Switches the name prefix (for multi-block constructors); the gate
    /// counter keeps running so names stay unique per prefix choice.
    pub(super) fn set_prefix(&mut self, prefix: impl Into<String>) {
        self.prefix = prefix.into();
        self.fresh = 0;
    }

    pub(super) fn gate(&mut self, kind: GateKind, fanin: Vec<NodeId>) -> NodeId {
        self.fresh += 1;
        let name = format!("{}{}", self.prefix, self.fresh);
        self.nl.add_gate(name, kind, fanin).must()
    }

    /// Balanced tree of 2-input `kind` gates (kind must be associative).
    pub(super) fn tree(&mut self, kind: GateKind, xs: &[NodeId]) -> NodeId {
        match xs.len() {
            0 => panic!("tree over empty operand list"),
            1 => xs[0],
            _ => {
                let mid = xs.len() / 2;
                let l = self.tree(kind, &xs[..mid]);
                let r = self.tree(kind, &xs[mid..]);
                self.gate(kind, vec![l, r])
            }
        }
    }

    /// A 1-bit adder cell degrading gracefully to half adders (or a
    /// wire) when an addend is absent: returns `(sum, carry)`.
    pub(super) fn add3(
        &mut self,
        x: NodeId,
        y: Option<NodeId>,
        cin: Option<NodeId>,
    ) -> (NodeId, Option<NodeId>) {
        match (y, cin) {
            (None, None) => (x, None),
            (Some(y), None) | (None, Some(y)) => {
                let s = self.gate(GateKind::Xor, vec![x, y]);
                let c = self.gate(GateKind::And, vec![x, y]);
                (s, Some(c))
            }
            (Some(y), Some(c)) => {
                let p = self.gate(GateKind::Xor, vec![x, y]);
                let s = self.gate(GateKind::Xor, vec![p, c]);
                let g = self.gate(GateKind::And, vec![x, y]);
                let t = self.gate(GateKind::And, vec![p, c]);
                let cout = self.gate(GateKind::Or, vec![g, t]);
                (s, Some(cout))
            }
        }
    }

    /// Ripple-carry sum of two equal-width buses; returns the sum bits
    /// (LSB first) and the carry out.
    pub(super) fn ripple(
        &mut self,
        a: &[NodeId],
        b: &[NodeId],
        mut carry: Option<NodeId>,
    ) -> (Vec<NodeId>, NodeId) {
        assert_eq!(a.len(), b.len(), "ripple operands must match");
        assert!(!a.is_empty(), "ripple over empty operands");
        let mut sums = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let (s, c) = self.add3(x, Some(y), carry);
            sums.push(s);
            carry = c;
        }
        (sums, carry.must())
    }

    /// The `m x m` array-multiplier core: partial-product AND plane plus
    /// a row-by-row carry chain. Returns the `2m` product bits, LSB
    /// first. This one routine defines the tile structure shared by
    /// [`array_multiplier`](super::array_multiplier) and
    /// [`tiled_multiplier`](super::tiled_multiplier), so a laid-out
    /// template tile is structurally identical to every instance.
    pub(super) fn multiplier(&mut self, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
        let m = a.len();
        assert_eq!(b.len(), m, "multiplier operands must match");
        assert!(m >= 2, "multiplier width must be at least 2");
        let product = |e: &mut Emit<'_>, i: usize, j: usize| -> NodeId {
            e.gate(GateKind::And, vec![a[i], b[j]])
        };
        let mut acc: Vec<NodeId> = (0..m).map(|j| product(self, 0, j)).collect();
        let mut outs = vec![acc[0]];
        let mut top: Option<NodeId> = None;
        for i in 1..m {
            let mut cin: Option<NodeId> = None;
            let mut next = Vec::with_capacity(m);
            for j in 0..m {
                let x = product(self, i, j);
                let y = if j + 1 < m { Some(acc[j + 1]) } else { top };
                let (s, c) = self.add3(x, y, cin);
                next.push(s);
                cin = c;
            }
            top = cin;
            outs.push(next[0]);
            acc = next;
        }
        outs.extend_from_slice(&acc[1..]);
        outs.push(top.must());
        outs
    }

    /// An 8-function ALU over equal-width buses `a`, `b` with a 3-bit
    /// opcode: add, and, or, xor, nand, nor, xnor, and borrow-style
    /// subtract (`a + !b`). Returns the result bus plus carry, compare,
    /// and parity flags.
    pub(super) fn alu(
        &mut self,
        a: &[NodeId],
        b: &[NodeId],
        op: &[NodeId; 3],
    ) -> AluOut {
        let w = a.len();
        assert_eq!(b.len(), w, "alu operands must match");
        assert!(w >= 2, "alu width must be at least 2");
        // One-hot opcode decode, shared by every bit slice.
        let nop: Vec<NodeId> = op
            .iter()
            .map(|&o| self.gate(GateKind::Not, vec![o]))
            .collect();
        let hot: Vec<NodeId> = (0..8)
            .map(|k| {
                let lit = |bit: usize| {
                    if k >> bit & 1 == 1 {
                        op[bit]
                    } else {
                        nop[bit]
                    }
                };
                let (l0, l1, l2) = (lit(0), lit(1), lit(2));
                let t = self.gate(GateKind::And, vec![l0, l1]);
                self.gate(GateKind::And, vec![t, l2])
            })
            .collect();
        let (add_s, add_c) = self.ripple(a, b, None);
        let nb: Vec<NodeId> = b
            .iter()
            .map(|&y| self.gate(GateKind::Not, vec![y]))
            .collect();
        let (sub_s, sub_c) = self.ripple(a, &nb, None);
        let mut bits = Vec::with_capacity(w);
        for j in 0..w {
            let pair = vec![a[j], b[j]];
            let funcs = [
                add_s[j],
                self.gate(GateKind::And, pair.clone()),
                self.gate(GateKind::Or, pair.clone()),
                self.gate(GateKind::Xor, pair.clone()),
                self.gate(GateKind::Nand, pair.clone()),
                self.gate(GateKind::Nor, pair.clone()),
                self.gate(GateKind::Xnor, pair),
                sub_s[j],
            ];
            let terms: Vec<NodeId> = funcs
                .iter()
                .zip(&hot)
                .map(|(&f, &h)| self.gate(GateKind::And, vec![f, h]))
                .collect();
            bits.push(self.tree(GateKind::Or, &terms));
        }
        let ca = self.gate(GateKind::And, vec![add_c, hot[0]]);
        let cs = self.gate(GateKind::And, vec![sub_c, hot[7]]);
        let cout = self.gate(GateKind::Or, vec![ca, cs]);
        let (eq, gt) = self.compare(a, b);
        let parity = self.tree(GateKind::Xor, &bits);
        AluOut {
            bits,
            cout,
            eq,
            gt,
            parity,
        }
    }

    /// Equality and greater-than of two equal-width buses (MSB-down
    /// prefix walk).
    pub(super) fn compare(&mut self, a: &[NodeId], b: &[NodeId]) -> (NodeId, NodeId) {
        assert_eq!(a.len(), b.len(), "compare operands must match");
        let mut eq_prefix: Option<NodeId> = None;
        let mut gt_acc: Option<NodeId> = None;
        for j in (0..a.len()).rev() {
            let nb = self.gate(GateKind::Not, vec![b[j]]);
            let here = self.gate(GateKind::And, vec![a[j], nb]);
            let term = match eq_prefix {
                None => here,
                Some(p) => self.gate(GateKind::And, vec![here, p]),
            };
            gt_acc = Some(match gt_acc {
                None => term,
                Some(g) => self.gate(GateKind::Or, vec![g, term]),
            });
            let x = self.gate(GateKind::Xnor, vec![a[j], b[j]]);
            eq_prefix = Some(match eq_prefix {
                None => x,
                Some(p) => self.gate(GateKind::And, vec![p, x]),
            });
        }
        (eq_prefix.must(), gt_acc.must())
    }

    /// A 9-channel enabled priority encoder (channel 8 wins): returns
    /// the 4 index bits, mirroring the c432-class encoder structure.
    pub(super) fn priority9(&mut self, req: &[NodeId], en: NodeId) -> [NodeId; 4] {
        assert_eq!(req.len(), 9, "priority encoder is 9-channel");
        let sel: Vec<NodeId> = req
            .iter()
            .map(|&r| self.gate(GateKind::And, vec![r, en]))
            .collect();
        let mut not_above: Vec<(usize, Option<NodeId>)> = Vec::new();
        let mut acc: Option<NodeId> = None;
        for i in (0..9).rev() {
            let na = acc.map(|x| self.gate(GateKind::Not, vec![x]));
            not_above.push((i, na));
            acc = Some(match acc {
                None => sel[i],
                Some(x) => self.gate(GateKind::Or, vec![x, sel[i]]),
            });
        }
        let mut hi = [NodeId::from_index(0); 9];
        for (i, na) in not_above {
            hi[i] = match na {
                None => sel[i],
                Some(mask) => self.gate(GateKind::And, vec![sel[i], mask]),
            };
        }
        let z0 = self.tree(GateKind::Or, &[hi[1], hi[3], hi[5], hi[7]]);
        let z1 = self.tree(GateKind::Or, &[hi[2], hi[3], hi[6], hi[7]]);
        let z2 = self.tree(GateKind::Or, &[hi[4], hi[5], hi[6], hi[7]]);
        [z0, z1, z2, hi[8]]
    }
}

/// Result buses of [`Emit::alu`].
pub(super) struct AluOut {
    pub bits: Vec<NodeId>,
    pub cout: NodeId,
    pub eq: NodeId,
    pub gt: NodeId,
    pub parity: NodeId,
}
