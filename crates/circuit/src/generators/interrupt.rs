//! A c432-class 27-channel interrupt controller.
//!
//! ISCAS-85 `c432` is a 27-channel interrupt controller: three 9-bit request
//! buses `A`, `B`, `C` (bus `A` has the highest priority), a 9-bit channel
//! enable bus `E`, three bus-grant outputs `PA`, `PB`, `PC` and a 4-bit
//! encoding of the highest-priority active channel. The original netlist is
//! not redistributable offline, so this module *re-synthesises the function*
//! into NAND/NOR/NOT/XOR gates, targeting the original's vital statistics:
//! 36 primary inputs, 7 primary outputs, and a gate count in the 160–200
//! range with XOR content and reconvergent fanout (the properties the
//! defect-level experiment actually exercises).

use crate::must::MustExt;
use crate::{GateKind, Netlist, NodeId};

/// Builds the c432-class interrupt controller.
///
/// Function, for request buses `a[0..9]`, `b[0..9]`, `c[0..9]` and enables
/// `e[0..9]` (enable `e[i]` gates channel `i` on every bus):
///
/// * `PA = OR_i(a[i] & e[i])` — bus A has an enabled request,
/// * `PB = OR_i(b[i] & e[i]) & !PA`,
/// * `PC = OR_i(c[i] & e[i]) & !PA & !PB`,
/// * `z[0..4]` — binary index (one-hot priority, channel 8 highest) of the
///   highest active channel on the granted bus.
///
/// # Example
///
/// ```
/// let ic = dlp_circuit::generators::c432_class();
/// assert_eq!(ic.inputs().len(), 36);
/// assert_eq!(ic.outputs().len(), 7);
/// assert!(ic.gate_count() >= 150);
/// ```
pub fn c432_class() -> Netlist {
    let mut n = Netlist::new("c432_class");
    let a: Vec<NodeId> = (0..9)
        .map(|i| n.add_input(format!("a{i}")).must())
        .collect();
    let b: Vec<NodeId> = (0..9)
        .map(|i| n.add_input(format!("b{i}")).must())
        .collect();
    let c: Vec<NodeId> = (0..9)
        .map(|i| n.add_input(format!("c{i}")).must())
        .collect();
    let e: Vec<NodeId> = (0..9)
        .map(|i| n.add_input(format!("e{i}")).must())
        .collect();

    // All logic is emitted as 2-input gates (plus NOT/BUF), matching the
    // original c432's composition; wide functions become balanced trees.
    let mut fresh = 0usize;
    let mut gate = |n: &mut Netlist, kind: GateKind, fanin: Vec<NodeId>| -> NodeId {
        fresh += 1;
        n.add_gate(format!("g{fresh}"), kind, fanin)
            .must()
    };
    /// Balanced tree of 2-input `kind` gates (kind must be associative).
    fn tree(
        n: &mut Netlist,
        g: &mut dyn FnMut(&mut Netlist, GateKind, Vec<NodeId>) -> NodeId,
        kind: GateKind,
        xs: &[NodeId],
    ) -> NodeId {
        match xs.len() {
            0 => panic!("tree over empty operand list"),
            1 => xs[0],
            _ => {
                let mid = xs.len() / 2;
                let l = tree(n, g, kind, &xs[..mid]);
                let r = tree(n, g, kind, &xs[mid..]);
                g(n, kind, vec![l, r])
            }
        }
    }

    let mut req = Vec::new(); // bus-active (PA-raw, PB-raw, PC-raw)
    for bus in [&a, &b, &c] {
        // Active-low per-channel terms: lows[i] = !(bus[i] & e[i]).
        let lows: Vec<NodeId> = (0..9)
            .map(|i| gate(&mut n, GateKind::Nand, vec![bus[i], e[i]]))
            .collect();
        // 9-input NAND of the active-low terms = OR of the enabled requests.
        let left = tree(&mut n, &mut gate, GateKind::And, &lows[0..5]);
        let right = tree(&mut n, &mut gate, GateKind::And, &lows[5..9]);
        let active = gate(&mut n, GateKind::Nand, vec![left, right]);
        req.push(active);
    }

    // Priority grants.
    let pa = req[0];
    let na = gate(&mut n, GateKind::Not, vec![pa]);
    let pb = gate(&mut n, GateKind::And, vec![req[1], na]);
    let nb = gate(&mut n, GateKind::Not, vec![pb]);
    let pc0 = gate(&mut n, GateKind::And, vec![req[2], na]);
    let pc1 = gate(&mut n, GateKind::And, vec![pc0, nb]);
    let pc = gate(&mut n, GateKind::Buf, vec![pc1]);

    // Selected-channel lines: s[i] active (high) iff channel i requests on
    // the granted bus. Build with AOI structure:
    //   s[i] = (PA & a[i] | PB & b[i] | PC & c[i]) & e[i]
    // The XOR content of the original c432 lives in its priority/decode
    // modules; we use XORs in the grant-consistency checks below.
    let mut sel = Vec::new();
    for i in 0..9 {
        let ta = gate(&mut n, GateKind::And, vec![pa, a[i]]);
        let tb = gate(&mut n, GateKind::And, vec![pb, b[i]]);
        let tc = gate(&mut n, GateKind::And, vec![pc, c[i]]);
        let any0 = gate(&mut n, GateKind::Or, vec![ta, tb]);
        let any = gate(&mut n, GateKind::Or, vec![any0, tc]);
        let s = gate(&mut n, GateKind::And, vec![any, e[i]]);
        sel.push(s);
    }

    // Priority encoder over sel[8..0] (channel 8 wins). hi[i] = sel[i] and
    // no higher channel set.
    let mut not_above = Vec::new(); // not_above[i] = none of sel[i+1..9]
    let mut acc: Option<NodeId> = None;
    for i in (0..9).rev() {
        let na_i = acc.map(|x| gate(&mut n, GateKind::Not, vec![x]));
        not_above.push((i, na_i));
        acc = Some(match acc {
            None => sel[i],
            Some(x) => gate(&mut n, GateKind::Or, vec![x, sel[i]]),
        });
    }
    not_above.reverse();
    let mut hi = [NodeId(0); 9];
    for (i, na_i) in not_above {
        hi[i] = match na_i {
            None => sel[i], // channel 8: nothing above
            Some(mask) => gate(&mut n, GateKind::And, vec![sel[i], mask]),
        };
    }

    // Binary encode hi[0..9] into z[0..4] (one-hot to binary), plus XOR
    // parity chains that cross-couple the encoder (mimicking c432's XOR
    // modules and adding reconvergent fanout).
    let z0 = tree(
        &mut n,
        &mut gate,
        GateKind::Or,
        &[hi[1], hi[3], hi[5], hi[7]],
    );
    let z1 = tree(
        &mut n,
        &mut gate,
        GateKind::Or,
        &[hi[2], hi[3], hi[6], hi[7]],
    );
    let z2 = tree(
        &mut n,
        &mut gate,
        GateKind::Or,
        &[hi[4], hi[5], hi[6], hi[7]],
    );
    let z3 = hi[8];

    // XOR cross-checks: channel parity of the granted bus against the
    // encoded index parity. These XOR chains consume the raw bus lines and
    // the encoder outputs, creating the XOR content of the original design.
    let mut par: Option<NodeId> = None;
    for &s in &sel {
        par = Some(match par {
            None => s,
            Some(p) => gate(&mut n, GateKind::Xor, vec![p, s]),
        });
    }
    let idx_par = gate(&mut n, GateKind::Xor, vec![z0, z1]);
    let idx_par2 = gate(&mut n, GateKind::Xor, vec![idx_par, z2]);
    let idx_par3 = gate(&mut n, GateKind::Xnor, vec![idx_par2, z3]);
    let consistent = gate(&mut n, GateKind::Xnor, vec![par.must(), idx_par3]);

    // Fold the consistency bit into the PA grant with an XNOR. XOR-family
    // gates mask nothing, so the parity chains stay observable; and PA
    // shares no operand with the parity chains' XOR terms, so nothing
    // cancels structurally (folding into z3 would cancel sel[8], which
    // appears in both chains, making its cone untestable).
    let pa_out = gate(&mut n, GateKind::Xnor, vec![pa, consistent]);

    for o in [pa_out, pb, pc, z0, z1, z2, z3] {
        n.mark_output(o);
    }
    n.freeze();
    n.validate().must();
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model of the controller, bit-level.
    fn reference(a: u16, b: u16, c: u16, e: u16) -> [bool; 7] {
        let mask = |bus: u16| bus & e & 0x1FF;
        let (ma, mb, mc) = (mask(a), mask(b), mask(c));
        let pa = ma != 0;
        let pb = mb != 0 && !pa;
        let pc = mc != 0 && !pa && !pb;
        let sel = if pa {
            ma
        } else if pb {
            mb
        } else if pc {
            mc
        } else {
            0
        };
        let hi = (0..9).rev().find(|&i| sel >> i & 1 == 1);
        let idx = hi.unwrap_or(0) as u16;
        let z = if hi.is_some() { idx } else { 0 };
        let (z0, z1, z2, z3) = (
            z & 1 == 1,
            z >> 1 & 1 == 1,
            z >> 2 & 1 == 1,
            z >> 3 & 1 == 1,
        );
        let sel_par = (sel.count_ones() % 2) == 1;
        let idx_par = !(z0 ^ z1 ^ z2 ^ z3); // xnor chain as built
        let consistent = !(sel_par ^ idx_par);
        [!(pa ^ consistent), pb, pc, z0, z1, z2, z3]
    }

    #[test]
    fn vital_statistics_match_c432_class() {
        let n = c432_class();
        assert_eq!(n.inputs().len(), 36);
        assert_eq!(n.outputs().len(), 7);
        assert!(
            (150..=230).contains(&n.gate_count()),
            "gate count {} out of c432 class",
            n.gate_count()
        );
        assert!(n.depth() >= 10, "depth {} too shallow", n.depth());
        let xors = n
            .node_ids()
            .filter(|&id| matches!(n.kind(id), GateKind::Xor | GateKind::Xnor))
            .count();
        assert!(xors >= 10, "expected XOR content, got {xors}");
    }

    #[test]
    fn agrees_with_reference_model() {
        let n = c432_class();
        let mut rng_state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for _ in 0..200 {
            let r = next();
            let (a, b, c, e) = (
                (r & 0x1FF) as u16,
                (r >> 9 & 0x1FF) as u16,
                (r >> 18 & 0x1FF) as u16,
                (r >> 27 & 0x1FF) as u16,
            );
            let mut words = Vec::new();
            for i in 0..9 {
                words.push(if a >> i & 1 == 1 { u64::MAX } else { 0 });
            }
            for i in 0..9 {
                words.push(if b >> i & 1 == 1 { u64::MAX } else { 0 });
            }
            for i in 0..9 {
                words.push(if c >> i & 1 == 1 { u64::MAX } else { 0 });
            }
            for i in 0..9 {
                words.push(if e >> i & 1 == 1 { u64::MAX } else { 0 });
            }
            let out = n.eval_words(&words);
            let expect = reference(a, b, c, e);
            for (k, (&w, &x)) in out.iter().zip(expect.iter()).enumerate() {
                assert_eq!(
                    w & 1 == 1,
                    x,
                    "output {k} for a={a:03x} b={b:03x} c={c:03x} e={e:03x}"
                );
            }
        }
    }

    #[test]
    fn quiet_bus_grants_nothing() {
        let n = c432_class();
        let out = n.eval_words(&vec![0u64; 36]);
        for &w in &out[1..3] {
            assert_eq!(w & 1, 0, "no request, no grant");
        }
        // PA output carries the consistency XNOR; with everything quiet
        // par = 0, idx parity chain = 1, consistent = 0, PA_out = 1.
        assert_eq!(out[0] & 1, 1);
    }
}

#[cfg(test)]
mod stability_tests {
    use crate::{bench, generators};

    /// The generator is part of the reproducibility contract: the figure
    /// binaries' numbers assume this exact netlist. Any structural change
    /// must be deliberate (update the fingerprint *and* EXPERIMENTS.md).
    #[test]
    fn c432_class_netlist_is_stable() {
        let text = bench::write(&generators::c432_class());
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        assert_eq!(
            (text.lines().count(), hash),
            (201, 4801230917625243275),
            "c432_class structure changed; refresh fingerprint + EXPERIMENTS.md"
        );
    }
}
