//! ISCAS-85-class benchmark analogues: deterministic re-syntheses
//! matching the vital statistics (size, gate mix, reconvergence) of the
//! classic circuits the defect-level literature sweeps.
//!
//! As with [`c432_class`](super::c432_class), the original netlists are
//! not redistributable offline, so each constructor *re-synthesises a
//! function of the same kind and scale* — an error-correcting XOR
//! network for c1355, ALU/controller mixes for c2670/c5315, a 16x16
//! parallel array multiplier for c6288, and an adder/comparator/parity
//! datapath for c7552 — into 2-input gates plus inverters. Primary-input
//! and output counts land near the originals' functional pins (the
//! originals' published totals include scan); gate counts land in the
//! originals' range, asserted by the vital-statistics tests.

use super::blocks::Emit;
use crate::must::MustExt;
use crate::{GateKind, Netlist, NodeId};

/// An `m x m` parallel array multiplier (`2m` product outputs).
///
/// This is the c6288 structure at arbitrary width: an AND
/// partial-product plane feeding a row-by-row carry chain. Fault lists
/// grow as `O(m^2)`, which makes the width the natural scale knob.
///
/// # Panics
///
/// Panics if `m < 2` or `m > 32` (a 64-bit product is plenty for a
/// benchmark, and tests check products against native `u64` math).
pub fn array_multiplier(m: usize) -> Netlist {
    assert!((2..=32).contains(&m), "multiplier width must be in 2..=32");
    let mut nl = Netlist::new(format!("mul{m}x{m}"));
    let a: Vec<NodeId> = (0..m)
        .map(|i| nl.add_input(format!("a{i}")).must())
        .collect();
    let b: Vec<NodeId> = (0..m)
        .map(|i| nl.add_input(format!("b{i}")).must())
        .collect();
    let mut e = Emit::new(&mut nl, "g");
    let product = e.multiplier(&a, &b);
    for p in product {
        nl.mark_output(p);
    }
    nl.freeze();
    nl.validate().must();
    nl
}

/// The c6288-class 16x16 array multiplier: 32 inputs, 32 outputs,
/// ~2.4k gates of pure reconvergent adder array.
pub fn c6288_class() -> Netlist {
    let mut nl = array_multiplier(16);
    nl.set_name("c6288_class");
    nl
}

/// Membership pattern of data bit `i` in the eight c1355-class parity
/// groups. Multiplying by an odd constant keeps the patterns distinct,
/// so the match decode is unambiguous.
fn c1355_pattern(i: usize) -> u8 {
    (i as u8).wrapping_mul(9) ^ 0x5A
}

/// The c1355-class 32-bit single-error-correcting network: 32 data
/// bits, 8 check bits and an enable (41 inputs), 32 corrected outputs,
/// XOR-tree heavy like the original.
///
/// Function: syndrome bit `s[j]` is the XOR of check bit `k[j]` with
/// the parity of the data bits whose [`c1355_pattern`] has bit `j`
/// set. A data bit whose full pattern matches the syndrome is flipped
/// when `en` is high.
pub fn c1355_class() -> Netlist {
    let mut nl = Netlist::new("c1355_class");
    let d: Vec<NodeId> = (0..32)
        .map(|i| nl.add_input(format!("d{i}")).must())
        .collect();
    let k: Vec<NodeId> = (0..8)
        .map(|j| nl.add_input(format!("k{j}")).must())
        .collect();
    let en = nl.add_input("en").must();
    let mut e = Emit::new(&mut nl, "g");

    let mut s = Vec::with_capacity(8);
    let mut ns = Vec::with_capacity(8);
    for (j, &kj) in k.iter().enumerate() {
        let members: Vec<NodeId> = (0..32)
            .filter(|&i| c1355_pattern(i) >> j & 1 == 1)
            .map(|i| d[i])
            .collect();
        let par = e.tree(GateKind::Xor, &members);
        let sj = e.gate(GateKind::Xor, vec![par, kj]);
        ns.push(e.gate(GateKind::Not, vec![sj]));
        s.push(sj);
    }
    let mut outs = Vec::with_capacity(32);
    for (i, &di) in d.iter().enumerate() {
        let lits: Vec<NodeId> = (0..8)
            .map(|j| {
                if c1355_pattern(i) >> j & 1 == 1 {
                    s[j]
                } else {
                    ns[j]
                }
            })
            .collect();
        let matched = e.tree(GateKind::And, &lits);
        let flip = e.gate(GateKind::And, vec![matched, en]);
        outs.push(e.gate(GateKind::Xor, vec![di, flip]));
    }
    for o in outs {
        nl.mark_output(o);
    }
    nl.freeze();
    nl.validate().must();
    nl
}

/// Adds `a{i}`/`b{i}`/`op{i}` buses for one ALU core under a prefix.
fn alu_inputs(
    nl: &mut Netlist,
    prefix: &str,
    width: usize,
) -> (Vec<NodeId>, Vec<NodeId>, [NodeId; 3]) {
    let a: Vec<NodeId> = (0..width)
        .map(|i| nl.add_input(format!("{prefix}a{i}")).must())
        .collect();
    let b: Vec<NodeId> = (0..width)
        .map(|i| nl.add_input(format!("{prefix}b{i}")).must())
        .collect();
    let op = [
        nl.add_input(format!("{prefix}op0")).must(),
        nl.add_input(format!("{prefix}op1")).must(),
        nl.add_input(format!("{prefix}op2")).must(),
    ];
    (a, b, op)
}

/// The c2670-class ALU + controller: a 24-bit 8-function ALU with
/// compare/parity flags, plus a 9-channel enabled priority interrupt
/// encoder cross-checked against the datapath parity.
pub fn c2670_class() -> Netlist {
    let mut nl = Netlist::new("c2670_class");
    let (a, b, op) = alu_inputs(&mut nl, "", 24);
    let req: Vec<NodeId> = (0..9)
        .map(|i| nl.add_input(format!("r{i}")).must())
        .collect();
    let en = nl.add_input("en").must();
    let mut e = Emit::new(&mut nl, "g");
    let alu = e.alu(&a, &b, &op);
    let z = e.priority9(&req, en);
    // Cross-check: encoder index parity against datapath parity — the
    // reconvergent XOR content of the original's control section.
    let zp = e.tree(GateKind::Xor, &z);
    let chk = e.gate(GateKind::Xnor, vec![alu.parity, zp]);
    for o in alu
        .bits
        .iter()
        .copied()
        .chain([alu.cout, alu.eq, alu.gt])
        .chain(z)
        .chain([chk])
    {
        nl.mark_output(o);
    }
    nl.freeze();
    nl.validate().must();
    nl
}

/// The c5315-class dual-datapath ALU: two 24-bit 8-function cores, a
/// selected result bus, and cross-core consistency checks. Both cores'
/// raw buses stay observable, like the original's many outputs.
pub fn c5315_class() -> Netlist {
    let mut nl = Netlist::new("c5315_class");
    let (xa, xb, xop) = alu_inputs(&mut nl, "x", 24);
    let (ya, yb, yop) = alu_inputs(&mut nl, "y", 24);
    let sel = nl.add_input("sel").must();
    let mut e = Emit::new(&mut nl, "x_g");
    let xu = e.alu(&xa, &xb, &xop);
    e.set_prefix("y_g");
    let yu = e.alu(&ya, &yb, &yop);
    e.set_prefix("m_g");
    let nsel = e.gate(GateKind::Not, vec![sel]);
    let mut muxed = Vec::with_capacity(28);
    for (&x, &y) in xu
        .bits
        .iter()
        .chain([&xu.cout, &xu.eq, &xu.gt, &xu.parity])
        .zip(yu.bits.iter().chain([&yu.cout, &yu.eq, &yu.gt, &yu.parity]))
    {
        let tx = e.gate(GateKind::And, vec![x, nsel]);
        let ty = e.gate(GateKind::And, vec![y, sel]);
        muxed.push(e.gate(GateKind::Or, vec![tx, ty]));
    }
    let chk = e.gate(GateKind::Xnor, vec![xu.parity, yu.parity]);
    for o in xu
        .bits
        .iter()
        .chain(yu.bits.iter())
        .copied()
        .chain(muxed)
        .chain([xu.eq, yu.eq, chk])
    {
        nl.mark_output(o);
    }
    nl.freeze();
    nl.validate().must();
    nl
}

/// The c7552-class triple-core datapath: three 24-bit ALU cores plus a
/// 34-bit adder, 34-bit magnitude comparator, and parity cross-checks
/// over the wide bus — the original's adder/comparator/parity mix.
pub fn c7552_class() -> Netlist {
    let mut nl = Netlist::new("c7552_class");
    let (xa, xb, xop) = alu_inputs(&mut nl, "x", 24);
    let (ya, yb, yop) = alu_inputs(&mut nl, "y", 24);
    let (za, zb, zop) = alu_inputs(&mut nl, "z", 24);
    let wa: Vec<NodeId> = (0..34)
        .map(|i| nl.add_input(format!("wa{i}")).must())
        .collect();
    let wb: Vec<NodeId> = (0..34)
        .map(|i| nl.add_input(format!("wb{i}")).must())
        .collect();
    let mut e = Emit::new(&mut nl, "x_g");
    let xu = e.alu(&xa, &xb, &xop);
    e.set_prefix("y_g");
    let yu = e.alu(&ya, &yb, &yop);
    e.set_prefix("z_g");
    let zu = e.alu(&za, &zb, &zop);
    e.set_prefix("w_g");
    let (wsum, wcout) = e.ripple(&wa, &wb, None);
    let (weq, wgt) = e.compare(&wa, &wb);
    let wpar = e.tree(GateKind::Xor, &wsum);
    // Parity cross-checks couple the three cores and the wide adder.
    let p01 = e.gate(GateKind::Xnor, vec![xu.parity, yu.parity]);
    let p23 = e.gate(GateKind::Xnor, vec![zu.parity, wpar]);
    let chk = e.gate(GateKind::Xor, vec![p01, p23]);
    for o in xu
        .bits
        .iter()
        .chain(yu.bits.iter())
        .chain(zu.bits.iter())
        .chain(wsum.iter())
        .copied()
        .chain([
            xu.cout, xu.eq, xu.gt, yu.cout, yu.eq, yu.gt, zu.cout, zu.eq, zu.gt,
            wcout, weq, wgt, chk,
        ])
    {
        nl.mark_output(o);
    }
    nl.freeze();
    nl.validate().must();
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_bits(nl: &Netlist, bits: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = bits.iter().map(|&b| if b { 1 } else { 0 }).collect();
        nl.eval_words(&words).iter().map(|&w| w & 1 == 1).collect()
    }

    #[test]
    fn multiplier_matches_native_math() {
        for m in [2usize, 3, 8] {
            let nl = array_multiplier(m);
            assert_eq!(nl.inputs().len(), 2 * m);
            assert_eq!(nl.outputs().len(), 2 * m);
            let mut state = 0x9E37_79B9_7F4A_7C15u64 | 1;
            for _ in 0..40 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let a = state & ((1 << m) - 1);
                let b = (state >> 20) & ((1 << m) - 1);
                let mut bits: Vec<bool> = (0..m).map(|i| a >> i & 1 == 1).collect();
                bits.extend((0..m).map(|i| b >> i & 1 == 1));
                let out = eval_bits(&nl, &bits);
                let product: u64 = out
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| (x as u64) << i)
                    .sum();
                assert_eq!(product, a * b, "{m}x{m}: {a} * {b}");
            }
        }
    }

    #[test]
    fn c6288_class_is_a_16x16_multiplier() {
        let nl = c6288_class();
        assert_eq!(nl.name(), "c6288_class");
        assert_eq!(nl.inputs().len(), 32);
        assert_eq!(nl.outputs().len(), 32);
        assert!(
            (1_300..=2_800).contains(&nl.gate_count()),
            "gate count {} out of c6288 class",
            nl.gate_count()
        );
        // Spot-check one wide product against native math.
        let (a, b) = (0xBEEFu64, 0xCAFEu64);
        let mut bits: Vec<bool> = (0..16).map(|i| a >> i & 1 == 1).collect();
        bits.extend((0..16).map(|i| b >> i & 1 == 1));
        let out = eval_bits(&nl, &bits);
        let product: u64 = out
            .iter()
            .enumerate()
            .map(|(i, &x)| (x as u64) << i)
            .sum();
        assert_eq!(product, a * b);
    }

    /// Reference model for the c1355-class corrector.
    fn c1355_reference(data: u32, check: u8, en: bool) -> u32 {
        let mut syndrome = check;
        for i in 0..32 {
            if data >> i & 1 == 1 {
                syndrome ^= c1355_pattern(i);
            }
        }
        let mut out = data;
        if en {
            for i in 0..32 {
                if c1355_pattern(i) == syndrome {
                    out ^= 1 << i;
                }
            }
        }
        out
    }

    #[test]
    fn c1355_class_corrects_single_errors() {
        let nl = c1355_class();
        assert_eq!(nl.inputs().len(), 41);
        assert_eq!(nl.outputs().len(), 32);
        assert!(
            (380..=620).contains(&nl.gate_count()),
            "gate count {} out of c1355 class",
            nl.gate_count()
        );
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for trial in 0..60 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let data = state as u32;
            let check = (state >> 32) as u8;
            let en = trial % 4 != 0;
            let mut bits: Vec<bool> = (0..32).map(|i| data >> i & 1 == 1).collect();
            bits.extend((0..8).map(|j| check >> j & 1 == 1));
            bits.push(en);
            let out = eval_bits(&nl, &bits);
            let got: u32 = out
                .iter()
                .enumerate()
                .map(|(i, &x)| (x as u32) << i)
                .sum();
            assert_eq!(got, c1355_reference(data, check, en), "trial {trial}");
        }
        // The headline property: flipping one data bit of a consistent
        // word is corrected back (syndrome = that bit's pattern).
        let data = 0xDEAD_BEEFu32;
        let mut check = 0u8;
        for i in 0..32 {
            if data >> i & 1 == 1 {
                check ^= c1355_pattern(i);
            }
        }
        for flip in [0usize, 13, 31] {
            let corrupted = data ^ (1 << flip);
            assert_eq!(
                c1355_reference(corrupted, check, true),
                data,
                "bit {flip} not corrected"
            );
            let mut bits: Vec<bool> = (0..32).map(|i| corrupted >> i & 1 == 1).collect();
            bits.extend((0..8).map(|j| check >> j & 1 == 1));
            bits.push(true);
            let out = eval_bits(&nl, &bits);
            let got: u32 = out
                .iter()
                .enumerate()
                .map(|(i, &x)| (x as u32) << i)
                .sum();
            assert_eq!(got, data, "circuit did not correct bit {flip}");
        }
    }

    #[test]
    fn c2670_class_vital_statistics_and_alu_functions() {
        let nl = c2670_class();
        assert_eq!(nl.inputs().len(), 61);
        assert_eq!(nl.outputs().len(), 32);
        assert!(
            (900..=1_500).contains(&nl.gate_count()),
            "gate count {} out of c2670 class",
            nl.gate_count()
        );
        // op = 0 is add: check the 24-bit sum on a couple of operands.
        for (a, b) in [(0x12_3456u64, 0x0F_EDCBu64), (0xFF_FFFFu64, 0x00_0001u64)] {
            let mut bits: Vec<bool> = (0..24).map(|i| a >> i & 1 == 1).collect();
            bits.extend((0..24).map(|i| b >> i & 1 == 1));
            bits.extend([false, false, false]); // op = add
            bits.extend(std::iter::repeat_n(false, 10)); // req, en
            let out = eval_bits(&nl, &bits);
            let sum: u64 = out[..24]
                .iter()
                .enumerate()
                .map(|(i, &x)| (x as u64) << i)
                .sum();
            let cout = out[24];
            assert_eq!(sum, (a + b) & 0xFF_FFFF, "sum of {a:x} + {b:x}");
            assert_eq!(cout, a + b > 0xFF_FFFF, "carry of {a:x} + {b:x}");
            // eq/gt flags agree with native compare.
            assert_eq!(out[25], a == b);
            assert_eq!(out[26], a > b);
        }
    }

    #[test]
    fn c5315_and_c7552_vital_statistics() {
        let five = c5315_class();
        assert_eq!(five.inputs().len(), 103);
        assert!(
            (1_800..=2_800).contains(&five.gate_count()),
            "gate count {} out of c5315 class",
            five.gate_count()
        );
        let seven = c7552_class();
        assert_eq!(seven.inputs().len(), 221);
        assert!(
            (3_000..=4_200).contains(&seven.gate_count()),
            "gate count {} out of c7552 class",
            seven.gate_count()
        );
        // XOR content: both carry parity networks.
        for nl in [&five, &seven] {
            let xors = nl
                .node_ids()
                .filter(|&id| matches!(nl.kind(id), GateKind::Xor | GateKind::Xnor))
                .count();
            assert!(xors >= 100, "{}: expected XOR content, got {xors}", nl.name());
        }
    }

    /// FNV-1a over the bench-format text — the same fingerprint scheme
    /// as the c432-class stability test.
    fn fingerprint(nl: &Netlist) -> (usize, u64) {
        let text = crate::bench::write(nl);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        (text.lines().count(), hash)
    }

    /// The generators are part of the reproducibility contract: the
    /// scale-sweep numbers assume these exact netlists. Any structural
    /// change must be deliberate (update the fingerprints *and*
    /// EXPERIMENTS.md).
    #[test]
    fn family_netlists_are_stable() {
        let mut failures = String::new();
        for (name, nl, expect) in [
            ("c1355", c1355_class(), (498usize, 13067958427763265124u64)),
            ("c2670", c2670_class(), (1088, 15254609920594273663)),
            ("c5315", c5315_class(), (2165, 1336898359355999777)),
            ("c6288", c6288_class(), (1473, 18334141168421870834)),
            ("c7552", c7552_class(), (3589, 11644130054771842293)),
        ] {
            let got = fingerprint(&nl);
            if got != expect {
                failures.push_str(&format!("{name}: got {got:?}, expected {expect:?}\n"));
            }
        }
        assert!(
            failures.is_empty(),
            "family structure changed; refresh fingerprints + EXPERIMENTS.md:\n{failures}"
        );
    }

    #[test]
    fn c5315_class_selects_between_cores() {
        let nl = c5315_class();
        // Drive core x with an AND op (op=1) and core y with OR (op=2);
        // sel chooses whose result lands on the muxed bus.
        let a = 0b1010_1100_1111_0000_1010_0101u64;
        let b = 0b0110_0110_0110_0110_0110_0110u64;
        for sel in [false, true] {
            let mut bits: Vec<bool> = (0..24).map(|i| a >> i & 1 == 1).collect();
            bits.extend((0..24).map(|i| b >> i & 1 == 1));
            bits.extend([true, false, false]); // x op = 1 (and)
            bits.extend((0..24).map(|i| a >> i & 1 == 1));
            bits.extend((0..24).map(|i| b >> i & 1 == 1));
            bits.extend([false, true, false]); // y op = 2 (or)
            bits.push(sel);
            let out = eval_bits(&nl, &bits);
            let muxed: u64 = out[48..72]
                .iter()
                .enumerate()
                .map(|(i, &x)| (x as u64) << i)
                .sum();
            let expect = if sel { a | b } else { a & b };
            assert_eq!(muxed, expect, "sel = {sel}");
        }
    }
}
