//! Benchmark circuit generators.
//!
//! Everything here is built from scratch so the toolkit carries its own
//! workloads:
//!
//! * [`c17`] — the 6-gate ISCAS-85 `c17`, embedded verbatim,
//! * [`c432_class`] — a 36-input / 7-output 27-channel interrupt controller
//!   of the same class as ISCAS-85 `c432` (see `DESIGN.md` for the
//!   substitution rationale),
//! * the ISCAS-85-class family analogues — [`c1355_class`]
//!   (error-correcting XOR network), [`c2670_class`] (ALU + interrupt
//!   controller), [`c5315_class`] (dual-datapath ALU), [`c6288_class`]
//!   (16x16 array multiplier), [`c7552_class`] (triple-core
//!   adder/comparator/parity datapath) — plus the parameterized
//!   [`array_multiplier`],
//! * [`tiled_multiplier`] — `n` identical multiplier tiles XOR-folded
//!   into 16 outputs, scaling the collapsed fault universe linearly to
//!   10^6+ while keeping per-fault cones bounded,
//! * arithmetic and datapath blocks ([`ripple_adder`], [`comparator`],
//!   [`alu_slice`]),
//! * regular structures ([`decoder`], [`parity_tree`], [`mux_tree`]),
//! * [`random_logic`] — seeded random combinational networks for scaling
//!   experiments.
//!
//! All generators return frozen, validated [`Netlist`]s.

mod arith;
mod blocks;
mod interrupt;
mod iscas;
mod random;
mod regular;
mod tiled;

pub use arith::{alu_slice, comparator, ripple_adder};
pub use interrupt::c432_class;
pub use iscas::{
    array_multiplier, c1355_class, c2670_class, c5315_class, c6288_class, c7552_class,
};
pub use random::{random_logic, RandomLogicConfig};
pub use regular::{decoder, mux_tree, parity_tree};
pub use tiled::{multiplier_tile, tiled_multiplier, TILE_INPUTS, TILE_WIDTH};

use crate::must::MustExt;
use crate::{bench, Netlist};

/// The ISCAS-85 `c17` benchmark (5 inputs, 2 outputs, 6 NAND2 gates),
/// embedded verbatim from the Brglez–Fujiwara distribution.
///
/// # Example
///
/// ```
/// let c17 = dlp_circuit::generators::c17();
/// assert_eq!(c17.gate_count(), 6);
/// assert_eq!(c17.inputs().len(), 5);
/// ```
pub fn c17() -> Netlist {
    const TEXT: &str = "\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";
    bench::parse("c17", TEXT).must()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_structure() {
        let c = c17();
        assert_eq!(c.node_count(), 11);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn c17_known_response() {
        let c = c17();
        // All-zero inputs: 10 = 1, 11 = 1, 16 = 1, 19 = 1 -> 22 = 0, 23 = 0.
        let out = c.eval_words(&[0, 0, 0, 0, 0]);
        assert_eq!(out[0] & 1, 0);
        assert_eq!(out[1] & 1, 0);
        // Inputs 1=0,2=0,3=0,6=0,7=0 with bit1 pattern all-ones:
        let out = c.eval_words(&[u64::MAX; 5]);
        // 10 = nand(1,1)=0, 11 = 0, 16 = nand(1,0)=1, 19 = nand(0,1)=1,
        // 22 = nand(0,1)=1, 23 = nand(1,1)=0.
        assert_eq!(out[0] & 1, 1);
        assert_eq!(out[1] & 1, 0);
    }
}
