//! Seeded random combinational logic, for scaling and robustness tests.

use crate::{GateKind, Netlist, NetlistError};

/// Shape parameters for [`random_logic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomLogicConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gates to generate.
    pub gates: usize,
    /// Number of primary outputs (drawn from the last gates).
    pub outputs: usize,
    /// RNG seed; identical seeds give identical netlists.
    pub seed: u64,
}

impl Default for RandomLogicConfig {
    fn default() -> Self {
        RandomLogicConfig {
            inputs: 16,
            gates: 100,
            outputs: 8,
            seed: 42,
        }
    }
}

/// Generates a random combinational netlist.
///
/// Non-inverter gates draw an arity uniformly from 2–4 — independently of
/// the gate kind — and take their fanins from a sliding recency window
/// (biasing toward recent signals keeps depth and fanout realistic instead
/// of degenerating into a flat OR of inputs). Every gate gets exactly its
/// drawn arity in distinct signals; when the recency window cannot supply
/// them the whole signal pool is searched, and a pool that is *still* too
/// small is a typed error rather than a silently narrower gate. The
/// generator is deterministic in the seed.
///
/// # Errors
///
/// [`NetlistError::BadShape`] if `inputs == 0`, `gates == 0`, or `outputs`
/// exceeds `gates`; also when the signal pool cannot supply a drawn arity
/// in distinct signals (possible only for `inputs < 4`, where the first
/// gates may draw a wider fanin than the pool holds — such shapes build or
/// fail deterministically per seed).
///
/// # Example
///
/// ```
/// use dlp_circuit::generators::{random_logic, RandomLogicConfig};
///
/// # fn main() -> Result<(), dlp_circuit::NetlistError> {
/// let a = random_logic(&RandomLogicConfig::default())?;
/// let b = random_logic(&RandomLogicConfig::default())?;
/// assert_eq!(dlp_circuit::bench::write(&a), dlp_circuit::bench::write(&b));
/// # Ok(())
/// # }
/// ```
pub fn random_logic(config: &RandomLogicConfig) -> Result<Netlist, NetlistError> {
    if config.inputs == 0 {
        return Err(NetlistError::BadShape("need at least one input"));
    }
    if config.gates == 0 {
        return Err(NetlistError::BadShape("need at least one gate"));
    }
    if config.outputs > config.gates {
        return Err(NetlistError::BadShape("more outputs than gates"));
    }

    let mut state = config.seed | 1;
    let mut next = move || {
        // xorshift64*; deterministic and dependency-free.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };

    let mut nl = Netlist::new(format!("rand_{}_{}", config.gates, config.seed));
    let mut pool = Vec::with_capacity(config.inputs);
    for i in 0..config.inputs {
        pool.push(nl.add_input(format!("i{i}"))?);
    }

    const KINDS: [GateKind; 8] = [
        GateKind::Nand,
        GateKind::Nor,
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Nand,
    ];
    for g in 0..config.gates {
        let r = next();
        let kind = KINDS[(r % 8) as usize];
        // Arity from bits 8.. of the draw — independent of the kind bits
        // 0..3. (A shift-precedence typo, `r >> (8 % 3)`, once sourced the
        // arity from bits 2..4 of the same word, correlating it with kind.)
        let arity = if matches!(kind, GateKind::Not) {
            1
        } else {
            2 + ((r >> 8) % 3) as usize
        };
        // Recency window: last 3*inputs signals.
        let window = pool.len().min(3 * config.inputs);
        let base = pool.len() - window;
        let mut fanin = Vec::with_capacity(arity);
        let mut attempts = 0;
        while fanin.len() < arity && attempts < 64 {
            let pick = pool[base + (next() as usize % window)];
            attempts += 1;
            if !fanin.contains(&pick) {
                fanin.push(pick);
            }
        }
        // Window exhausted of distinct signals (tiny configs): walk the
        // whole pool, newest first, for signals not drawn yet.
        for &pick in pool.iter().rev() {
            if fanin.len() == arity {
                break;
            }
            if !fanin.contains(&pick) {
                fanin.push(pick);
            }
        }
        if fanin.len() < arity {
            // The pool itself has fewer distinct signals than the drawn
            // arity — shrinking the gate here would silently violate the
            // declared-arity contract the property tests enforce.
            return Err(NetlistError::BadShape(
                "signal pool cannot supply the drawn gate arity",
            ));
        }
        let id = nl.add_gate(format!("g{g}"), kind, fanin)?;
        pool.push(id);
    }
    for k in 0..config.outputs {
        nl.mark_output(pool[pool.len() - 1 - k]);
    }
    nl.freeze();
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomLogicConfig {
            inputs: 8,
            gates: 50,
            outputs: 4,
            seed: 7,
        };
        let a = crate::bench::write(&random_logic(&cfg).unwrap());
        let b = crate::bench::write(&random_logic(&cfg).unwrap());
        assert_eq!(a, b);
        let c = crate::bench::write(&random_logic(&RandomLogicConfig { seed: 8, ..cfg }).unwrap());
        assert_ne!(a, c);
    }

    #[test]
    fn respects_shape() {
        let cfg = RandomLogicConfig {
            inputs: 12,
            gates: 200,
            outputs: 6,
            seed: 99,
        };
        let nl = random_logic(&cfg).unwrap();
        assert_eq!(nl.inputs().len(), 12);
        assert_eq!(nl.gate_count(), 200);
        assert_eq!(nl.outputs().len(), 6);
        assert!(nl.depth() > 3, "recency window should create depth");
    }

    #[test]
    fn tiny_configs_work() {
        // Four inputs supply any drawn arity from the first gate onward,
        // so this shape builds for every seed.
        let nl = random_logic(&RandomLogicConfig {
            inputs: 4,
            gates: 3,
            outputs: 1,
            seed: 1,
        })
        .unwrap();
        assert_eq!(nl.gate_count(), 3);
    }

    #[test]
    fn starved_pool_is_a_typed_error_not_a_narrow_gate() {
        // One input cannot supply a 2..4-fanin gate; some seed in a short
        // sweep must hit a non-inverter first draw and surface the typed
        // error (never a gate with fewer fanins than drawn).
        let mut starved = 0;
        for seed in 0..16u64 {
            match random_logic(&RandomLogicConfig {
                inputs: 1,
                gates: 3,
                outputs: 1,
                seed,
            }) {
                Ok(nl) => {
                    for id in nl.node_ids() {
                        assert!(nl.fanin(id).len() <= 1, "1-input pool grew a wide gate");
                    }
                }
                Err(NetlistError::BadShape(msg)) => {
                    assert!(msg.contains("arity"), "{msg}");
                    starved += 1;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(starved > 0, "sweep never exercised the starved-pool error");
    }

    #[test]
    fn never_panics_and_validates_across_shapes() {
        // Deterministic sweep over the shape space the old property test
        // sampled: every config with >= 4 inputs must build, validate, and
        // evaluate; narrower ones either build or fail with the typed
        // starved-pool error — never panic.
        for seed in 0..40u64 {
            let inputs = 1 + (seed as usize * 7) % 19;
            let gates = 1 + (seed as usize * 13) % 119;
            let outputs = gates.min(4);
            let nl = match random_logic(&RandomLogicConfig {
                inputs,
                gates,
                outputs,
                seed,
            }) {
                Ok(nl) => nl,
                Err(NetlistError::BadShape(_)) if inputs < 4 => continue,
                Err(other) => panic!("unexpected error {other:?}"),
            };
            assert!(nl.validate().is_ok());
            assert_eq!(nl.gate_count(), gates);
            // Evaluation must not panic.
            let words = vec![0u64; inputs];
            let out = nl.eval_words(&words);
            assert_eq!(out.len(), outputs);
        }
    }

    #[test]
    fn degenerate_shapes_are_typed_errors() {
        let base = RandomLogicConfig::default();
        for bad in [
            RandomLogicConfig { inputs: 0, ..base.clone() },
            RandomLogicConfig { gates: 0, ..base.clone() },
            RandomLogicConfig { outputs: base.gates + 1, ..base.clone() },
        ] {
            assert!(matches!(
                random_logic(&bad),
                Err(NetlistError::BadShape(_))
            ));
        }
    }
}
