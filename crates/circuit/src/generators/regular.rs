//! Regular-structure benchmark generators: decoders, parity trees, muxes.

use crate::must::MustExt;
use crate::{GateKind, Netlist, NodeId};

/// An `n`-to-2ⁿ line decoder with an enable input. Output `y{k}` goes high
/// when the binary input selects `k` and `en` is high.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 6` (64 outputs is plenty for a benchmark).
pub fn decoder(n: usize) -> Netlist {
    assert!((1..=6).contains(&n), "decoder width must be in 1..=6");
    let mut nl = Netlist::new(format!("dec{n}"));
    let sel: Vec<NodeId> = (0..n)
        .map(|i| nl.add_input(format!("s{i}")).must())
        .collect();
    let en = nl.add_input("en").must();
    let nsel: Vec<NodeId> = (0..n)
        .map(|i| {
            nl.add_gate(format!("ns{i}"), GateKind::Not, vec![sel[i]])
                .must()
        })
        .collect();
    for k in 0..1usize << n {
        let mut fanin = vec![en];
        for i in 0..n {
            fanin.push(if k >> i & 1 == 1 { sel[i] } else { nsel[i] });
        }
        let y = nl.add_gate(format!("y{k}"), GateKind::And, fanin).must();
        nl.mark_output(y);
    }
    nl.freeze();
    nl
}

/// An `n`-input XOR parity tree (balanced), output `parity`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn parity_tree(n: usize) -> Netlist {
    assert!(n >= 2, "parity tree needs at least 2 inputs");
    let mut nl = Netlist::new(format!("par{n}"));
    let mut layer: Vec<NodeId> = (0..n)
        .map(|i| nl.add_input(format!("x{i}")).must())
        .collect();
    let mut fresh = 0;
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                fresh += 1;
                next.push(
                    nl.add_gate(format!("p{fresh}"), GateKind::Xor, pair.to_vec())
                        .must(),
                );
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    nl.mark_output(layer[0]);
    nl.freeze();
    nl
}

/// A 2ⁿ-to-1 multiplexer tree: `n` select inputs, `2^n` data inputs,
/// one output `y`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 5`.
pub fn mux_tree(n: usize) -> Netlist {
    assert!((1..=5).contains(&n), "mux select width must be in 1..=5");
    let mut nl = Netlist::new(format!("mux{n}"));
    let sel: Vec<NodeId> = (0..n)
        .map(|i| nl.add_input(format!("s{i}")).must())
        .collect();
    let mut layer: Vec<NodeId> = (0..1usize << n)
        .map(|i| nl.add_input(format!("d{i}")).must())
        .collect();
    for (lvl, &s) in sel.iter().enumerate() {
        let ns = nl
            .add_gate(format!("ns{lvl}"), GateKind::Not, vec![s])
            .must();
        let mut next = Vec::new();
        for (j, pair) in layer.chunks(2).enumerate() {
            let a = nl
                .add_gate(format!("a{lvl}_{j}"), GateKind::And, vec![pair[0], ns])
                .must();
            let b = nl
                .add_gate(format!("b{lvl}_{j}"), GateKind::And, vec![pair[1], s])
                .must();
            next.push(
                nl.add_gate(format!("m{lvl}_{j}"), GateKind::Or, vec![a, b])
                    .must(),
            );
        }
        layer = next;
    }
    nl.mark_output(layer[0]);
    nl.freeze();
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_bits(nl: &Netlist, bits: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = bits.iter().map(|&b| if b { 1 } else { 0 }).collect();
        nl.eval_words(&words).iter().map(|&w| w & 1 == 1).collect()
    }

    #[test]
    fn decoder_one_hot() {
        let nl = decoder(3);
        for k in 0..8u32 {
            for en in [false, true] {
                let mut bits: Vec<bool> = (0..3).map(|i| k >> i & 1 == 1).collect();
                bits.push(en);
                let out = eval_bits(&nl, &bits);
                for (j, &o) in out.iter().enumerate() {
                    assert_eq!(o, en && j as u32 == k, "k={k} en={en} out{j}");
                }
            }
        }
    }

    #[test]
    fn parity_tree_is_odd_parity() {
        for n in [2usize, 3, 5, 8, 13] {
            let nl = parity_tree(n);
            assert_eq!(nl.outputs().len(), 1);
            for trial in 0..32u64 {
                let bits: Vec<bool> = (0..n)
                    .map(|i| (trial.wrapping_mul(0x9E37) >> i) & 1 == 1)
                    .collect();
                let expect = bits.iter().filter(|&&b| b).count() % 2 == 1;
                assert_eq!(eval_bits(&nl, &bits)[0], expect, "n={n} trial={trial}");
            }
        }
    }

    #[test]
    fn mux_selects_correct_input() {
        let nl = mux_tree(3);
        for sel in 0..8usize {
            for data in [0u32, 0xAA, 0x55, 0xF0, 0xFF] {
                let mut bits: Vec<bool> = (0..3).map(|i| sel >> i & 1 == 1).collect();
                bits.extend((0..8).map(|i| data >> i & 1 == 1));
                let out = eval_bits(&nl, &bits)[0];
                assert_eq!(out, data >> sel & 1 == 1, "sel={sel} data={data:02x}");
            }
        }
    }

    #[test]
    fn parity_depth_is_logarithmic() {
        let nl = parity_tree(16);
        assert_eq!(nl.depth(), 4);
    }

    #[test]
    #[should_panic(expected = "1..=6")]
    fn oversized_decoder_panics() {
        let _ = decoder(7);
    }
}
