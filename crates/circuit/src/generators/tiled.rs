//! Tiled synthetic circuits that scale the fault universe to millions
//! while keeping every fault cheap to simulate.
//!
//! [`tiled_multiplier`] instantiates `n` structurally identical 8x8
//! array-multiplier tiles over a shared pool of 64 primary inputs (each
//! tile reads a deterministic permutation of the pool) and folds the
//! tiles' product bits into 16 global outputs through balanced XOR
//! trees. XOR folding masks nothing, so every tile-internal fault stays
//! observable, and a fault's evaluation cone is bounded by its tile's
//! remainder plus one logarithmic fold path — independent of `n`. That
//! is what lets parts-per-second throughput stay flat while the
//! collapsed fault count grows linearly to 10^6 and beyond.
//!
//! Because every tile is emitted by the same
//! [`Emit::multiplier`](super::blocks::Emit) routine that builds
//! [`multiplier_tile`], a laid-out template tile is structurally
//! identical to each instance — the basis of the tiled critical-area
//! replication in `dlp-layout`/`dlp-extract`.

use super::blocks::Emit;
use crate::must::MustExt;
use crate::{GateKind, Netlist, NodeId};

/// Operand width of one tile (an 8x8 multiplier, ~340 gates).
pub const TILE_WIDTH: usize = 8;

/// Number of shared primary inputs feeding the tiles.
pub const TILE_INPUTS: usize = 64;

/// The standalone template tile: an 8x8 array multiplier with its own
/// 16 inputs, structurally identical to every tile instance inside
/// [`tiled_multiplier`].
pub fn multiplier_tile() -> Netlist {
    let mut nl = super::array_multiplier(TILE_WIDTH);
    nl.set_name("multiplier_tile");
    nl
}

/// Operand selections of tile `t`: indices into the shared input pool.
/// `a` draws even pool slots, `b` odd ones, so the two operands of any
/// partial-product gate are always distinct signals; the strides are
/// coprime to the pool half so each operand's bits are distinct too.
fn tile_operands(t: usize) -> ([usize; TILE_WIDTH], [usize; TILE_WIDTH]) {
    let mut a = [0usize; TILE_WIDTH];
    let mut b = [0usize; TILE_WIDTH];
    for j in 0..TILE_WIDTH {
        a[j] = 2 * ((3 * t + 5 * j) % (TILE_INPUTS / 2));
        b[j] = 2 * ((5 * t + 7 * j) % (TILE_INPUTS / 2)) + 1;
    }
    (a, b)
}

/// Builds the `n`-tile multiplier array: 64 shared inputs, `n`
/// structurally identical 8x8 multiplier tiles, 16 XOR-folded outputs.
///
/// The collapsed stuck-at universe grows by ~1.5k faults per tile;
/// ~700 tiles pass 10^6.
///
/// # Panics
///
/// Panics if `tiles == 0`.
pub fn tiled_multiplier(tiles: usize) -> Netlist {
    assert!(tiles >= 1, "need at least one tile");
    let mut nl = Netlist::new(format!("tiledmul{tiles}"));
    let pool: Vec<NodeId> = (0..TILE_INPUTS)
        .map(|i| nl.add_input(format!("x{i}")).must())
        .collect();
    let mut e = Emit::new(&mut nl, "t0_");
    // Column-major per product bit: fold[k] collects bit k of every tile.
    let mut fold: Vec<Vec<NodeId>> = (0..2 * TILE_WIDTH)
        .map(|_| Vec::with_capacity(tiles))
        .collect();
    for t in 0..tiles {
        e.set_prefix(format!("t{t}_"));
        let (ai, bi) = tile_operands(t);
        let a: Vec<NodeId> = ai.iter().map(|&i| pool[i]).collect();
        let b: Vec<NodeId> = bi.iter().map(|&i| pool[i]).collect();
        for (k, bit) in e.multiplier(&a, &b).into_iter().enumerate() {
            fold[k].push(bit);
        }
    }
    e.set_prefix("f");
    let outs: Vec<NodeId> = fold
        .iter()
        .map(|column| e.tree(GateKind::Xor, column))
        .collect();
    for o in outs {
        nl.mark_output(o);
    }
    nl.freeze();
    nl.validate().must();
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Native-math model of the whole array: XOR of all tiles' products.
    fn reference(tiles: usize, pool: u64) -> u16 {
        let mut folded = 0u32;
        for t in 0..tiles {
            let (ai, bi) = tile_operands(t);
            let gather = |idx: &[usize; TILE_WIDTH]| -> u32 {
                idx.iter()
                    .enumerate()
                    .map(|(j, &i)| (((pool >> i) & 1) as u32) << j)
                    .sum()
            };
            folded ^= gather(&ai) * gather(&bi);
        }
        folded as u16
    }

    #[test]
    fn tiled_multiplier_matches_native_math() {
        for tiles in [1usize, 2, 5, 12] {
            let nl = tiled_multiplier(tiles);
            assert_eq!(nl.inputs().len(), TILE_INPUTS);
            assert_eq!(nl.outputs().len(), 2 * TILE_WIDTH);
            let mut state = 0xA5A5_5A5A_DEAD_C0DEu64;
            for trial in 0..24 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let words: Vec<u64> = (0..TILE_INPUTS)
                    .map(|i| if state >> i & 1 == 1 { 1u64 } else { 0 })
                    .collect();
                let out = nl.eval_words(&words);
                let got: u16 = out
                    .iter()
                    .enumerate()
                    .map(|(k, &w)| ((w & 1) as u16) << k)
                    .sum();
                assert_eq!(
                    got,
                    reference(tiles, state),
                    "tiles = {tiles}, trial = {trial}"
                );
            }
        }
    }

    #[test]
    fn tile_operands_are_distinct_signals() {
        for t in 0..64 {
            let (a, b) = tile_operands(t);
            for j in 0..TILE_WIDTH {
                assert_eq!(a[j] % 2, 0);
                assert_eq!(b[j] % 2, 1);
                for k in j + 1..TILE_WIDTH {
                    assert_ne!(a[j], a[k], "tile {t} operand a");
                    assert_ne!(b[j], b[k], "tile {t} operand b");
                }
            }
        }
    }

    #[test]
    fn tile_template_matches_instance_structure() {
        // The template and a 1-tile array differ only in input wiring
        // and the (trivial) fold, not in gate composition.
        let template = multiplier_tile();
        let one = tiled_multiplier(1);
        assert_eq!(template.gate_count(), one.gate_count());
        let kinds = |nl: &Netlist| {
            let mut m = std::collections::BTreeMap::new();
            for id in nl.node_ids() {
                if !nl.fanin(id).is_empty() {
                    *m.entry(format!("{:?}", nl.kind(id))).or_insert(0usize) += 1;
                }
            }
            m
        };
        assert_eq!(kinds(&template), kinds(&one));
    }

    #[test]
    fn growth_is_linear_in_tiles() {
        let g1 = tiled_multiplier(1).gate_count();
        let g9 = tiled_multiplier(9).gate_count();
        let per_tile = (g9 - g1) / 8;
        assert!(
            (250..=450).contains(&per_tile),
            "per-tile gate count {per_tile} out of range"
        );
    }
}
