/// The logic function of a netlist node.
///
/// `Input` marks primary inputs; all other kinds are combinational gates.
/// Evaluation is 64-way bit-parallel: each `u64` word carries one bit per
/// pattern, so a single [`GateKind::eval_words`] call simulates 64 input
/// vectors at once (the basis of parallel-pattern fault simulation).
///
/// # Example
///
/// ```
/// use dlp_circuit::GateKind;
///
/// let out = GateKind::Nand.eval_words(&[0b1100, 0b1010]);
/// assert_eq!(out & 0xF, 0b0111);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Primary input (no logic function; its value comes from the vector).
    Input,
    /// Non-inverting buffer, arity 1.
    Buf,
    /// Inverter, arity 1.
    Not,
    /// AND, arity ≥ 2.
    And,
    /// NAND, arity ≥ 2.
    Nand,
    /// OR, arity ≥ 2.
    Or,
    /// NOR, arity ≥ 2.
    Nor,
    /// XOR (odd parity), arity ≥ 2.
    Xor,
    /// XNOR (even parity), arity ≥ 2.
    Xnor,
}

impl GateKind {
    /// All gate kinds, including `Input`.
    pub const ALL: [GateKind; 9] = [
        GateKind::Input,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Evaluates the gate over 64 patterns in parallel.
    ///
    /// # Panics
    ///
    /// Panics if called on [`GateKind::Input`] or with an arity the kind
    /// does not accept (netlist construction validates arity, so this only
    /// fires on hand-rolled calls).
    pub fn eval_words(self, fanin: &[u64]) -> u64 {
        match self {
            GateKind::Input => panic!("primary inputs have no logic function"),
            GateKind::Buf => {
                assert_eq!(fanin.len(), 1, "buf arity");
                fanin[0]
            }
            GateKind::Not => {
                assert_eq!(fanin.len(), 1, "not arity");
                !fanin[0]
            }
            GateKind::And => fanin.iter().copied().fold(u64::MAX, |a, b| a & b),
            GateKind::Nand => !fanin.iter().copied().fold(u64::MAX, |a, b| a & b),
            GateKind::Or => fanin.iter().copied().fold(0, |a, b| a | b),
            GateKind::Nor => !fanin.iter().copied().fold(0, |a, b| a | b),
            GateKind::Xor => fanin.iter().copied().fold(0, |a, b| a ^ b),
            GateKind::Xnor => !fanin.iter().copied().fold(0, |a, b| a ^ b),
        }
    }

    /// Human-readable description of the accepted fanin count.
    pub const fn arity_spec(self) -> &'static str {
        match self {
            GateKind::Input => "exactly 0",
            GateKind::Buf | GateKind::Not => "exactly 1",
            _ => "at least 2",
        }
    }

    /// True if `n` fanins are acceptable for this kind.
    pub const fn accepts_arity(self, n: usize) -> bool {
        match self {
            GateKind::Input => n == 0,
            GateKind::Buf | GateKind::Not => n == 1,
            _ => n >= 2,
        }
    }

    /// True if the gate inverts (its controlled value propagates inverted):
    /// NOT, NAND, NOR, XNOR.
    pub const fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// The *controlling value* of the gate, if it has one: the input value
    /// that forces the output regardless of other inputs. XOR-family gates
    /// and buffers have none.
    pub const fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// `.bench`-style keyword for this kind.
    pub const fn keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench` keyword (case-insensitive). `BUFF` is accepted as
    /// an alias for `BUF`, matching common ISCAS distributions.
    pub fn from_keyword(kw: &str) -> Option<GateKind> {
        let up = kw.to_ascii_uppercase();
        Some(match up.as_str() {
            "INPUT" => GateKind::Input,
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            _ => return None,
        })
    }
}

impl core::fmt::Display for GateKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_two_input() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        let m = 0xFu64;
        assert_eq!(GateKind::And.eval_words(&[a, b]) & m, 0b1000);
        assert_eq!(GateKind::Nand.eval_words(&[a, b]) & m, 0b0111);
        assert_eq!(GateKind::Or.eval_words(&[a, b]) & m, 0b1110);
        assert_eq!(GateKind::Nor.eval_words(&[a, b]) & m, 0b0001);
        assert_eq!(GateKind::Xor.eval_words(&[a, b]) & m, 0b0110);
        assert_eq!(GateKind::Xnor.eval_words(&[a, b]) & m, 0b1001);
        assert_eq!(GateKind::Buf.eval_words(&[a]) & m, a);
        assert_eq!(GateKind::Not.eval_words(&[a]) & m, 0b0011);
    }

    #[test]
    fn three_input_gates_fold() {
        let v = [0b11110000u64, 0b11001100, 0b10101010];
        assert_eq!(GateKind::And.eval_words(&v) & 0xFF, 0b10000000);
        assert_eq!(GateKind::Or.eval_words(&v) & 0xFF, 0b11111110);
        assert_eq!(GateKind::Xor.eval_words(&v) & 0xFF, 0b10010110);
    }

    #[test]
    #[should_panic(expected = "no logic function")]
    fn input_eval_panics() {
        let _ = GateKind::Input.eval_words(&[]);
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::Nand.accepts_arity(4));
        assert!(!GateKind::Nand.accepts_arity(1));
        assert!(GateKind::Input.accepts_arity(0));
    }

    #[test]
    fn keyword_round_trip() {
        for k in GateKind::ALL {
            assert_eq!(GateKind::from_keyword(k.keyword()), Some(k));
        }
        assert_eq!(GateKind::from_keyword("buff"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_keyword("DFF"), None);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
    }

    #[test]
    fn inversion_parity_matches_eval() {
        // For each inverting kind, output with all-ones inputs differs from
        // the non-inverting sibling.
        let a = u64::MAX;
        assert_eq!(
            GateKind::Nand.eval_words(&[a, a]),
            !GateKind::And.eval_words(&[a, a])
        );
        assert_eq!(
            GateKind::Nor.eval_words(&[a, a]),
            !GateKind::Or.eval_words(&[a, a])
        );
        assert_eq!(
            GateKind::Xnor.eval_words(&[a, a]),
            !GateKind::Xor.eval_words(&[a, a])
        );
    }
}
