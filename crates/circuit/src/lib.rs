//! Gate-level and transistor-level circuit representations.
//!
//! This crate is the netlist substrate of the defect-level toolkit:
//!
//! * [`Netlist`] — a combinational gate-level netlist with typed node IDs,
//!   levelization, fanout queries and 64-way parallel word evaluation,
//! * [`bench`] — reader/writer for the ISCAS-85 `.bench` format,
//! * [`generators`] — benchmark circuits built from scratch: the embedded
//!   `c17`, a c432-class 27-channel interrupt controller (see `DESIGN.md`
//!   for the substitution rationale), ripple-carry adders, decoders, parity
//!   trees, multiplexers, a small ALU, and seeded random logic,
//! * [`cells`] — static-CMOS cell templates (stages with series/parallel
//!   pull-down networks) shared by the layout generator and the switch-level
//!   expander,
//! * [`switch`] — expansion of a gate-level netlist into a transistor-level
//!   [`switch::SwitchNetlist`] for switch-level (realistic-fault) simulation,
//! * [`transform`] — arity decomposition, dead-logic removal, statistics.
//!
//! # Example
//!
//! ```
//! use dlp_circuit::{GateKind, Netlist};
//!
//! # fn main() -> Result<(), dlp_circuit::NetlistError> {
//! let mut n = Netlist::new("half_adder");
//! let a = n.add_input("a")?;
//! let b = n.add_input("b")?;
//! let sum = n.add_gate("sum", GateKind::Xor, vec![a, b])?;
//! let carry = n.add_gate("carry", GateKind::And, vec![a, b])?;
//! n.mark_output(sum);
//! n.mark_output(carry);
//! assert_eq!(n.gate_count(), 2);
//! // Evaluate 64 patterns at once: bit i of each word is pattern i.
//! let out = n.eval_words(&[0b0101, 0b0011]);
//! assert_eq!(out[0] & 0xF, 0b0110); // sum = a xor b
//! assert_eq!(out[1] & 0xF, 0b0001); // carry = a and b
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cells;
mod error;
pub mod generators;
mod kind;
mod must;
mod netlist;
pub mod switch;
pub mod transform;

pub use error::NetlistError;
pub use kind::GateKind;
pub use netlist::{ConeScratch, Netlist, NodeId};
