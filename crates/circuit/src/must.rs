//! Crate-private unwrapping for *statically-valid* construction.
//!
//! The benchmark generators build netlists whose validity is an invariant
//! of the generator itself (fresh names, acyclic wiring, realisable
//! arities); a failure is a bug in the generator, not a data error, so
//! panicking is the documented and correct response. Routing those sites
//! through [`MustExt::must`] instead of `unwrap`/`expect` keeps the
//! workspace-wide `clippy::unwrap_used`/`clippy::expect_used` lints
//! meaningful: any *new* unwrap in library code is a lint error, while
//! generator invariants stay loud.

use core::fmt;

pub(crate) trait MustExt<T> {
    /// Unwraps a construction step whose success is a static invariant.
    ///
    /// # Panics
    ///
    /// Panics (with the underlying error, when there is one) if the
    /// invariant is violated — i.e. on a generator bug.
    fn must(self) -> T;
}

impl<T, E: fmt::Display> MustExt<T> for Result<T, E> {
    fn must(self) -> T {
        match self {
            Ok(v) => v,
            Err(e) => panic!("generator invariant violated: {e}"),
        }
    }
}

impl<T> MustExt<T> for Option<T> {
    fn must(self) -> T {
        match self {
            Some(v) => v,
            None => panic!("generator invariant violated: value absent"),
        }
    }
}
