use std::collections::HashMap;

use crate::{GateKind, NetlistError};

/// Identifier of a netlist node (a primary input or a gate output signal).
///
/// IDs are dense indices into the owning [`Netlist`], assigned in insertion
/// order; they are meaningless across netlists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an ID from a dense index. The index must come from the
    /// [`Netlist`] the ID will be used with; out-of-range IDs make accessor
    /// methods panic.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: GateKind,
    fanin: Vec<NodeId>,
}

/// A combinational gate-level netlist in single-output-per-gate (ISCAS)
/// style: every node is either a primary input or a gate, and the node *is*
/// its output signal.
///
/// Construction is incremental ([`add_input`], [`add_gate`]) and validated:
/// names are unique, fanins must already exist (which also guarantees the
/// netlist is acyclic by construction), arities are checked.
///
/// The netlist is the common currency of the whole toolkit: ATPG and the
/// gate-level fault simulator consume it directly, the layout generator maps
/// each gate to a standard cell, and the switch-level expander lowers it to
/// transistors.
///
/// [`add_input`]: Netlist::add_input
/// [`add_gate`]: Netlist::add_gate
///
/// # Example
///
/// ```
/// use dlp_circuit::{GateKind, Netlist};
///
/// # fn main() -> Result<(), dlp_circuit::NetlistError> {
/// let mut n = Netlist::new("mux");
/// let s = n.add_input("s")?;
/// let a = n.add_input("a")?;
/// let b = n.add_input("b")?;
/// let ns = n.add_gate("ns", GateKind::Not, vec![s])?;
/// let t0 = n.add_gate("t0", GateKind::And, vec![a, ns])?;
/// let t1 = n.add_gate("t1", GateKind::And, vec![b, s])?;
/// let y = n.add_gate("y", GateKind::Or, vec![t0, t1])?;
/// n.mark_output(y);
/// n.freeze();
/// assert_eq!(n.level(y), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    // Output membership by node index — `is_output` sits in fault
    // simulators' innermost cone loops, where scanning `outputs` is
    // O(|outputs|) per node and dominates at scale.
    output_flags: Vec<bool>,
    by_name: HashMap<String, NodeId>,
    // Derived, rebuilt lazily on structural change.
    fanouts: Vec<Vec<NodeId>>,
    levels: Vec<u32>,
}

impl Netlist {
    /// Creates an empty netlist called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            output_flags: Vec::new(),
            by_name: HashMap::new(),
            fanouts: Vec::new(),
            levels: Vec::new(),
        }
    }

    /// The netlist's name (used in reports and layout cell prefixes).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the netlist (generators that wrap a parameterized core
    /// under a benchmark-family name).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Declares a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let id = self.add_node(name.into(), GateKind::Input, Vec::new())?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a gate whose output signal is `name`.
    ///
    /// Fanins must already exist, which makes cycles unrepresentable.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateName`] for a reused name,
    /// [`NetlistError::BadArity`] if `fanin.len()` does not fit `kind`.
    pub fn add_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanin: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        let name = name.into();
        if kind == GateKind::Input {
            return Err(NetlistError::BadArity {
                gate: name,
                got: fanin.len(),
                expected: "use add_input for primary inputs",
            });
        }
        if !kind.accepts_arity(fanin.len()) {
            return Err(NetlistError::BadArity {
                gate: name,
                got: fanin.len(),
                expected: kind.arity_spec(),
            });
        }
        for f in &fanin {
            if f.index() >= self.nodes.len() {
                return Err(NetlistError::UnknownSignal(format!("{f}")));
            }
        }
        self.add_node(name, kind, fanin)
    }

    fn add_node(
        &mut self,
        name: String,
        kind: GateKind,
        fanin: Vec<NodeId>,
    ) -> Result<NodeId, NetlistError> {
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node { name, kind, fanin });
        self.fanouts.clear();
        self.levels.clear();
        Ok(id)
    }

    /// Marks a node as a primary output. A node may be marked only once;
    /// repeated marks are ignored.
    pub fn mark_output(&mut self, id: NodeId) {
        if self.output_flags.len() <= id.index() {
            self.output_flags.resize(id.index() + 1, false);
        }
        if !self.output_flags[id.index()] {
            self.output_flags[id.index()] = true;
            self.outputs.push(id);
        }
    }

    /// Number of nodes (inputs + gates).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of gates (excludes primary inputs).
    pub fn gate_count(&self) -> usize {
        self.nodes.len() - self.inputs.len()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All node IDs in insertion (topological) order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The node's logic kind.
    pub fn kind(&self, id: NodeId) -> GateKind {
        self.nodes[id.index()].kind
    }

    /// The node's signal name.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// Looks a node up by signal name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The node's fanin signals, in gate-input order.
    pub fn fanin(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].fanin
    }

    /// True if the node is a primary output. O(1).
    #[inline]
    pub fn is_output(&self, id: NodeId) -> bool {
        self.output_flags.get(id.index()).copied().unwrap_or(false)
    }

    /// Finalises derived structures (fanout lists and levels). Called
    /// automatically by queries that need them; call it eagerly to pay the
    /// cost at a deterministic point.
    pub fn freeze(&mut self) {
        if self.fanouts.len() == self.nodes.len() {
            return;
        }
        let mut fanouts = vec![Vec::new(); self.nodes.len()];
        let mut levels = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            let mut level = 0;
            for &f in &node.fanin {
                fanouts[f.index()].push(id);
                level = level.max(levels[f.index()] + 1);
            }
            levels[i] = level;
        }
        self.fanouts = fanouts;
        self.levels = levels;
    }

    fn frozen(&self) -> (&[Vec<NodeId>], &[u32]) {
        assert_eq!(
            self.fanouts.len(),
            self.nodes.len(),
            "call Netlist::freeze() after structural edits (query on stale netlist)"
        );
        (&self.fanouts, &self.levels)
    }

    /// Nodes that consume this node's output signal.
    ///
    /// # Panics
    ///
    /// Panics if the netlist was structurally modified after the last
    /// [`freeze`](Netlist::freeze).
    pub fn fanout(&self, id: NodeId) -> &[NodeId] {
        self.frozen().0[id.index()].as_slice()
    }

    /// Logic level of the node (0 for primary inputs, 1 + max fanin level
    /// for gates).
    ///
    /// # Panics
    ///
    /// Panics if the netlist was structurally modified after the last
    /// [`freeze`](Netlist::freeze).
    pub fn level(&self, id: NodeId) -> u32 {
        self.frozen().1[id.index()]
    }

    /// Depth of the circuit: the maximum node level.
    ///
    /// # Panics
    ///
    /// See [`level`](Netlist::level).
    pub fn depth(&self) -> u32 {
        self.frozen().1.iter().copied().max().unwrap_or(0)
    }

    /// Validates output markings and returns self-checks a parser relies on.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UndrivenOutput`] if an output has no defining node
    /// (cannot happen through the builder API, but parsers build in two
    /// phases).
    pub fn validate(&self) -> Result<(), NetlistError> {
        for &o in &self.outputs {
            if o.index() >= self.nodes.len() {
                return Err(NetlistError::UndrivenOutput(format!("{o}")));
            }
        }
        Ok(())
    }

    /// Evaluates the whole netlist over 64 parallel patterns.
    ///
    /// `input_words[i]` carries 64 values of input `self.inputs()[i]`
    /// (bit *b* of every word belongs to pattern *b*). Returns one word per
    /// primary output, in [`outputs`](Netlist::outputs) order.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != self.inputs().len()`.
    pub fn eval_words(&self, input_words: &[u64]) -> Vec<u64> {
        let values = self.eval_words_all(input_words);
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Like [`eval_words`](Netlist::eval_words) but returns the value word
    /// of *every* node (indexed by `NodeId::index`), which fault simulators
    /// need for fault-site comparison.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != self.inputs().len()`.
    pub fn eval_words_all(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            input_words.len(),
            self.inputs.len(),
            "one input word per primary input"
        );
        let mut values = vec![0u64; self.nodes.len()];
        for (i, &id) in self.inputs.iter().enumerate() {
            values[id.index()] = input_words[i];
        }
        let mut fanin_buf = Vec::with_capacity(8);
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind == GateKind::Input {
                continue;
            }
            fanin_buf.clear();
            fanin_buf.extend(node.fanin.iter().map(|f| values[f.index()]));
            values[i] = node.kind.eval_words(&fanin_buf);
        }
        values
    }

    /// The transitive fanout cone of `seed` (inclusive), as a sorted list.
    /// Fault simulators resimulate only this cone.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is stale; see [`fanout`](Netlist::fanout).
    pub fn fanout_cone(&self, seed: NodeId) -> Vec<NodeId> {
        self.fanout_cone_with(seed, &mut ConeScratch::new())
    }

    /// [`fanout_cone`](Netlist::fanout_cone) with caller-owned scratch
    /// state. Repeated cone queries (a fault simulator precomputing one
    /// cone per fault site) reuse the scratch's visited marks instead of
    /// zeroing a node-count array per call, so the cost per cone is
    /// proportional to the cone, not the netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is stale; see [`fanout`](Netlist::fanout).
    pub fn fanout_cone_with(&self, seed: NodeId, scratch: &mut ConeScratch) -> Vec<NodeId> {
        let (fanouts, _) = self.frozen();
        let epoch = scratch.begin(self.nodes.len());
        let mut cone = vec![seed];
        scratch.mark[seed.index()] = epoch;
        let mut head = 0;
        while head < cone.len() {
            let n = cone[head];
            head += 1;
            for &s in &fanouts[n.index()] {
                if scratch.mark[s.index()] != epoch {
                    scratch.mark[s.index()] = epoch;
                    cone.push(s);
                }
            }
        }
        cone.sort_unstable();
        cone
    }
}

/// Reusable visited-marks for [`Netlist::fanout_cone_with`]: an epoch
/// counter makes "clearing" the marks between queries free. One scratch
/// serves netlists of any size (it grows on demand) but is not shareable
/// across threads — give each worker its own.
#[derive(Debug, Default)]
pub struct ConeScratch {
    mark: Vec<u32>,
    epoch: u32,
}

impl ConeScratch {
    /// An empty scratch; storage is allocated by the first query.
    pub fn new() -> ConeScratch {
        ConeScratch::default()
    }

    /// Starts a query over `nodes` nodes and returns the fresh epoch.
    fn begin(&mut self, nodes: usize) -> u32 {
        if self.mark.len() < nodes {
            self.mark.resize(nodes, 0);
        }
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mux() -> Netlist {
        let mut n = Netlist::new("mux");
        let s = n.add_input("s").unwrap();
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let ns = n.add_gate("ns", GateKind::Not, vec![s]).unwrap();
        let t0 = n.add_gate("t0", GateKind::And, vec![a, ns]).unwrap();
        let t1 = n.add_gate("t1", GateKind::And, vec![b, s]).unwrap();
        let y = n.add_gate("y", GateKind::Or, vec![t0, t1]).unwrap();
        n.mark_output(y);
        n.freeze();
        n
    }

    #[test]
    fn counts_and_lookup() {
        let n = mux();
        assert_eq!(n.node_count(), 7);
        assert_eq!(n.gate_count(), 4);
        assert_eq!(n.inputs().len(), 3);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.find("t1"), Some(NodeId(5)));
        assert_eq!(n.find("nope"), None);
        assert_eq!(n.node_name(NodeId(5)), "t1");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut n = Netlist::new("t");
        n.add_input("a").unwrap();
        assert_eq!(
            n.add_input("a"),
            Err(NetlistError::DuplicateName("a".into()))
        );
        let a = n.find("a").unwrap();
        assert!(matches!(
            n.add_gate("a", GateKind::Not, vec![a]),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn arity_enforced() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a").unwrap();
        assert!(matches!(
            n.add_gate("g", GateKind::Nand, vec![a]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            n.add_gate("g", GateKind::Not, vec![a, a]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            n.add_gate("g", GateKind::Input, vec![]),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn mux_truth_table() {
        let n = mux();
        // Patterns (s,a,b): enumerate all 8 in bits 0..8.
        let mut s = 0u64;
        let mut a = 0u64;
        let mut b = 0u64;
        for p in 0..8u64 {
            if p & 1 != 0 {
                s |= 1 << p;
            }
            if p & 2 != 0 {
                a |= 1 << p;
            }
            if p & 4 != 0 {
                b |= 1 << p;
            }
        }
        let y = n.eval_words(&[s, a, b])[0];
        for p in 0..8u64 {
            let (sv, av, bv) = (p & 1 != 0, p & 2 != 0, p & 4 != 0);
            let expect = if sv { bv } else { av };
            assert_eq!(y >> p & 1 == 1, expect, "pattern {p}");
        }
    }

    #[test]
    fn levels_and_depth() {
        let n = mux();
        assert_eq!(n.level(n.find("s").unwrap()), 0);
        assert_eq!(n.level(n.find("ns").unwrap()), 1);
        assert_eq!(n.level(n.find("t0").unwrap()), 2);
        assert_eq!(n.level(n.find("y").unwrap()), 3);
        assert_eq!(n.depth(), 3);
    }

    #[test]
    fn fanouts() {
        let n = mux();
        let s = n.find("s").unwrap();
        let mut fo: Vec<&str> = n.fanout(s).iter().map(|&x| n.node_name(x)).collect();
        fo.sort();
        assert_eq!(fo, ["ns", "t1"]);
        assert!(n.fanout(n.find("y").unwrap()).is_empty());
    }

    #[test]
    fn fanout_cone_includes_seed_and_descendants() {
        let n = mux();
        let a = n.find("a").unwrap();
        let cone: Vec<&str> = n.fanout_cone(a).iter().map(|&x| n.node_name(x)).collect();
        assert_eq!(cone, ["a", "t0", "y"]);
    }

    #[test]
    #[should_panic(expected = "freeze")]
    fn stale_query_panics() {
        let mut n = mux();
        let a = n.find("a").unwrap();
        n.add_gate("extra", GateKind::Not, vec![a]).unwrap();
        let _ = n.depth();
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut n = mux();
        let y = n.find("y").unwrap();
        n.mark_output(y);
        assert_eq!(n.outputs().len(), 1);
    }
}
