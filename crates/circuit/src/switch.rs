//! Transistor-level (switch-level) netlists and CMOS expansion.
//!
//! [`expand`] lowers a gate-level [`Netlist`] into a [`SwitchNetlist`] by
//! instantiating the static-CMOS [`cells`](crate::cells) template of every
//! gate: each stage becomes an NMOS pull-down network between the stage
//! output and ground plus the dual PMOS pull-up network to VDD, with
//! explicit internal nodes between stacked transistors.
//!
//! The switch netlist is what the realistic-fault simulator (`dlp-sim`)
//! operates on: bridging faults connect two of its nodes, open faults break
//! a connection, and transistor stuck-opens remove a device.

use std::collections::HashMap;

use crate::cells::{self, PdnExpr, StageSignal};
use crate::{GateKind, Netlist, NetlistError, NodeId};

/// Identifier of a node in a [`SwitchNetlist`]. Node 0 is VDD and node 1 is
/// ground; every other node is a signal or internal stack node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchNodeId(pub(crate) u32);

impl SwitchNodeId {
    /// The power rail.
    pub const VDD: SwitchNodeId = SwitchNodeId(0);
    /// The ground rail.
    pub const GND: SwitchNodeId = SwitchNodeId(1);

    /// Dense index of this node.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an ID from a dense index. The index must come from the
    /// [`SwitchNetlist`] the ID will be used with; out-of-range IDs make
    /// accessor methods panic.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        SwitchNodeId(index as u32)
    }

    /// True for VDD or GND.
    #[inline]
    pub const fn is_rail(self) -> bool {
        self.0 < 2
    }
}

impl core::fmt::Display for SwitchNodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            SwitchNodeId::VDD => f.write_str("VDD"),
            SwitchNodeId::GND => f.write_str("GND"),
            SwitchNodeId(i) => write!(f, "sw{i}"),
        }
    }
}

/// Polarity of a MOS device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransKind {
    /// N-channel: conducts when its gate is high.
    Nmos,
    /// P-channel: conducts when its gate is low.
    Pmos,
}

/// A MOS transistor: a voltage-controlled switch between `a` and `b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transistor {
    /// Device polarity.
    pub kind: TransKind,
    /// The controlling node.
    pub gate: SwitchNodeId,
    /// One channel terminal (source/drain are symmetric at switch level).
    pub a: SwitchNodeId,
    /// The other channel terminal.
    pub b: SwitchNodeId,
    /// The gate-level node whose cell this device belongs to.
    pub owner: NodeId,
}

/// A transistor-level netlist produced by [`expand`].
#[derive(Debug, Clone)]
pub struct SwitchNetlist {
    node_names: Vec<String>,
    transistors: Vec<Transistor>,
    /// gate-level node index -> switch node of its output net.
    net_node: Vec<SwitchNodeId>,
    input_nodes: Vec<SwitchNodeId>,
    output_nodes: Vec<SwitchNodeId>,
    /// node index -> indices of transistors whose channel touches it.
    channel_adjacency: Vec<Vec<u32>>,
    /// node index -> indices of transistors it gates.
    gate_adjacency: Vec<Vec<u32>>,
}

impl SwitchNetlist {
    /// Number of nodes, rails included.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// All transistors.
    pub fn transistors(&self) -> &[Transistor] {
        &self.transistors
    }

    /// Debug name of a node.
    pub fn node_name(&self, id: SwitchNodeId) -> &str {
        &self.node_names[id.index()]
    }

    /// Looks up a node by name. Gate-level signals use their netlist
    /// names; internal stage nodes are named `<signal>#s<stage>`.
    pub fn node_by_name(&self, name: &str) -> Option<SwitchNodeId> {
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(SwitchNodeId::from_index)
    }

    /// The switch node carrying a gate-level signal.
    pub fn node_of_net(&self, net: NodeId) -> SwitchNodeId {
        self.net_node[net.index()]
    }

    /// Switch nodes of the primary inputs, in netlist input order.
    pub fn input_nodes(&self) -> &[SwitchNodeId] {
        &self.input_nodes
    }

    /// Switch nodes of the primary outputs, in netlist output order.
    pub fn output_nodes(&self) -> &[SwitchNodeId] {
        &self.output_nodes
    }

    /// Indices into [`transistors`](Self::transistors) of devices whose
    /// channel touches `node`.
    pub fn channel_neighbors(&self, node: SwitchNodeId) -> &[u32] {
        &self.channel_adjacency[node.index()]
    }

    /// Indices into [`transistors`](Self::transistors) of devices gated by
    /// `node`.
    pub fn gated_by(&self, node: SwitchNodeId) -> &[u32] {
        &self.gate_adjacency[node.index()]
    }
}

/// Lowers a gate-level netlist to transistors using the standard-cell
/// templates of [`cells`](crate::cells).
///
/// # Errors
///
/// Returns [`NetlistError::BadArity`] if a gate has no realisable cell
/// template (e.g. a 9-input NAND).
///
/// # Example
///
/// ```
/// use dlp_circuit::{generators, switch};
///
/// let c17 = generators::c17();
/// let sw = switch::expand(&c17)?;
/// // c17 is six NAND2 cells: 6 * 4 transistors.
/// assert_eq!(sw.transistors().len(), 24);
/// # Ok::<(), dlp_circuit::NetlistError>(())
/// ```
pub fn expand(netlist: &Netlist) -> Result<SwitchNetlist, NetlistError> {
    let mut node_names = vec!["VDD".to_string(), "GND".to_string()];
    let mut new_node = |name: String| -> SwitchNodeId {
        let id = SwitchNodeId(node_names.len() as u32);
        node_names.push(name);
        id
    };

    // One switch node per gate-level signal.
    let mut net_node = Vec::with_capacity(netlist.node_count());
    for id in netlist.node_ids() {
        net_node.push(new_node(netlist.node_name(id).to_string()));
    }

    let mut transistors = Vec::new();
    for id in netlist.node_ids() {
        let kind = netlist.kind(id);
        if kind == GateKind::Input {
            continue;
        }
        let fanin = netlist.fanin(id);
        let template = cells::template_for(kind, fanin.len())?;
        let stages = template.stages();
        // Output nodes per stage; the last stage drives the net.
        let mut stage_nodes = Vec::with_capacity(stages.len());
        for s in 0..stages.len() {
            if s + 1 == stages.len() {
                stage_nodes.push(net_node[id.index()]);
            } else {
                stage_nodes.push(new_node(format!("{}#s{s}", netlist.node_name(id))));
            }
        }
        let signal_node = |sig: StageSignal| -> SwitchNodeId {
            match sig {
                StageSignal::Pin(p) => net_node[fanin[p].index()],
                StageSignal::Stage(s) => stage_nodes[s],
            }
        };
        for (s, stage) in stages.iter().enumerate() {
            let out = stage_nodes[s];
            let mut ctx = ExpandCtx {
                owner: id,
                transistors: &mut transistors,
                new_node: &mut new_node,
                stage_label: format!("{}#s{s}", netlist.node_name(id)),
                counter: 0,
            };
            ctx.emit(
                &stage.pdn,
                TransKind::Nmos,
                out,
                SwitchNodeId::GND,
                &signal_node,
            );
            ctx.emit(
                &stage.pdn.dual(),
                TransKind::Pmos,
                SwitchNodeId::VDD,
                out,
                &signal_node,
            );
        }
    }

    let node_total = node_names.len();
    let mut channel_adjacency = vec![Vec::new(); node_total];
    let mut gate_adjacency = vec![Vec::new(); node_total];
    for (i, t) in transistors.iter().enumerate() {
        channel_adjacency[t.a.index()].push(i as u32);
        channel_adjacency[t.b.index()].push(i as u32);
        gate_adjacency[t.gate.index()].push(i as u32);
    }

    Ok(SwitchNetlist {
        node_names,
        transistors,
        input_nodes: netlist
            .inputs()
            .iter()
            .map(|&i| net_node[i.index()])
            .collect(),
        output_nodes: netlist
            .outputs()
            .iter()
            .map(|&o| net_node[o.index()])
            .collect(),
        net_node,
        channel_adjacency,
        gate_adjacency,
    })
}

struct ExpandCtx<'a> {
    owner: NodeId,
    transistors: &'a mut Vec<Transistor>,
    new_node: &'a mut dyn FnMut(String) -> SwitchNodeId,
    stage_label: String,
    counter: usize,
}

impl ExpandCtx<'_> {
    /// Emits the transistor network realising `expr` between `top` and
    /// `bottom`.
    fn emit(
        &mut self,
        expr: &PdnExpr,
        kind: TransKind,
        top: SwitchNodeId,
        bottom: SwitchNodeId,
        signal_node: &dyn Fn(StageSignal) -> SwitchNodeId,
    ) {
        match expr {
            PdnExpr::Leaf(sig) => {
                self.transistors.push(Transistor {
                    kind,
                    gate: signal_node(*sig),
                    a: top,
                    b: bottom,
                    owner: self.owner,
                });
            }
            PdnExpr::Parallel(subs) => {
                for sub in subs {
                    self.emit(sub, kind, top, bottom, signal_node);
                }
            }
            PdnExpr::Series(subs) => {
                let mut upper = top;
                for (i, sub) in subs.iter().enumerate() {
                    let lower = if i + 1 == subs.len() {
                        bottom
                    } else {
                        self.counter += 1;
                        (self.new_node)(format!("{}.{:?}{}", self.stage_label, kind, self.counter))
                    };
                    self.emit(sub, kind, upper, lower, signal_node);
                    upper = lower;
                }
            }
        }
    }
}

/// Reference switch-level evaluation of a *fault-free* netlist on a single
/// input pattern, used to cross-check the expansion against gate-level
/// logic. Returns the value of every gate-level signal.
///
/// This is a structural evaluator (it walks cells in topological order and
/// asks each stage whether its PDN conducts); the production simulator in
/// `dlp-sim` solves the transistor graph directly and handles faults.
///
/// # Panics
///
/// Panics if `pattern.len() != netlist.inputs().len()` or if the netlist has
/// a gate without a template.
pub fn reference_eval(netlist: &Netlist, pattern: &[bool]) -> HashMap<NodeId, bool> {
    assert_eq!(pattern.len(), netlist.inputs().len());
    let mut values: HashMap<NodeId, bool> = HashMap::new();
    for (i, &id) in netlist.inputs().iter().enumerate() {
        values.insert(id, pattern[i]);
    }
    for id in netlist.node_ids() {
        let kind = netlist.kind(id);
        if kind == GateKind::Input {
            continue;
        }
        let fanin = netlist.fanin(id);
        let template = match cells::template_for(kind, fanin.len()) {
            Ok(t) => t,
            Err(e) => panic!("netlist gate is not realisable as a cell: {e}"),
        };
        let pins: Vec<bool> = fanin.iter().map(|f| values[f]).collect();
        values.insert(id, template.eval(&pins));
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn c17_expansion_counts() {
        let c17 = generators::c17();
        let sw = expand(&c17).unwrap();
        assert_eq!(sw.transistors().len(), 24);
        // Nodes: 2 rails + 11 nets + one series node per NAND2 stack (6 NMOS
        // stacks of depth 2 -> 6 internal nodes).
        assert_eq!(sw.node_count(), 2 + 11 + 6);
        assert_eq!(sw.input_nodes().len(), 5);
        assert_eq!(sw.output_nodes().len(), 2);
    }

    #[test]
    fn every_stage_output_reaches_both_rails_structurally() {
        let nl = generators::ripple_adder(2);
        let sw = expand(&nl).unwrap();
        // Each non-rail, non-input node must touch at least one NMOS and
        // one PMOS channel (it is driven by a complementary stage) or be a
        // pure interconnect (input) node.
        for t in sw.transistors() {
            assert_ne!(t.a, t.b, "degenerate channel");
        }
        for &o in sw.output_nodes() {
            let devs = sw.channel_neighbors(o);
            assert!(
                devs.iter()
                    .any(|&i| sw.transistors()[i as usize].kind == TransKind::Nmos),
                "output lacks pull-down"
            );
            assert!(
                devs.iter()
                    .any(|&i| sw.transistors()[i as usize].kind == TransKind::Pmos),
                "output lacks pull-up"
            );
        }
    }

    #[test]
    fn rails_are_fixed_ids() {
        assert_eq!(SwitchNodeId::VDD.index(), 0);
        assert_eq!(SwitchNodeId::GND.index(), 1);
        assert!(SwitchNodeId::VDD.is_rail());
        assert!(!SwitchNodeId(5).is_rail());
    }

    #[test]
    fn reference_eval_matches_gate_level() {
        for nl in [
            generators::c17(),
            generators::ripple_adder(3),
            generators::c432_class(),
        ] {
            let n_in = nl.inputs().len();
            let mut seed = 0xDEAD_BEEFu64;
            for _ in 0..20 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let pattern: Vec<bool> = (0..n_in).map(|i| seed >> (i % 64) & 1 == 1).collect();
                let words: Vec<u64> = pattern.iter().map(|&b| if b { 1 } else { 0 }).collect();
                let gate_out = nl.eval_words(&words);
                let sw_values = reference_eval(&nl, &pattern);
                for (k, &o) in nl.outputs().iter().enumerate() {
                    assert_eq!(
                        sw_values[&o],
                        gate_out[k] & 1 == 1,
                        "{} output {k}",
                        nl.name()
                    );
                }
            }
        }
    }

    #[test]
    fn adjacency_is_consistent() {
        let sw = expand(&generators::c17()).unwrap();
        for (i, t) in sw.transistors().iter().enumerate() {
            assert!(sw.channel_neighbors(t.a).contains(&(i as u32)));
            assert!(sw.channel_neighbors(t.b).contains(&(i as u32)));
            assert!(sw.gated_by(t.gate).contains(&(i as u32)));
        }
    }

    #[test]
    fn pmos_and_nmos_balance_in_complementary_cells() {
        let sw = expand(&generators::c432_class()).unwrap();
        let n = sw
            .transistors()
            .iter()
            .filter(|t| t.kind == TransKind::Nmos)
            .count();
        let p = sw
            .transistors()
            .iter()
            .filter(|t| t.kind == TransKind::Pmos)
            .count();
        assert_eq!(n, p, "fully complementary CMOS has equal N and P counts");
    }
}
