//! Netlist transformations and structural statistics.
//!
//! Utilities a flow needs around the core netlist: arity decomposition
//! (technology mapping to a bounded cell library), dead-logic removal, and
//! the structural statistics reports quote.

use std::collections::HashMap;

use crate::{GateKind, Netlist, NetlistError, NodeId};

/// Structural statistics of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Gates per kind.
    pub gates_by_kind: Vec<(GateKind, usize)>,
    /// Total gate count.
    pub gates: usize,
    /// Primary input / output counts.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Logic depth.
    pub depth: u32,
    /// Maximum fanout of any signal.
    pub max_fanout: usize,
    /// Signals with fanout greater than one (stems).
    pub multi_fanout_stems: usize,
}

/// Computes [`NetlistStats`].
///
/// # Example
///
/// ```
/// use dlp_circuit::{generators, transform};
///
/// let s = transform::stats(&generators::c17());
/// assert_eq!(s.gates, 6);
/// assert_eq!(s.depth, 3);
/// assert_eq!(s.max_fanout, 2);
/// ```
pub fn stats(netlist: &Netlist) -> NetlistStats {
    let mut by_kind: HashMap<GateKind, usize> = HashMap::new();
    let mut max_fanout = 0;
    let mut stems = 0;
    for id in netlist.node_ids() {
        let kind = netlist.kind(id);
        if kind != GateKind::Input {
            *by_kind.entry(kind).or_default() += 1;
        }
        let fo = netlist.fanout(id).len();
        max_fanout = max_fanout.max(fo);
        if fo > 1 {
            stems += 1;
        }
    }
    let mut gates_by_kind: Vec<(GateKind, usize)> = by_kind.into_iter().collect();
    gates_by_kind.sort_by_key(|&(k, _)| k);
    NetlistStats {
        gates_by_kind,
        gates: netlist.gate_count(),
        inputs: netlist.inputs().len(),
        outputs: netlist.outputs().len(),
        depth: netlist.depth(),
        max_fanout,
        multi_fanout_stems: stems,
    }
}

/// Rewrites the netlist so no gate exceeds `max_arity` fanins, splitting
/// wide AND/NAND/OR/NOR/XOR/XNOR gates into balanced trees of the
/// non-inverting kind capped by one gate of the original kind. The result
/// is functionally equivalent.
///
/// # Errors
///
/// [`NetlistError::BadArity`] if `max_arity < 2`.
///
/// # Example
///
/// ```
/// use dlp_circuit::{transform, GateKind, Netlist};
///
/// # fn main() -> Result<(), dlp_circuit::NetlistError> {
/// let mut n = Netlist::new("wide");
/// let ins: Vec<_> = (0..6).map(|i| n.add_input(format!("i{i}")).unwrap()).collect();
/// let g = n.add_gate("g", GateKind::Nand, ins)?;
/// n.mark_output(g);
/// n.freeze();
/// let narrow = transform::decompose_to_max_arity(&n, 2)?;
/// assert!(narrow.node_ids().all(|id| narrow.fanin(id).len() <= 2));
/// # Ok(())
/// # }
/// ```
pub fn decompose_to_max_arity(
    netlist: &Netlist,
    max_arity: usize,
) -> Result<Netlist, NetlistError> {
    if max_arity < 2 {
        return Err(NetlistError::BadArity {
            gate: "<decompose>".into(),
            got: max_arity,
            expected: "at least 2",
        });
    }
    let mut out = Netlist::new(format!("{}_a{max_arity}", netlist.name()));
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut fresh = 0usize;

    for id in netlist.node_ids() {
        let kind = netlist.kind(id);
        if kind == GateKind::Input {
            let new = out.add_input(netlist.node_name(id))?;
            map.insert(id, new);
            continue;
        }
        let fanin: Vec<NodeId> = netlist.fanin(id).iter().map(|f| map[f]).collect();
        let new = if fanin.len() <= max_arity {
            out.add_gate(netlist.node_name(id), kind, fanin)?
        } else {
            // Reduce with the associative non-inverting core, then apply
            // the original kind at the root.
            let core = match kind {
                GateKind::And | GateKind::Nand => GateKind::And,
                GateKind::Or | GateKind::Nor => GateKind::Or,
                GateKind::Xor | GateKind::Xnor => GateKind::Xor,
                _ => unreachable!("1-input kinds never exceed max_arity"),
            };
            let mut layer = fanin;
            while layer.len() > max_arity {
                let mut next = Vec::with_capacity(layer.len() / max_arity + 1);
                for chunk in layer.chunks(max_arity) {
                    if chunk.len() == 1 {
                        next.push(chunk[0]);
                    } else {
                        fresh += 1;
                        next.push(out.add_gate(
                            format!("{}~d{fresh}", netlist.node_name(id)),
                            core,
                            chunk.to_vec(),
                        )?);
                    }
                }
                layer = next;
            }
            out.add_gate(netlist.node_name(id), kind, layer)?
        };
        map.insert(id, new);
    }
    for &o in netlist.outputs() {
        out.mark_output(map[&o]);
    }
    out.freeze();
    out.validate()?;
    Ok(out)
}

/// Removes gates from which no primary output is reachable. Inputs are
/// always kept (the interface is preserved).
///
/// # Example
///
/// ```
/// use dlp_circuit::{transform, GateKind, Netlist};
///
/// # fn main() -> Result<(), dlp_circuit::NetlistError> {
/// let mut n = Netlist::new("dead");
/// let a = n.add_input("a")?;
/// let live = n.add_gate("live", GateKind::Not, vec![a])?;
/// let _dead = n.add_gate("dead", GateKind::Not, vec![a])?;
/// n.mark_output(live);
/// n.freeze();
/// let pruned = transform::strip_dead_logic(&n)?;
/// assert_eq!(pruned.gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn strip_dead_logic(netlist: &Netlist) -> Result<Netlist, NetlistError> {
    // Mark live cone (reverse reachability from outputs).
    let mut live = vec![false; netlist.node_count()];
    let mut stack: Vec<NodeId> = netlist.outputs().to_vec();
    for &o in netlist.outputs() {
        live[o.index()] = true;
    }
    while let Some(n) = stack.pop() {
        for &f in netlist.fanin(n) {
            if !live[f.index()] {
                live[f.index()] = true;
                stack.push(f);
            }
        }
    }
    let mut out = Netlist::new(netlist.name());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for id in netlist.node_ids() {
        if netlist.kind(id) == GateKind::Input {
            map.insert(id, out.add_input(netlist.node_name(id))?);
        } else if live[id.index()] {
            let fanin = netlist.fanin(id).iter().map(|f| map[f]).collect();
            map.insert(
                id,
                out.add_gate(netlist.node_name(id), netlist.kind(id), fanin)?,
            );
        }
    }
    for &o in netlist.outputs() {
        out.mark_output(map[&o]);
    }
    out.freeze();
    out.validate()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn equivalent(a: &Netlist, b: &Netlist, trials: usize) -> bool {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let mut seed = 0x9E37_79B9u64;
        for _ in 0..trials {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let words: Vec<u64> = (0..a.inputs().len())
                .map(|i| seed.rotate_left(i as u32 * 7))
                .collect();
            if a.eval_words(&words) != b.eval_words(&words) {
                return false;
            }
        }
        true
    }

    #[test]
    fn stats_of_c432_class() {
        let s = stats(&generators::c432_class());
        assert_eq!(s.inputs, 36);
        assert_eq!(s.outputs, 7);
        assert!(s.gates >= 150);
        assert!(s.max_fanout >= 9, "grants fan widely");
        assert!(s.multi_fanout_stems > 20);
        let total: usize = s.gates_by_kind.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, s.gates);
    }

    #[test]
    fn decomposition_preserves_function() {
        for max_arity in [2usize, 3] {
            for nl in [generators::decoder(4), generators::alu_slice()] {
                let narrow = decompose_to_max_arity(&nl, max_arity).unwrap();
                assert!(
                    narrow
                        .node_ids()
                        .all(|id| narrow.fanin(id).len() <= max_arity),
                    "arity bound violated"
                );
                assert!(equivalent(&nl, &narrow, 32), "function changed");
            }
        }
    }

    #[test]
    fn decomposition_is_identity_when_narrow_enough() {
        let nl = generators::c17(); // all NAND2
        let same = decompose_to_max_arity(&nl, 2).unwrap();
        assert_eq!(same.gate_count(), nl.gate_count());
        assert!(equivalent(&nl, &same, 32));
    }

    #[test]
    fn decompose_rejects_unit_arity() {
        assert!(decompose_to_max_arity(&generators::c17(), 1).is_err());
    }

    #[test]
    fn strip_dead_logic_keeps_function_and_drops_gates() {
        let mut n = Netlist::new("d");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let live = n.add_gate("live", GateKind::Xor, vec![a, b]).unwrap();
        let d1 = n.add_gate("d1", GateKind::And, vec![a, b]).unwrap();
        let _d2 = n.add_gate("d2", GateKind::Not, vec![d1]).unwrap();
        n.mark_output(live);
        n.freeze();
        let pruned = strip_dead_logic(&n).unwrap();
        assert_eq!(pruned.gate_count(), 1);
        assert!(equivalent(&n, &pruned, 16));
    }

    #[test]
    fn strip_is_noop_on_fully_live_netlists() {
        let nl = generators::ripple_adder(4);
        let pruned = strip_dead_logic(&nl).unwrap();
        assert_eq!(pruned.gate_count(), nl.gate_count());
    }
}
