//! Property tests for the seeded random-netlist generator.
//!
//! Two historical bugs motivate these: a shift-precedence typo that drew
//! the gate arity from the same low bits as the gate kind (correlating
//! and biasing both), and a window-exhausted fallback that silently
//! emitted gates with fewer fanins than the drawn arity. The properties
//! here — declared arity with distinct fanins on every gate, and a
//! roughly uniform 2/3/4 arity histogram independent of kind — fail if
//! either regresses.

use dlp_circuit::generators::{random_logic, RandomLogicConfig};
use dlp_circuit::GateKind;

/// The seed sweep: enough shapes and seeds that the histogram is tight.
fn sweep() -> Vec<RandomLogicConfig> {
    (0..24u64)
        .map(|seed| RandomLogicConfig {
            inputs: 8 + (seed as usize % 5),
            gates: 150 + (seed as usize * 11) % 120,
            outputs: 4,
            seed: 1 + seed * 17,
        })
        .collect()
}

#[test]
fn every_gate_has_its_declared_arity_with_distinct_fanins() {
    for cfg in sweep() {
        let nl = random_logic(&cfg).expect("sweep shapes have >= 4 inputs");
        for id in nl.node_ids() {
            let fanin = nl.fanin(id);
            if fanin.is_empty() {
                continue; // primary input
            }
            match nl.kind(id) {
                GateKind::Not | GateKind::Buf => assert_eq!(
                    fanin.len(),
                    1,
                    "inverter arity on {} of seed {}",
                    nl.node_name(id),
                    cfg.seed
                ),
                _ => assert!(
                    (2..=4).contains(&fanin.len()),
                    "gate {} of seed {} has arity {}",
                    nl.node_name(id),
                    cfg.seed,
                    fanin.len()
                ),
            }
            for (i, a) in fanin.iter().enumerate() {
                for b in &fanin[i + 1..] {
                    assert_ne!(a, b, "duplicate fanin on {}", nl.node_name(id));
                }
            }
        }
    }
}

#[test]
fn arity_histogram_is_roughly_uniform_and_kind_independent() {
    // Counts indexed by [kind bucket][arity - 2]; the kind buckets are
    // inverting (NAND/NOR/NOT-class) vs non-inverting, which the old
    // correlated draw skewed against each other.
    let mut by_arity = [0usize; 3];
    let mut inverting = [0usize; 3];
    let mut total_wide = 0usize;
    for cfg in sweep() {
        let nl = random_logic(&cfg).expect("sweep shapes have >= 4 inputs");
        for id in nl.node_ids() {
            let fanin = nl.fanin(id);
            if fanin.len() < 2 {
                continue;
            }
            let a = fanin.len() - 2;
            by_arity[a] += 1;
            total_wide += 1;
            if matches!(nl.kind(id), GateKind::Nand | GateKind::Nor | GateKind::Xnor) {
                inverting[a] += 1;
            }
        }
    }
    // Roughly uniform: each arity within 20% of the ideal third. The old
    // `r >> 2` draw put arity 2 at ~50% and arity 4 at ~25%.
    let ideal = total_wide as f64 / 3.0;
    for (i, &n) in by_arity.iter().enumerate() {
        let ratio = n as f64 / ideal;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "arity {} count {} vs ideal {:.0} (histogram {:?})",
            i + 2,
            n,
            ideal,
            by_arity
        );
    }
    // Kind-independence: the inverting-kind share of each arity bucket
    // matches the overall inverting share to within 10 points. With the
    // correlated draw, kind bits 0..2 leaked into the arity, so the
    // shares diverged structurally, not statistically.
    let overall = inverting.iter().sum::<usize>() as f64 / total_wide as f64;
    for (i, (&inv, &all)) in inverting.iter().zip(by_arity.iter()).enumerate() {
        let share = inv as f64 / all as f64;
        assert!(
            (share - overall).abs() < 0.10,
            "arity {} inverting share {:.3} vs overall {:.3}",
            i + 2,
            share,
            overall
        );
    }
}
