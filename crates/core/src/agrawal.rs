//! The Agrawal–Seth–Agrawal defect-level model (eq. 2 of the paper).
//!
//! Agrawal et al. postulated a Poisson-distributed number of faults per
//! faulty chip with mean `n₀`, which yields
//!
//! ```text
//! DL = (1−T)·(1−Y)·e^−(n₀−1)T / (Y + (1−T)·(1−Y)·e^−(n₀−1)T)
//! ```
//!
//! The paper uses this as the empirical-curve-fitting baseline: with a
//! well-chosen `n₀` it matches measured fallout, but `n₀` has to be fitted
//! *a posteriori* and the faults remain abstract. See [`crate::fit`] for
//! fitting `n₀` to data.

use crate::error::{check_open_unit, check_positive, check_unit};
use crate::ModelError;

/// The Agrawal model with average fault multiplicity `n0` on faulty chips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgrawalModel {
    y: f64,
    n0: f64,
}

impl AgrawalModel {
    /// Creates the model for yield `y` and mean faults-per-faulty-chip
    /// `n0 ≥ 1`.
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] unless `y ∈ (0, 1)` and `n0 ≥ 1`.
    pub fn new(y: f64, n0: f64) -> Result<Self, ModelError> {
        let y = check_open_unit("yield", y)?;
        let n0 = check_positive("fault multiplicity", n0)?;
        if n0 < 1.0 {
            return Err(ModelError::OutOfDomain {
                parameter: "fault multiplicity",
                value: n0,
                range: "[1, ∞)",
            });
        }
        Ok(AgrawalModel { y, n0 })
    }

    /// The yield parameter.
    pub fn yield_value(&self) -> f64 {
        self.y
    }

    /// The fitted mean number of faults on a faulty chip.
    pub fn multiplicity(&self) -> f64 {
        self.n0
    }

    /// Defect level at stuck-at coverage `t` (eq. 2).
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] unless `t ∈ [0, 1]`.
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_core::agrawal::AgrawalModel;
    ///
    /// let m = AgrawalModel::new(0.75, 3.0)?;
    /// // Multiple faults make low-coverage tests more effective than
    /// // Williams–Brown predicts.
    /// let wb = dlp_core::williams_brown::defect_level(0.75, 0.5)?;
    /// assert!(m.defect_level(0.5)? < wb);
    /// # Ok::<(), dlp_core::ModelError>(())
    /// ```
    pub fn defect_level(&self, t: f64) -> Result<f64, ModelError> {
        let t = check_unit("fault coverage", t)?;
        let esc = (1.0 - t) * (1.0 - self.y) * (-(self.n0 - 1.0) * t).exp();
        Ok(esc / (self.y + esc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_simple_ratio_at_zero_coverage() {
        // T = 0: DL = (1-Y)/(Y + 1-Y) = 1-Y.
        let m = AgrawalModel::new(0.6, 5.0).unwrap();
        assert!((m.defect_level(0.0).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn full_coverage_ships_none() {
        let m = AgrawalModel::new(0.6, 5.0).unwrap();
        assert_eq!(m.defect_level(1.0).unwrap(), 0.0);
    }

    #[test]
    fn higher_multiplicity_lowers_mid_coverage_dl() {
        let lo = AgrawalModel::new(0.75, 1.0)
            .unwrap()
            .defect_level(0.5)
            .unwrap();
        let hi = AgrawalModel::new(0.75, 6.0)
            .unwrap()
            .defect_level(0.5)
            .unwrap();
        assert!(hi < lo);
    }

    #[test]
    fn n0_of_one_is_close_to_williams_brown_at_high_yield() {
        // For Y -> 1 and n0 = 1, both models approach (1-T)(1-Y).
        let y = 0.98;
        let m = AgrawalModel::new(y, 1.0).unwrap();
        for &t in &[0.2, 0.5, 0.9] {
            let a = m.defect_level(t).unwrap();
            let wb = crate::williams_brown::defect_level(y, t).unwrap();
            assert!((a - wb).abs() < 2e-4, "t={t} a={a} wb={wb}");
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(AgrawalModel::new(0.75, 0.5).is_err());
        assert!(AgrawalModel::new(1.0, 2.0).is_err());
        assert!(AgrawalModel::new(0.75, f64::NAN).is_err());
    }

    #[test]
    fn dl_in_unit_interval() {
        let mut rng = crate::rng::Xorshift64Star::new(21);
        for _ in 0..200 {
            let y = 0.05 + rng.next_f64() * 0.9;
            let n0 = 1.0 + rng.next_f64() * 19.0;
            let t = rng.next_f64();
            let m = AgrawalModel::new(y, n0).unwrap();
            let dl = m.defect_level(t).unwrap();
            assert!((0.0..=1.0).contains(&dl), "y={y} n0={n0} t={t}");
        }
    }

    #[test]
    fn dl_monotone_decreasing_in_t() {
        let mut rng = crate::rng::Xorshift64Star::new(22);
        for _ in 0..100 {
            let y = 0.05 + rng.next_f64() * 0.9;
            let n0 = 1.0 + rng.next_f64() * 19.0;
            let m = AgrawalModel::new(y, n0).unwrap();
            let mut prev = f64::INFINITY;
            for i in 0..=50 {
                let dl = m.defect_level(i as f64 / 50.0).unwrap();
                assert!(dl <= prev + 1e-12, "y={y} n0={n0} i={i}");
                prev = dl;
            }
        }
    }
}
