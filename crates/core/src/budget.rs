//! Run budgets and cooperative cancellation.
//!
//! Long stages — PPSFP blocks, Monte-Carlo shards, n-detect targets —
//! check a [`RunBudget`] at their chunk boundaries. A budget can carry a
//! wall-clock deadline, a maximum *estimated* memory footprint, an
//! explicit [`CancelToken`], and (for deterministic chaos testing) a
//! check-count fuse. When a check trips, the stage stops at the next
//! chunk boundary and surfaces a typed [`BudgetExceeded`] carrying its
//! partial progress — together with a checkpoint (see [`crate::ckpt`])
//! from which the run resumes bit-identically.
//!
//! The checks are cooperative: nothing is preempted, so a budget can
//! only ever be exceeded *at* a boundary, never mid-chunk. This is what
//! makes the interrupted state a clean prefix that a checkpoint can
//! capture exactly.
//!
//! Environment knobs (read by [`RunBudget::from_env`], used by the bench
//! binaries): `DLP_BUDGET_MS` (wall-clock deadline in milliseconds),
//! `DLP_BUDGET_MB` (maximum estimated memory in MiB), and
//! `DLP_CANCEL_AFTER` (trip after that many cooperative checks — the
//! deterministic kill switch the chaos harness uses).

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable: wall-clock deadline in milliseconds.
pub const BUDGET_MS_ENV: &str = "DLP_BUDGET_MS";
/// Environment variable: maximum estimated memory in MiB.
pub const BUDGET_MB_ENV: &str = "DLP_BUDGET_MB";
/// Environment variable: trip after this many cooperative checks.
pub const CANCEL_AFTER_ENV: &str = "DLP_CANCEL_AFTER";

/// A shareable explicit-cancellation flag.
///
/// Clones share the flag: cancel from any thread (a signal handler, a
/// timeout watchdog, a serve-layer request drop) and every budget
/// holding the token trips at its next cooperative check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Why a [`RunBudget`] check tripped.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetReason {
    /// The [`CancelToken`] was cancelled, or the check-count fuse ran out.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured deadline in milliseconds.
        limit_ms: u64,
        /// Wall-clock milliseconds elapsed when the check tripped.
        elapsed_ms: u64,
    },
    /// A stage's up-front memory estimate exceeds the budget.
    Memory {
        /// The stage's estimated footprint in bytes.
        estimated_bytes: u64,
        /// The configured limit in bytes.
        limit_bytes: u64,
    },
}

impl fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetReason::Cancelled => f.write_str("cancelled"),
            BudgetReason::Deadline {
                limit_ms,
                elapsed_ms,
            } => write!(f, "deadline {limit_ms} ms passed ({elapsed_ms} ms elapsed)"),
            BudgetReason::Memory {
                estimated_bytes,
                limit_bytes,
            } => write!(
                f,
                "estimated footprint {estimated_bytes} B exceeds the {limit_bytes} B budget"
            ),
        }
    }
}

/// A budget check tripped: the typed error every interrupted stage
/// surfaces (wrapped in its own error enum, e.g.
/// `SimError::Interrupted`), carrying the partial progress made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// What tripped.
    pub reason: BudgetReason,
    /// Work units completed before the trip (the stage defines the
    /// unit: PPSFP blocks, Monte-Carlo shards, n-detect targets, or raw
    /// chunks at the [`crate::par`] layer).
    pub completed: u64,
    /// Total work units the run would have performed.
    pub total: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run budget exceeded after {}/{} units: {}",
            self.completed, self.total, self.reason
        )
    }
}

impl Error for BudgetExceeded {}

/// An unusable budget environment setting (`DLP_BUDGET_MS=soon`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetConfigError {
    /// The offending environment variable.
    pub var: &'static str,
    /// The rejected setting, verbatim.
    pub value: String,
}

impl fmt::Display for BudgetConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}=\"{}\" is not a positive integer",
            self.var, self.value
        )
    }
}

impl Error for BudgetConfigError {}

/// A cooperative run budget: deadline, memory ceiling, cancellation.
///
/// Cheap to clone (the cancellation state is shared); the default is
/// unlimited, so `&RunBudget::default()` is the "no budget" argument.
///
/// # Example
///
/// ```
/// use dlp_core::budget::{BudgetReason, CancelToken, RunBudget};
///
/// let token = CancelToken::new();
/// let budget = RunBudget::unlimited().with_cancel(&token);
/// assert!(budget.check().is_ok());
/// token.cancel();
/// assert_eq!(budget.check(), Err(BudgetReason::Cancelled));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    deadline: Option<(Instant, u64)>,
    limit_bytes: Option<u64>,
    cancel: Option<CancelToken>,
    fuse: Option<Arc<AtomicU64>>,
}

impl RunBudget {
    /// A budget that never trips.
    pub fn unlimited() -> RunBudget {
        RunBudget::default()
    }

    /// Adds a wall-clock deadline, measured from now.
    #[must_use]
    pub fn with_deadline(mut self, limit: Duration) -> RunBudget {
        let limit_ms = u64::try_from(limit.as_millis()).unwrap_or(u64::MAX);
        self.deadline = Some((Instant::now() + limit, limit_ms));
        self
    }

    /// Adds a maximum *estimated* memory footprint in bytes. This is a
    /// cooperative estimate checked by [`RunBudget::check_memory`]
    /// before a stage's dominant allocation — not an RSS probe.
    #[must_use]
    pub fn with_memory_limit(mut self, bytes: u64) -> RunBudget {
        self.limit_bytes = Some(bytes);
        self
    }

    /// Attaches an explicit cancellation token (shared, not copied).
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> RunBudget {
        self.cancel = Some(token.clone());
        self
    }

    /// Trips after exactly `n` successful [`RunBudget::check`] calls —
    /// the deterministic kill switch used by the chaos harness to stop
    /// a run at a reproducible chunk boundary.
    #[must_use]
    pub fn cancel_after_checks(mut self, n: u64) -> RunBudget {
        self.fuse = Some(Arc::new(AtomicU64::new(n)));
        self
    }

    /// Whether no constraint is configured (checks can never trip).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.limit_bytes.is_none()
            && self.cancel.is_none()
            && self.fuse.is_none()
    }

    /// One cooperative check, called at chunk boundaries.
    ///
    /// # Errors
    ///
    /// The [`BudgetReason`] that tripped: explicit cancellation and the
    /// check-count fuse are inspected first (both are exact), then the
    /// wall-clock deadline.
    pub fn check(&self) -> Result<(), BudgetReason> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(BudgetReason::Cancelled);
            }
        }
        if let Some(fuse) = &self.fuse {
            // Saturating decrement: once the fuse hits zero every later
            // check trips, so exactly `n` checks ever succeed.
            let exhausted = fuse
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| c.checked_sub(1))
                .is_err();
            if exhausted {
                return Err(BudgetReason::Cancelled);
            }
        }
        if let Some((deadline, limit_ms)) = self.deadline {
            let now = Instant::now();
            if now > deadline {
                let over = now.duration_since(deadline).as_millis();
                let elapsed_ms = limit_ms.saturating_add(u64::try_from(over).unwrap_or(u64::MAX));
                return Err(BudgetReason::Deadline {
                    limit_ms,
                    elapsed_ms,
                });
            }
        }
        Ok(())
    }

    /// Checks a stage's up-front memory estimate against the limit.
    ///
    /// # Errors
    ///
    /// [`BudgetReason::Memory`] if `estimated_bytes` exceeds the
    /// configured limit. Always `Ok` without a limit.
    pub fn check_memory(&self, estimated_bytes: u64) -> Result<(), BudgetReason> {
        match self.limit_bytes {
            Some(limit_bytes) if estimated_bytes > limit_bytes => Err(BudgetReason::Memory {
                estimated_bytes,
                limit_bytes,
            }),
            _ => Ok(()),
        }
    }

    /// Builds a budget from the `DLP_BUDGET_MS` / `DLP_BUDGET_MB` /
    /// `DLP_CANCEL_AFTER` environment variables (unset or empty = no
    /// constraint).
    ///
    /// # Errors
    ///
    /// [`BudgetConfigError`] naming the variable if a set value is not
    /// a positive integer.
    pub fn from_env() -> Result<RunBudget, BudgetConfigError> {
        let get = |var: &'static str| std::env::var(var).ok();
        RunBudget::from_settings(
            get(BUDGET_MS_ENV).as_deref(),
            get(BUDGET_MB_ENV).as_deref(),
            get(CANCEL_AFTER_ENV).as_deref(),
        )
    }

    /// Parses explicit `DLP_BUDGET_MS` / `DLP_BUDGET_MB` /
    /// `DLP_CANCEL_AFTER`-style settings (`None` or `""` = unset).
    ///
    /// # Errors
    ///
    /// [`BudgetConfigError`] for a value that is not a positive integer.
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_core::budget::RunBudget;
    ///
    /// let b = RunBudget::from_settings(Some("5000"), None, None)?;
    /// assert!(!b.is_unlimited());
    /// assert!(RunBudget::from_settings(None, None, None)?.is_unlimited());
    /// assert!(RunBudget::from_settings(Some("soon"), None, None).is_err());
    /// # Ok::<(), dlp_core::budget::BudgetConfigError>(())
    /// ```
    pub fn from_settings(
        ms: Option<&str>,
        mb: Option<&str>,
        cancel_after: Option<&str>,
    ) -> Result<RunBudget, BudgetConfigError> {
        let parse = |var: &'static str, setting: Option<&str>| -> Result<Option<u64>, BudgetConfigError> {
            match setting.map(str::trim) {
                None | Some("") => Ok(None),
                Some(s) => s
                    .parse::<u64>()
                    .ok()
                    .filter(|&v| v > 0)
                    .map(Some)
                    .ok_or_else(|| BudgetConfigError {
                        var,
                        value: s.to_string(),
                    }),
            }
        };
        let mut budget = RunBudget::unlimited();
        if let Some(ms) = parse(BUDGET_MS_ENV, ms)? {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        if let Some(mb) = parse(BUDGET_MB_ENV, mb)? {
            budget = budget.with_memory_limit(mb.saturating_mul(1024 * 1024));
        }
        if let Some(n) = parse(CANCEL_AFTER_ENV, cancel_after)? {
            budget = budget.cancel_after_checks(n);
        }
        Ok(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = RunBudget::unlimited();
        assert!(b.is_unlimited());
        for _ in 0..1000 {
            assert!(b.check().is_ok());
        }
        assert!(b.check_memory(u64::MAX).is_ok());
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let b = RunBudget::unlimited().with_cancel(&token);
        let clone = b.clone();
        assert!(clone.check().is_ok());
        token.cancel();
        assert_eq!(b.check(), Err(BudgetReason::Cancelled));
        assert_eq!(clone.check(), Err(BudgetReason::Cancelled));
        assert!(token.is_cancelled());
    }

    #[test]
    fn fuse_allows_exactly_n_checks() {
        let b = RunBudget::unlimited().cancel_after_checks(3);
        assert!(!b.is_unlimited());
        for _ in 0..3 {
            assert!(b.check().is_ok());
        }
        // Every check after the fuse runs out trips.
        for _ in 0..5 {
            assert_eq!(b.check(), Err(BudgetReason::Cancelled));
        }
    }

    #[test]
    fn fuse_is_shared_across_clones() {
        let b = RunBudget::unlimited().cancel_after_checks(2);
        let clone = b.clone();
        assert!(b.check().is_ok());
        assert!(clone.check().is_ok());
        assert!(b.check().is_err());
    }

    #[test]
    fn deadline_trips_after_expiry() {
        let b = RunBudget::unlimited().with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        match b.check() {
            Err(BudgetReason::Deadline {
                limit_ms,
                elapsed_ms,
            }) => {
                assert_eq!(limit_ms, 0);
                assert!(elapsed_ms >= 1);
            }
            other => panic!("expected a deadline trip, got {other:?}"),
        }
        // A generous deadline does not trip.
        let b = RunBudget::unlimited().with_deadline(Duration::from_secs(3600));
        assert!(b.check().is_ok());
    }

    #[test]
    fn memory_limit_is_an_upfront_estimate_check() {
        let b = RunBudget::unlimited().with_memory_limit(1024);
        assert!(b.check_memory(1024).is_ok());
        assert_eq!(
            b.check_memory(1025),
            Err(BudgetReason::Memory {
                estimated_bytes: 1025,
                limit_bytes: 1024
            })
        );
        // The per-chunk check ignores memory — it is an up-front gate.
        assert!(b.check().is_ok());
    }

    #[test]
    fn settings_parse_and_reject_garbage() {
        assert!(RunBudget::from_settings(None, None, None)
            .map(|b| b.is_unlimited())
            .unwrap());
        assert!(RunBudget::from_settings(Some(""), Some(" "), None)
            .map(|b| b.is_unlimited())
            .unwrap());
        let b = RunBudget::from_settings(Some("60000"), Some("64"), Some("5")).unwrap();
        assert!(!b.is_unlimited());
        assert!(b.check_memory(64 * 1024 * 1024).is_ok());
        assert!(b.check_memory(64 * 1024 * 1024 + 1).is_err());
        for (ms, mb, after, var) in [
            (Some("soon"), None, None, BUDGET_MS_ENV),
            (Some("0"), None, None, BUDGET_MS_ENV),
            (None, Some("-3"), None, BUDGET_MB_ENV),
            (None, None, Some("1.5"), CANCEL_AFTER_ENV),
        ] {
            let err = RunBudget::from_settings(ms, mb, after).unwrap_err();
            assert_eq!(err.var, var);
            assert!(err.to_string().contains(var), "{err}");
        }
    }

    #[test]
    fn display_carries_progress_and_reason() {
        let e = BudgetExceeded {
            reason: BudgetReason::Cancelled,
            completed: 3,
            total: 10,
        };
        assert_eq!(
            e.to_string(),
            "run budget exceeded after 3/10 units: cancelled"
        );
        let e = BudgetExceeded {
            reason: BudgetReason::Memory {
                estimated_bytes: 2048,
                limit_bytes: 1024,
            },
            completed: 0,
            total: 7,
        };
        assert!(e.to_string().contains("2048 B"), "{e}");
    }
}
