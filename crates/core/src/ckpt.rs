//! Versioned, checksummed checkpoint artifacts and atomic file writes.
//!
//! Every long stage (PPSFP simulation, n-detect schedule construction,
//! Monte-Carlo fallout) snapshots its state into a one-line *envelope*:
//!
//! ```text
//! {"ckpt_version":1,"kind":"sim.ppsfp","key":"<16 hex>","checksum":"<16 hex>","payload":{...}}
//! ```
//!
//! - `ckpt_version` — envelope format version; readers reject anything
//!   newer than [`CKPT_VERSION`] with a typed error instead of guessing.
//! - `kind` — which stage wrote it, so a Monte-Carlo checkpoint can
//!   never be resumed into a PPSFP run.
//! - `key` — an FNV-1a digest of the stage's *inputs* (netlist, faults,
//!   vectors, config). Resuming against different inputs is a
//!   [`CkptError::KeyMismatch`], not silent wrong data.
//! - `checksum` — FNV-1a over the canonical rendering of `payload`;
//!   detects truncation and bit flips.
//!
//! The rendering is canonical (no whitespace, [`Json::Object`] members
//! in source order, numbers via the same shortest-round-trip formatter
//! the reports use), so checksums are stable across write/parse cycles.
//!
//! [`atomic_write`] is the shared write-temp-then-rename helper used by
//! every artifact writer in the workspace (checkpoints, `RunReport`,
//! `BenchReport`, `TRACE_*.json`, perf baselines): a crash mid-write
//! leaves either the old file or nothing, never a torn artifact.

use std::error::Error;
use std::fmt;
use std::io::Write;

use crate::obs::json::{json_number, json_string};
use crate::obs::{Json, JsonError};

/// The checkpoint envelope format version this build reads and writes.
pub const CKPT_VERSION: u64 = 1;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string — the workspace's dependency-free
/// integrity hash (not cryptographic; it detects corruption, not
/// tampering by an adversary with write access).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a hasher for building checkpoint *keys* out of a
/// stage's inputs. Each write is length-prefixed where ambiguity is
/// possible, so `["ab","c"]` and `["a","bc"]` hash differently.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    state: u64,
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

impl KeyHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> KeyHasher {
        KeyHasher { state: FNV_OFFSET }
    }

    fn mix(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes in a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.mix(&v.to_le_bytes());
    }

    /// Mixes in a `usize` (as `u64`).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Mixes in a `bool`.
    pub fn write_bool(&mut self, v: bool) {
        self.mix(&[u8::from(v)]);
    }

    /// Mixes in an `f64` by bit pattern (so `-0.0` and `0.0` differ and
    /// NaN payloads are preserved — keys must be exact, not numeric).
    pub fn write_f64(&mut self, v: f64) {
        self.mix(&v.to_bits().to_le_bytes());
    }

    /// Mixes in a byte string, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.mix(bytes);
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Renders a [`Json`] value canonically: compact (no whitespace),
/// object members in source order, numbers through the same
/// shortest-round-trip formatter the reports use. Checksums are
/// computed over this rendering, so it must stay byte-stable.
pub fn render(value: &Json) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(v) => out.push_str(&json_number(*v)),
        Json::String(s) => out.push_str(&json_string(s)),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Object(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(k));
                out.push(':');
                render_into(v, out);
            }
            out.push('}');
        }
    }
}

/// Writes `contents` to `path` atomically: write to a unique temp file
/// beside the target, flush to disk, then rename over the target. A
/// crash at any point leaves either the previous file or no file —
/// never a torn one. The temp name carries both the pid and a process-
/// wide counter: two *threads* writing the same target concurrently
/// (e.g. racing misses sealing a shared sibling artifact) each get
/// their own temp file, so one writer's rename can never strand or
/// truncate the other's.
///
/// # Errors
///
/// Any I/O error from create/write/sync/rename; the temp file is
/// removed on failure.
pub fn atomic_write(path: &str, contents: &str) -> std::io::Result<()> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = format!("{path}.tmp{}.{seq}", std::process::id());
    let write_result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write_result.is_err() {
        // Best-effort cleanup; the original error is the one that matters.
        let _ = std::fs::remove_file(&tmp);
    }
    write_result
}

/// A checkpoint or artifact that cannot be trusted. Every variant is a
/// typed, recoverable condition — corruption must never surface as a
/// panic or, worse, as silently wrong data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CkptError {
    /// The file could not be read or written.
    Io {
        /// The offending path.
        path: String,
        /// The I/O error, stringified (std's error is not `Clone`).
        error: String,
    },
    /// The bytes are not valid JSON (truncation, bit flips in
    /// structure, non-UTF-8 garbage).
    Json(JsonError),
    /// The document parses but is not a checkpoint envelope.
    Malformed {
        /// Which part is missing or has the wrong shape.
        what: &'static str,
    },
    /// The envelope was written by a newer format than this build reads.
    VersionMismatch {
        /// The version found in the envelope.
        found: u64,
        /// The newest version this build supports ([`CKPT_VERSION`]).
        supported: u64,
    },
    /// The checkpoint belongs to a different stage.
    KindMismatch {
        /// The kind the resuming stage expected.
        expected: String,
        /// The kind found in the envelope.
        found: String,
    },
    /// The checkpoint was produced from different inputs (another
    /// netlist, fault list, vector set, or config).
    KeyMismatch {
        /// The key the resuming stage derived from its inputs.
        expected: String,
        /// The key found in the envelope.
        found: String,
    },
    /// The payload does not hash to the recorded checksum — the file
    /// was truncated or bit-flipped inside the payload.
    ChecksumMismatch {
        /// The checksum recorded in the envelope.
        expected: String,
        /// The checksum computed from the payload actually present.
        computed: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { path, error } => write!(f, "cannot access {path}: {error}"),
            CkptError::Json(e) => write!(f, "not valid JSON: {e}"),
            CkptError::Malformed { what } => write!(f, "not a checkpoint envelope: {what}"),
            CkptError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint version {found} is newer than the supported version {supported}"
            ),
            CkptError::KindMismatch { expected, found } => {
                write!(f, "checkpoint kind is {found:?}, expected {expected:?}")
            }
            CkptError::KeyMismatch { expected, found } => write!(
                f,
                "checkpoint key {found} does not match these inputs (expected {expected})"
            ),
            CkptError::ChecksumMismatch { expected, computed } => write!(
                f,
                "payload checksum {computed} does not match the recorded {expected} — the file is corrupt"
            ),
        }
    }
}

impl Error for CkptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CkptError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for CkptError {
    fn from(e: JsonError) -> Self {
        CkptError::Json(e)
    }
}

/// Seals `payload` into a one-line versioned, checksummed envelope.
/// `key` is the stage's input digest (from a [`KeyHasher`]).
pub fn seal(kind: &str, key: u64, payload: &Json) -> String {
    let rendered = render(payload);
    let checksum = fnv64(rendered.as_bytes());
    format!(
        "{{\"ckpt_version\":{CKPT_VERSION},\"kind\":{},\"key\":\"{key:016x}\",\"checksum\":\"{checksum:016x}\",\"payload\":{rendered}}}",
        json_string(kind),
    )
}

/// Extracts an exact non-negative integer from an envelope field.
fn envelope_u64(value: &Json) -> Option<u64> {
    let v = value.as_f64()?;
    if v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Some(v as u64)
    } else {
        None
    }
}

/// Opens an envelope previously produced by [`seal`], verifying (in
/// order) JSON well-formedness, envelope shape, format version, stage
/// `kind`, input `key`, and the payload checksum. Returns the payload.
///
/// # Errors
///
/// The first [`CkptError`] encountered in that verification order.
pub fn open(text: &str, kind: &str, key: u64) -> Result<Json, CkptError> {
    let doc = Json::parse(text)?;
    if doc.as_object().is_none() {
        return Err(CkptError::Malformed {
            what: "document is not an object",
        });
    }
    let version = doc
        .get("ckpt_version")
        .and_then(envelope_u64)
        .ok_or(CkptError::Malformed {
            what: "missing ckpt_version",
        })?;
    if version > CKPT_VERSION {
        return Err(CkptError::VersionMismatch {
            found: version,
            supported: CKPT_VERSION,
        });
    }
    let found_kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or(CkptError::Malformed {
            what: "missing kind",
        })?;
    if found_kind != kind {
        return Err(CkptError::KindMismatch {
            expected: kind.to_string(),
            found: found_kind.to_string(),
        });
    }
    let found_key = doc
        .get("key")
        .and_then(Json::as_str)
        .ok_or(CkptError::Malformed {
            what: "missing key",
        })?;
    let expected_key = format!("{key:016x}");
    if found_key != expected_key {
        return Err(CkptError::KeyMismatch {
            expected: expected_key,
            found: found_key.to_string(),
        });
    }
    let recorded = doc
        .get("checksum")
        .and_then(Json::as_str)
        .ok_or(CkptError::Malformed {
            what: "missing checksum",
        })?
        .to_string();
    let payload = doc.get("payload").ok_or(CkptError::Malformed {
        what: "missing payload",
    })?;
    let computed = format!("{:016x}", fnv64(render(payload).as_bytes()));
    if recorded != computed {
        return Err(CkptError::ChecksumMismatch {
            expected: recorded,
            computed,
        });
    }
    Ok(payload.clone())
}

/// Seals `payload` and writes it to `path` atomically.
///
/// # Errors
///
/// [`CkptError::Io`] if the atomic write fails.
pub fn save(path: &str, kind: &str, key: u64, payload: &Json) -> Result<(), CkptError> {
    atomic_write(path, &seal(kind, key, payload)).map_err(|e| CkptError::Io {
        path: path.to_string(),
        error: e.to_string(),
    })
}

/// Reads `path` and opens the envelope (see [`open`] for the
/// verification order).
///
/// # Errors
///
/// [`CkptError::Io`] if the file cannot be read (including non-UTF-8
/// bytes from corruption), otherwise whatever [`open`] reports.
pub fn load(path: &str, kind: &str, key: u64) -> Result<Json, CkptError> {
    let text = std::fs::read_to_string(path).map_err(|e| CkptError::Io {
        path: path.to_string(),
        error: e.to_string(),
    })?;
    open(&text, kind, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload() -> Json {
        Json::Object(vec![
            ("next".to_string(), Json::Number(3.0)),
            (
                "state".to_string(),
                Json::Array(vec![Json::Number(1.0), Json::Number(2.5), Json::Null]),
            ),
            ("label".to_string(), Json::String("a\"b".to_string())),
        ])
    }

    #[test]
    fn render_is_canonical_and_round_trips() {
        let payload = sample_payload();
        let text = render(&payload);
        assert_eq!(
            text,
            "{\"next\":3.0,\"state\":[1.0,2.5,null],\"label\":\"a\\\"b\"}"
        );
        // Parse and re-render: byte-identical (checksum stability).
        let reparsed = Json::parse(&text).expect("canonical text parses");
        assert_eq!(render(&reparsed), text);
    }

    #[test]
    fn seal_open_round_trip() {
        let payload = sample_payload();
        let sealed = seal("test.kind", 0xABCD, &payload);
        assert!(!sealed.contains('\n'), "envelope must be one line");
        let reopened = open(&sealed, "test.kind", 0xABCD).expect("own envelope opens");
        assert_eq!(reopened, payload);
    }

    #[test]
    fn open_rejects_wrong_kind_and_key() {
        let sealed = seal("test.kind", 7, &sample_payload());
        match open(&sealed, "other.kind", 7) {
            Err(CkptError::KindMismatch { expected, found }) => {
                assert_eq!(expected, "other.kind");
                assert_eq!(found, "test.kind");
            }
            other => panic!("expected a kind mismatch, got {other:?}"),
        }
        match open(&sealed, "test.kind", 8) {
            Err(CkptError::KeyMismatch { .. }) => {}
            other => panic!("expected a key mismatch, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_newer_versions_but_accepts_older() {
        let sealed = seal("k", 1, &Json::Null);
        let newer = sealed.replace("\"ckpt_version\":1", "\"ckpt_version\":999");
        assert_eq!(
            open(&newer, "k", 1),
            Err(CkptError::VersionMismatch {
                found: 999,
                supported: CKPT_VERSION,
            })
        );
        // Version 0 (hypothetically older) is not rejected on version.
        let older = sealed.replace("\"ckpt_version\":1", "\"ckpt_version\":0");
        assert!(open(&older, "k", 1).is_ok());
    }

    #[test]
    fn open_detects_payload_tampering() {
        let sealed = seal("k", 1, &sample_payload());
        let tampered = sealed.replace("\"next\":3.0", "\"next\":4.0");
        assert_ne!(tampered, sealed, "the tamper must hit the payload");
        match open(&tampered, "k", 1) {
            Err(CkptError::ChecksumMismatch { expected, computed }) => {
                assert_ne!(expected, computed);
            }
            other => panic!("expected a checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let sealed = seal("k", 1, &sample_payload());
        for cut in [1, sealed.len() / 3, sealed.len() - 1] {
            let truncated = &sealed[..cut];
            assert!(
                matches!(open(truncated, "k", 1), Err(CkptError::Json(_))),
                "truncation at {cut} must be a JSON error"
            );
        }
        assert!(matches!(open("", "k", 1), Err(CkptError::Json(_))));
        assert_eq!(
            open("[1,2,3]", "k", 1),
            Err(CkptError::Malformed {
                what: "document is not an object"
            })
        );
        assert_eq!(
            open("{\"a\":1}", "k", 1),
            Err(CkptError::Malformed {
                what: "missing ckpt_version"
            })
        );
    }

    #[test]
    fn key_hasher_is_order_and_boundary_sensitive() {
        let digest = |f: &dyn Fn(&mut KeyHasher)| {
            let mut h = KeyHasher::new();
            f(&mut h);
            h.finish()
        };
        let ab_c = digest(&|h| {
            h.write_bytes(b"ab");
            h.write_bytes(b"c");
        });
        let a_bc = digest(&|h| {
            h.write_bytes(b"a");
            h.write_bytes(b"bc");
        });
        assert_ne!(ab_c, a_bc, "length prefixes must disambiguate");
        let x = digest(&|h| h.write_u64(1));
        let y = digest(&|h| h.write_u64(2));
        assert_ne!(x, y);
        assert_ne!(
            digest(&|h| h.write_f64(0.0)),
            digest(&|h| h.write_f64(-0.0)),
            "keys hash bit patterns, not numeric values"
        );
        assert_eq!(x, digest(&|h| h.write_u64(1)), "keys are deterministic");
    }

    /// A scratch directory inside the workspace `target/` tree (tests
    /// must not write outside the repository).
    fn scratch_dir(name: &str) -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("{name}_{}", std::process::id()))
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = scratch_dir("dlp_ckpt_test");
        std::fs::create_dir_all(&dir).expect("create test dir");
        let path = dir.join("artifact.json");
        let path = path.to_str().expect("utf-8 path");
        atomic_write(path, "first").expect("first write");
        assert_eq!(std::fs::read_to_string(path).expect("read"), "first");
        atomic_write(path, "second").expect("overwrite");
        assert_eq!(std::fs::read_to_string(path).expect("read"), "second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("list dir")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files may remain");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn save_load_round_trip_through_a_file() {
        let dir = scratch_dir("dlp_ckpt_rt");
        std::fs::create_dir_all(&dir).expect("create test dir");
        let path = dir.join("ckpt.json");
        let path = path.to_str().expect("utf-8 path");
        let payload = sample_payload();
        save(path, "k", 42, &payload).expect("save");
        assert_eq!(load(path, "k", 42).expect("load"), payload);
        match load(path, "k", 43) {
            Err(CkptError::KeyMismatch { .. }) => {}
            other => panic!("expected a key mismatch, got {other:?}"),
        }
        match load("/nonexistent/nowhere.json", "k", 42) {
            Err(CkptError::Io { .. }) => {}
            other => panic!("expected an I/O error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
