//! Random-test coverage growth laws and the susceptibility ratio
//! (eqs. 7–10 of the paper).
//!
//! Under random vectors, stuck-at coverage grows as
//! `T(k) = 1 − exp(−ln k / ln τ_T)` (eq. 7, Williams' test-length law),
//! where `τ_T > 1` is the *fault susceptibility* — larger `τ` means
//! harder-to-detect faults and slower growth. Weighted realistic coverage
//! follows the same law saturating at `θ_max` (eq. 8). Eliminating `k`
//! links the two coverages (eq. 9) through the susceptibility ratio
//! `R = ln τ_T / ln τ_θ` (eq. 10).

use crate::error::{check_positive, check_unit};
use crate::ModelError;

/// Coverage growth `c(k) = max · (1 − e^(−ln k / ln τ))` under random
/// patterns.
///
/// With `max = 1` this is eq. 7 (stuck-at coverage `T(k)`); with
/// `max = θ_max < 1` it is eq. 8 (weighted realistic coverage `θ(k)`).
///
/// # Example
///
/// ```
/// use dlp_core::coverage::CoverageGrowth;
///
/// // The paper's Fig. 1 parameters: τ_T = e³ for stuck-at faults.
/// let t = CoverageGrowth::new(3.0f64.exp(), 1.0)?;
/// assert!(t.at(1) < 1e-12);            // one vector detects ~nothing
/// assert!(t.at(1_000_000) > 0.98);     // a million vectors nearly all
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageGrowth {
    tau: f64,
    max: f64,
}

impl CoverageGrowth {
    /// Creates a growth law with susceptibility `tau > 1` and saturation
    /// level `max ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] for parameters outside those ranges.
    pub fn new(tau: f64, max: f64) -> Result<Self, ModelError> {
        let tau = check_positive("susceptibility", tau)?;
        if tau <= 1.0 {
            return Err(ModelError::OutOfDomain {
                parameter: "susceptibility",
                value: tau,
                range: "(1, ∞)",
            });
        }
        let max = check_unit("saturation coverage", max)?;
        if max == 0.0 {
            return Err(ModelError::OutOfDomain {
                parameter: "saturation coverage",
                value: max,
                range: "(0, 1]",
            });
        }
        Ok(CoverageGrowth { tau, max })
    }

    /// The susceptibility `τ`.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The saturation coverage.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coverage after `k` random vectors. `at(0)` is defined as 0.
    pub fn at(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let lnk = (k as f64).ln();
        self.max * (1.0 - (-lnk / self.tau.ln()).exp())
    }

    /// Vectors needed to reach coverage `c` (inverse of [`at`](Self::at)),
    /// rounded up.
    ///
    /// The returned count is *sufficient*: `at(vectors_for(c)?) >= c`
    /// holds exactly (a bounded upward correction absorbs the
    /// floating-point noise of the log/exp round trip).
    ///
    /// # Errors
    ///
    /// [`ModelError::Unreachable`] if `c ≥ max`;
    /// [`ModelError::VectorCountOverflow`] if the required count
    /// exceeds `u64::MAX` (high-susceptibility laws near saturation) —
    /// previously this saturated silently to `u64::MAX`, returning a
    /// wrong count as if it were meaningful.
    pub fn vectors_for(&self, c: f64) -> Result<u64, ModelError> {
        let c = check_unit("coverage", c)?;
        if c >= self.max {
            return Err(ModelError::Unreachable {
                target: "coverage",
                requested: c,
                limit: self.max,
            });
        }
        // c = max(1 - e^(-ln k/ln tau))  =>  ln k = -ln tau * ln(1 - c/max).
        let lnk = -self.tau.ln() * (1.0 - c / self.max).ln();
        let k_real = lnk.exp();
        if !k_real.is_finite() || k_real >= u64::MAX as f64 {
            return Err(ModelError::VectorCountOverflow {
                coverage: c,
                ln_vectors: lnk,
            });
        }
        let mut k = k_real.ceil() as u64;
        // Sufficiency guarantee: walk k up through the few counts the
        // exp/ln rounding can leave short (geometrically growing steps
        // keep the loop bounded even in flat regions).
        let mut step = 1u64;
        for _ in 0..64 {
            if self.at(k) >= c {
                return Ok(k);
            }
            k = k.saturating_add(step);
            step = step.saturating_mul(2);
        }
        Err(ModelError::VectorCountOverflow {
            coverage: c,
            ln_vectors: lnk,
        })
    }
}

/// The susceptibility ratio `R = ln τ_T / ln τ_θ` (eq. 10).
///
/// `R > 1` means the realistic (weighted) faults are *easier* to detect
/// than stuck-at faults — their coverage saturates sooner — which the paper
/// shows is the bridge-dominated CMOS case.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] unless both susceptibilities exceed 1.
///
/// # Example
///
/// ```
/// use dlp_core::coverage::susceptibility_ratio;
///
/// // Fig. 1 parameters: τ_T = e³, τ_θ = e². R = 3/2.
/// let r = susceptibility_ratio(3.0f64.exp(), 2.0f64.exp())?;
/// assert!((r - 1.5).abs() < 1e-12);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
pub fn susceptibility_ratio(tau_t: f64, tau_theta: f64) -> Result<f64, ModelError> {
    for (name, v) in [
        ("stuck-at susceptibility", tau_t),
        ("realistic susceptibility", tau_theta),
    ] {
        let v = check_positive(name, v)?;
        if v <= 1.0 {
            return Err(ModelError::OutOfDomain {
                parameter: name,
                value: v,
                range: "(1, ∞)",
            });
        }
    }
    Ok(tau_t.ln() / tau_theta.ln())
}

/// Relates realistic coverage to stuck-at coverage with `k` eliminated
/// (eq. 9): `θ(T) = θ_max · (1 − (1−T)^R)`.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] unless `t ∈ [0, 1]`, `r > 0` and
/// `theta_max ∈ (0, 1]`.
pub fn theta_of_t(t: f64, r: f64, theta_max: f64) -> Result<f64, ModelError> {
    let t = check_unit("stuck-at coverage", t)?;
    let r = check_positive("susceptibility ratio", r)?;
    let theta_max = check_unit("theta_max", theta_max)?;
    if theta_max == 0.0 {
        return Err(ModelError::OutOfDomain {
            parameter: "theta_max",
            value: theta_max,
            range: "(0, 1]",
        });
    }
    Ok(theta_max * (1.0 - (1.0 - t).powf(r)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_monotone_and_saturates() {
        let g = CoverageGrowth::new(3.0f64.exp(), 0.96).unwrap();
        let mut prev = -1.0;
        for e in 0..7 {
            let k = 10u64.pow(e);
            let c = g.at(k);
            assert!(c >= prev);
            assert!(c <= 0.96 + 1e-12);
            prev = c;
        }
        assert!(g.at(10_000_000) > 0.9);
    }

    #[test]
    fn single_vector_gives_zero() {
        // ln 1 = 0, so T(1) = 0 exactly: the law calibrates "first vector
        // detects nothing" (coverage builds with log test length).
        let g = CoverageGrowth::new(20.0, 1.0).unwrap();
        assert_eq!(g.at(1), 0.0);
        assert_eq!(g.at(0), 0.0);
    }

    #[test]
    fn vectors_for_inverts_at() {
        let g = CoverageGrowth::new(3.0f64.exp(), 1.0).unwrap();
        for &c in &[0.1, 0.5, 0.9, 0.99] {
            let k = g.vectors_for(c).unwrap();
            assert!(g.at(k) >= c, "c={c} k={k}");
            if k > 1 {
                assert!(g.at(k - 1) <= c + 1e-9);
            }
        }
        assert!(g.vectors_for(1.0).is_err());
    }

    #[test]
    fn vectors_for_overflow_is_a_typed_error_not_a_saturated_count() {
        // τ = e^700: even modest coverages need e^(700·…) vectors. The
        // old code returned u64::MAX as if it were a real count.
        let g = CoverageGrowth::new(700.0f64.exp(), 1.0).unwrap();
        match g.vectors_for(0.5) {
            Err(ModelError::VectorCountOverflow {
                coverage,
                ln_vectors,
            }) => {
                assert_eq!(coverage, 0.5);
                assert!(ln_vectors > 400.0, "ln k = {ln_vectors}");
            }
            other => panic!("expected VectorCountOverflow, got {other:?}"),
        }
        // A saturating-but-representable case still succeeds…
        let g = CoverageGrowth::new(3.0f64.exp(), 1.0).unwrap();
        assert!(g.vectors_for(0.999999).is_ok());
        // …and c >= max keeps its Unreachable error.
        assert!(matches!(
            g.vectors_for(1.0),
            Err(ModelError::Unreachable { .. })
        ));
    }

    #[test]
    fn fig1_parameters_reproduce_shape() {
        // Fig. 1: τ_T = e³, τ_θ = e², θ_max = 0.96 — θ grows faster and
        // saturates below T's limit; the curves cross where θ flattens.
        let t = CoverageGrowth::new(3.0f64.exp(), 1.0).unwrap();
        let th = CoverageGrowth::new(2.0f64.exp(), 0.96).unwrap();
        assert!(th.at(10) > t.at(10), "θ leads early");
        assert!(
            th.at(1_000_000) < t.at(1_000_000),
            "T overtakes at saturation"
        );
    }

    #[test]
    fn ratio_matches_closed_form() {
        let r = susceptibility_ratio(3.0f64.exp(), 1.5f64.exp()).unwrap();
        assert!((r - 2.0).abs() < 1e-12);
        assert!(susceptibility_ratio(1.0, 2.0).is_err());
        assert!(susceptibility_ratio(2.0, 1.0).is_err());
    }

    #[test]
    fn eq9_consistency_with_growth_laws() {
        // θ(T(k)) from eq. 9 must equal θ(k) from eq. 8 for all k.
        let tau_t = 3.0f64.exp();
        let tau_th = 2.0f64.exp();
        let theta_max = 0.96;
        let r = susceptibility_ratio(tau_t, tau_th).unwrap();
        let tg = CoverageGrowth::new(tau_t, 1.0).unwrap();
        let thg = CoverageGrowth::new(tau_th, theta_max).unwrap();
        for e in 1..7 {
            let k = 10u64.pow(e);
            let via_t = theta_of_t(tg.at(k), r, theta_max).unwrap();
            let direct = thg.at(k);
            assert!((via_t - direct).abs() < 1e-9, "k={k}: {via_t} vs {direct}");
        }
    }

    #[test]
    fn theta_of_t_boundaries() {
        assert_eq!(theta_of_t(0.0, 2.0, 0.96).unwrap(), 0.0);
        assert!((theta_of_t(1.0, 2.0, 0.96).unwrap() - 0.96).abs() < 1e-12);
        assert!(theta_of_t(0.5, 0.0, 0.96).is_err());
        assert!(theta_of_t(0.5, 2.0, 0.0).is_err());
    }

    #[test]
    fn theta_of_t_monotone_in_t() {
        for ri in 0..10 {
            let r = 0.2 + 4.8 * ri as f64 / 9.0;
            for mi in 0..5 {
                let theta_max = 0.5 + 0.5 * mi as f64 / 5.0;
                let mut prev = -1.0;
                for i in 0..=40 {
                    let t = i as f64 / 40.0;
                    let th = theta_of_t(t, r, theta_max).unwrap();
                    assert!(th >= prev - 1e-12, "r={r} theta_max={theta_max} t={t}");
                    assert!((0.0..=theta_max + 1e-12).contains(&th));
                    prev = th;
                }
            }
        }
    }

    #[test]
    fn larger_r_means_faster_theta() {
        for i in 1..19 {
            let t = 0.05 * i as f64;
            let slow = theta_of_t(t, 1.0, 1.0).unwrap();
            let fast = theta_of_t(t, 2.5, 1.0).unwrap();
            assert!(fast >= slow, "t={t}");
        }
    }
}
