use std::error::Error;
use std::fmt;

/// Errors raised by model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A parameter fell outside its mathematical domain.
    OutOfDomain {
        /// The parameter name, e.g. `"yield"`.
        parameter: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable description of the valid range.
        range: &'static str,
    },
    /// A requested target is unreachable under the model (e.g. a defect
    /// level below the residual defect level of an incomplete test set).
    Unreachable {
        /// What was asked for.
        target: &'static str,
        /// The requested value.
        requested: f64,
        /// The best the model can do.
        limit: f64,
    },
    /// An iterative fit failed to converge.
    FitDiverged {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// A fit was asked to run on insufficient or degenerate data.
    BadFitData(&'static str),
    /// A required random-vector count exceeds what a `u64` can hold —
    /// the target coverage sits so close to the saturation level that
    /// the growth law needs an astronomical test length.
    VectorCountOverflow {
        /// The requested coverage.
        coverage: f64,
        /// Natural log of the (unrepresentable) required vector count.
        ln_vectors: f64,
    },
    /// The `DLP_THREADS` override is not a positive thread count.
    BadThreadCount(crate::par::ParError),
    /// The run budget tripped before any work could start (e.g. the
    /// memory estimate already exceeds the limit).
    Budget(crate::budget::BudgetExceeded),
    /// The run budget tripped mid-simulation; `checkpoint` captures the
    /// completed prefix, and resuming from it reproduces the
    /// uninterrupted run bit-identically.
    Interrupted {
        /// What tripped, with shard-level progress attached.
        budget: crate::budget::BudgetExceeded,
        /// Resume state for [`crate::montecarlo::simulate_fallout_resumable`].
        checkpoint: Box<crate::montecarlo::McCheckpoint>,
    },
    /// A supplied resume checkpoint is inconsistent with this run's
    /// inputs (more progress recorded than the run has work).
    BadCheckpoint {
        /// What is inconsistent.
        what: &'static str,
    },
    /// A fallout-distribution specification is malformed: a cluster
    /// parameter that is non-positive or non-finite, a NaN mixing
    /// weight, a zero hierarchy level — anything that would make the
    /// compound Monte-Carlo model meaningless.
    BadDistribution {
        /// The distribution being constructed, e.g. `"negative-binomial"`.
        distribution: &'static str,
        /// The offending parameter name, e.g. `"alpha"`.
        parameter: &'static str,
        /// The offending value.
        value: f64,
        /// Human-readable description of the valid range.
        range: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::OutOfDomain {
                parameter,
                value,
                range,
            } => {
                write!(f, "{parameter} = {value} is outside {range}")
            }
            ModelError::Unreachable {
                target,
                requested,
                limit,
            } => {
                write!(f, "{target} {requested} is unreachable (limit {limit})")
            }
            ModelError::FitDiverged { iterations } => {
                write!(f, "fit did not converge within {iterations} iterations")
            }
            ModelError::BadFitData(what) => write!(f, "cannot fit: {what}"),
            ModelError::VectorCountOverflow {
                coverage,
                ln_vectors,
            } => {
                write!(
                    f,
                    "coverage {coverage} needs e^{ln_vectors:.1} random vectors, \
                     which overflows a u64 count"
                )
            }
            ModelError::BadThreadCount(e) => e.fmt(f),
            ModelError::Budget(b) => b.fmt(f),
            ModelError::Interrupted { budget, .. } => {
                write!(f, "{budget}; a resume checkpoint was captured")
            }
            ModelError::BadCheckpoint { what } => {
                write!(f, "resume checkpoint is unusable: {what}")
            }
            ModelError::BadDistribution {
                distribution,
                parameter,
                value,
                range,
            } => {
                write!(
                    f,
                    "{distribution} distribution: {parameter} = {value} is outside {range}"
                )
            }
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Budget(b) => Some(b),
            ModelError::Interrupted { budget, .. } => Some(budget),
            _ => None,
        }
    }
}

impl From<crate::par::ParError> for ModelError {
    fn from(e: crate::par::ParError) -> Self {
        ModelError::BadThreadCount(e)
    }
}

/// Validates that `value` lies in `[0, 1]`.
pub(crate) fn check_unit(parameter: &'static str, value: f64) -> Result<f64, ModelError> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(ModelError::OutOfDomain {
            parameter,
            value,
            range: "[0, 1]",
        })
    }
}

/// Validates that `value` lies in the open interval `(0, 1)`.
pub(crate) fn check_open_unit(parameter: &'static str, value: f64) -> Result<f64, ModelError> {
    if value > 0.0 && value < 1.0 {
        Ok(value)
    } else {
        Err(ModelError::OutOfDomain {
            parameter,
            value,
            range: "(0, 1)",
        })
    }
}

/// Validates that `value` is strictly positive and finite.
pub(crate) fn check_positive(parameter: &'static str, value: f64) -> Result<f64, ModelError> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(ModelError::OutOfDomain {
            parameter,
            value,
            range: "(0, ∞)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validators() {
        assert!(check_unit("t", 0.0).is_ok());
        assert!(check_unit("t", 1.0).is_ok());
        assert!(check_unit("t", -0.1).is_err());
        assert!(check_unit("t", f64::NAN).is_err());
        assert!(check_open_unit("y", 0.5).is_ok());
        assert!(check_open_unit("y", 1.0).is_err());
        assert!(check_positive("r", 2.0).is_ok());
        assert!(check_positive("r", 0.0).is_err());
        assert!(check_positive("r", f64::INFINITY).is_err());
    }

    #[test]
    fn display_is_informative() {
        let e = ModelError::OutOfDomain {
            parameter: "yield",
            value: 1.5,
            range: "(0, 1)",
        };
        assert_eq!(e.to_string(), "yield = 1.5 is outside (0, 1)");
        let e = ModelError::Unreachable {
            target: "defect level",
            requested: 1e-6,
            limit: 1e-3,
        };
        assert!(e.to_string().contains("unreachable"));
        let e = ModelError::BadDistribution {
            distribution: "negative-binomial",
            parameter: "alpha",
            value: -2.0,
            range: "(0, ∞)",
        };
        assert_eq!(
            e.to_string(),
            "negative-binomial distribution: alpha = -2 is outside (0, ∞)"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ModelError>();
    }
}
