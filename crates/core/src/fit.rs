//! Parameter estimation: Nelder–Mead least squares for the paper's model
//! parameters.
//!
//! The paper determines `R` and `θ_max` "by experimental curve fitting"
//! (§2) — [`fit_sousa`] does exactly that against `(T, DL)` points.
//! [`fit_agrawal`] fits the multiplicity `n₀` of eq. 2 the same way, and
//! [`fit_coverage_growth`] recovers a susceptibility `τ` (and optionally a
//! saturation level) from a measured coverage-vs-test-length curve.

use crate::agrawal::AgrawalModel;
use crate::coverage::CoverageGrowth;
use crate::sousa::SousaModel;
use crate::ModelError;

/// Options for the Nelder–Mead simplex minimiser.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NelderMeadOptions {
    /// Maximum iterations before declaring divergence.
    pub max_iterations: usize,
    /// Convergence threshold on the simplex's objective spread.
    pub tolerance: f64,
    /// Initial simplex edge length.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_iterations: 2000,
            tolerance: 1e-12,
            initial_step: 0.5,
        }
    }
}

/// Minimises `f` over ℝⁿ from `x0` with the Nelder–Mead simplex method.
/// Returns the best point and its objective value.
///
/// Constraints are handled by the caller through smooth reparameterisation
/// (e.g. optimise `ln R` instead of `R`) or penalty terms in `f`.
///
/// # Errors
///
/// [`ModelError::BadFitData`] for an empty `x0`;
/// [`ModelError::FitDiverged`] if the simplex fails to contract within
/// `max_iterations` (the best point found so far is then discarded —
/// callers should widen `tolerance` instead of trusting it).
///
/// # Example
///
/// ```
/// use dlp_core::fit::{nelder_mead, NelderMeadOptions};
///
/// // Rosenbrock's banana, minimum at (1, 1).
/// let (x, v) = nelder_mead(
///     |p| (1.0 - p[0]).powi(2) + 100.0 * (p[1] - p[0] * p[0]).powi(2),
///     &[-1.2, 1.0],
///     NelderMeadOptions { max_iterations: 5000, ..Default::default() },
/// )?;
/// assert!(v < 1e-8);
/// assert!((x[0] - 1.0).abs() < 1e-3 && (x[1] - 1.0).abs() < 1e-3);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
pub fn nelder_mead<F: FnMut(&[f64]) -> f64>(
    mut f: F,
    x0: &[f64],
    options: NelderMeadOptions,
) -> Result<(Vec<f64>, f64), ModelError> {
    let n = x0.len();
    if n == 0 {
        return Err(ModelError::BadFitData("empty parameter vector"));
    }
    // Standard coefficients.
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let v0 = f(x0);
    simplex.push((x0.to_vec(), v0));
    for i in 0..n {
        let mut x = x0.to_vec();
        x[i] += options.initial_step;
        let v = f(&x);
        simplex.push((x, v));
    }

    for _ in 0..options.max_iterations {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = simplex[0].1;
        let worst = simplex[n].1;
        if (worst - best).abs() <= options.tolerance * (1.0 + best.abs()) {
            return Ok(simplex.swap_remove(0));
        }

        // Centroid of all but the worst.
        let mut centroid = vec![0.0; n];
        for (x, _) in &simplex[..n] {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / n as f64;
            }
        }

        let worst_x = simplex[n].0.clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst_x)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = f(&reflect);

        if fr < simplex[0].1 {
            // Try expanding.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let fe = f(&expand);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contract toward the centroid.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst_x)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = f(&contract);
            if fc < simplex[n].1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink everything toward the best point.
                let best_x = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let x: Vec<f64> = best_x
                        .iter()
                        .zip(&entry.0)
                        .map(|(b, e)| b + sigma * (e - b))
                        .collect();
                    let v = f(&x);
                    *entry = (x, v);
                }
            }
        }
    }
    Err(ModelError::FitDiverged {
        iterations: options.max_iterations,
    })
}

/// Fits the Sousa model's `(R, θ_max)` to measured `(T, DL)` points at a
/// known yield, by least squares on `DL` (the paper's Fig. 5 fit, which
/// produced `R = 1.9`, `θ_max = 0.96` for the c432 layout).
///
/// The bounds `R > 0`, `θ_max ∈ (0, 1]` are enforced by optimising
/// `(ln R, logit θ_max)`.
///
/// # Errors
///
/// [`ModelError::BadFitData`] for fewer than 3 points or points outside
/// `[0, 1]²`; [`ModelError::FitDiverged`] if the optimiser fails.
pub fn fit_sousa(y: f64, points: &[(f64, f64)]) -> Result<SousaModel, ModelError> {
    if points.len() < 3 {
        return Err(ModelError::BadFitData("need at least 3 (T, DL) points"));
    }
    for &(t, dl) in points {
        if !(0.0..=1.0).contains(&t) || !(0.0..=1.0).contains(&dl) {
            return Err(ModelError::BadFitData("(T, DL) points must lie in [0,1]^2"));
        }
    }
    // Validate yield eagerly via the model constructor.
    SousaModel::new(y, 1.0, 1.0)?;

    let objective = |p: &[f64]| -> f64 {
        let r = p[0].exp();
        let theta_max = 1.0 / (1.0 + (-p[1]).exp());
        let model = match SousaModel::new(y, r, theta_max) {
            Ok(m) => m,
            Err(_) => return f64::INFINITY,
        };
        points
            .iter()
            .map(|&(t, dl)| {
                let m = model.defect_level(t).unwrap_or(f64::INFINITY);
                (m - dl) * (m - dl)
            })
            .sum()
    };
    // Start near Williams–Brown (R = 1) with a high θ_max (logit 3 ≈ 0.95).
    let (p, _) = nelder_mead(
        objective,
        &[0.0, 3.0],
        NelderMeadOptions {
            max_iterations: 4000,
            tolerance: 1e-16,
            initial_step: 0.4,
        },
    )?;
    SousaModel::new(y, p[0].exp(), 1.0 / (1.0 + (-p[1]).exp()))
}

/// Fits Agrawal's multiplicity `n₀ ≥ 1` to measured `(T, DL)` points at a
/// known yield (the a-posteriori fit the paper contrasts against).
///
/// # Errors
///
/// [`ModelError::BadFitData`] for fewer than 2 points;
/// [`ModelError::FitDiverged`] if the optimiser fails.
pub fn fit_agrawal(y: f64, points: &[(f64, f64)]) -> Result<AgrawalModel, ModelError> {
    if points.len() < 2 {
        return Err(ModelError::BadFitData("need at least 2 (T, DL) points"));
    }
    AgrawalModel::new(y, 1.0)?;
    let objective = |p: &[f64]| -> f64 {
        let n0 = 1.0 + p[0].exp();
        let model = match AgrawalModel::new(y, n0) {
            Ok(m) => m,
            Err(_) => return f64::INFINITY,
        };
        points
            .iter()
            .map(|&(t, dl)| {
                let m = model.defect_level(t).unwrap_or(f64::INFINITY);
                (m - dl) * (m - dl)
            })
            .sum()
    };
    let (p, _) = nelder_mead(objective, &[0.0], NelderMeadOptions::default())?;
    AgrawalModel::new(y, 1.0 + p[0].exp())
}

/// Fits a [`CoverageGrowth`] law to measured `(k, coverage)` points.
///
/// With `fit_max = false` the saturation level is pinned to 1 (eq. 7,
/// stuck-at coverage); with `fit_max = true` both `τ` and the saturation
/// level are fitted (eq. 8, realistic coverage with `θ_max < 1`).
///
/// # Errors
///
/// [`ModelError::BadFitData`] for fewer than 2 points or non-positive `k`;
/// [`ModelError::FitDiverged`] if the optimiser fails.
pub fn fit_coverage_growth(
    points: &[(u64, f64)],
    fit_max: bool,
) -> Result<CoverageGrowth, ModelError> {
    if points.len() < 2 {
        return Err(ModelError::BadFitData(
            "need at least 2 (k, coverage) points",
        ));
    }
    if points.iter().any(|&(k, _)| k == 0) {
        return Err(ModelError::BadFitData("test length k must be positive"));
    }
    let decode = |p: &[f64]| -> (f64, f64) {
        let tau = 1.0 + p[0].exp();
        let max = if fit_max {
            1.0 / (1.0 + (-p[1]).exp())
        } else {
            1.0
        };
        (tau, max)
    };
    let objective = |p: &[f64]| -> f64 {
        let (tau, max) = decode(p);
        let model = match CoverageGrowth::new(tau, max) {
            Ok(m) => m,
            Err(_) => return f64::INFINITY,
        };
        points
            .iter()
            .map(|&(k, c)| {
                let m = model.at(k);
                (m - c) * (m - c)
            })
            .sum()
    };
    let x0: Vec<f64> = if fit_max { vec![1.0, 3.0] } else { vec![1.0] };
    let (p, _) = nelder_mead(
        objective,
        &x0,
        NelderMeadOptions {
            max_iterations: 4000,
            ..Default::default()
        },
    )?;
    let (tau, max) = decode(&p);
    CoverageGrowth::new(tau, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_minimises_quadratic() {
        let (x, v) = nelder_mead(
            |p| (p[0] - 3.0).powi(2) + (p[1] + 2.0).powi(2) + 5.0,
            &[0.0, 0.0],
            NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((v - 5.0).abs() < 1e-8);
        assert!((x[0] - 3.0).abs() < 1e-4);
        assert!((x[1] + 2.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_rejects_empty() {
        assert!(matches!(
            nelder_mead(|_| 0.0, &[], NelderMeadOptions::default()),
            Err(ModelError::BadFitData(_))
        ));
    }

    #[test]
    fn fit_sousa_recovers_known_parameters() {
        let truth = SousaModel::new(0.75, 1.9, 0.96).unwrap();
        let points: Vec<(f64, f64)> = (0..=40)
            .map(|i| {
                let t = i as f64 / 40.0;
                (t, truth.defect_level(t).unwrap())
            })
            .collect();
        let fitted = fit_sousa(0.75, &points).unwrap();
        assert!(
            (fitted.susceptibility_ratio() - 1.9).abs() < 0.02,
            "R = {}",
            fitted.susceptibility_ratio()
        );
        assert!(
            (fitted.theta_max() - 0.96).abs() < 0.005,
            "theta_max = {}",
            fitted.theta_max()
        );
    }

    #[test]
    fn fit_sousa_on_williams_brown_data_finds_r_one() {
        let wb = SousaModel::williams_brown(0.8).unwrap();
        let points: Vec<(f64, f64)> = (0..=20)
            .map(|i| {
                let t = i as f64 / 20.0;
                (t, wb.defect_level(t).unwrap())
            })
            .collect();
        let fitted = fit_sousa(0.8, &points).unwrap();
        assert!((fitted.susceptibility_ratio() - 1.0).abs() < 0.05);
        assert!(fitted.theta_max() > 0.99);
    }

    #[test]
    fn fit_agrawal_recovers_multiplicity() {
        let truth = AgrawalModel::new(0.7, 4.0).unwrap();
        let points: Vec<(f64, f64)> = (0..=30)
            .map(|i| {
                let t = i as f64 / 30.0;
                (t, truth.defect_level(t).unwrap())
            })
            .collect();
        let fitted = fit_agrawal(0.7, &points).unwrap();
        assert!(
            (fitted.multiplicity() - 4.0).abs() < 0.1,
            "n0 = {}",
            fitted.multiplicity()
        );
    }

    #[test]
    fn fit_coverage_growth_recovers_tau_and_max() {
        let truth = CoverageGrowth::new(3.0f64.exp(), 0.96).unwrap();
        let points: Vec<(u64, f64)> = (0..=24)
            .map(|e| {
                let k = (1.7f64.powi(e) as u64).max(1) + e as u64;
                (k, truth.at(k))
            })
            .collect();
        let fitted = fit_coverage_growth(&points, true).unwrap();
        assert!(
            (fitted.tau().ln() - 3.0).abs() < 0.05,
            "ln tau = {}",
            fitted.tau().ln()
        );
        assert!((fitted.max() - 0.96).abs() < 0.01, "max = {}", fitted.max());
    }

    #[test]
    fn fit_coverage_growth_pinned_max() {
        let truth = CoverageGrowth::new(2.2f64.exp(), 1.0).unwrap();
        let points: Vec<(u64, f64)> = (1..=20).map(|i| (1u64 << i, truth.at(1u64 << i))).collect();
        let fitted = fit_coverage_growth(&points, false).unwrap();
        assert_eq!(fitted.max(), 1.0);
        assert!((fitted.tau().ln() - 2.2).abs() < 0.05);
    }

    #[test]
    fn fits_reject_degenerate_data() {
        assert!(fit_sousa(0.75, &[(0.0, 0.25)]).is_err());
        assert!(fit_sousa(0.75, &[(0.0, 1.5), (0.5, 0.1), (1.0, 0.0)]).is_err());
        assert!(fit_agrawal(0.75, &[(0.5, 0.1)]).is_err());
        assert!(fit_coverage_growth(&[(0, 0.1), (2, 0.2)], false).is_err());
        assert!(fit_coverage_growth(&[(1, 0.1)], false).is_err());
    }

    #[test]
    fn fit_sousa_tolerates_noise() {
        // Deterministic pseudo-noise on top of the true curve.
        let truth = SousaModel::new(0.75, 2.1, 0.95).unwrap();
        let points: Vec<(f64, f64)> = (0..=60)
            .map(|i| {
                let t = i as f64 / 60.0;
                let noise = ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5;
                let dl = (truth.defect_level(t).unwrap() * (1.0 + 0.05 * noise)).clamp(0.0, 1.0);
                (t, dl)
            })
            .collect();
        let fitted = fit_sousa(0.75, &points).unwrap();
        assert!((fitted.susceptibility_ratio() - 2.1).abs() < 0.25);
        assert!((fitted.theta_max() - 0.95).abs() < 0.02);
    }
}
