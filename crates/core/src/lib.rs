//! Defect-level models for digital ICs.
//!
//! This crate implements the mathematical contribution of *Sousa,
//! Gonçalves, Teixeira, Williams — "Fault Modeling and Defect Level
//! Projections in Digital ICs", DATE 1994*, together with the prior models
//! it is compared against:
//!
//! * [`williams_brown`] — the classical `DL = 1 − Y^(1−T)` (eq. 1),
//! * [`agrawal`] — the Poisson multiple-fault model (eq. 2),
//! * [`weighted`] — yield and coverage over *non-equally-probable* faults
//!   weighted by `w = A·D` (eqs. 3–6),
//! * [`coverage`] — random-test coverage growth laws `T(k)`, `θ(k)` and the
//!   susceptibility ratio `R` (eqs. 7–10),
//! * [`sousa`] — the paper's new model `DL(T; Y, R, θ_max)` (eq. 11) with
//!   its residual defect level and inverse (required-coverage) solver,
//! * [`fit`] — Nelder–Mead least-squares fitting of `(R, θ_max)`, of
//!   Agrawal's `n`, and of susceptibilities `τ` from measured curves,
//! * [`montecarlo`] — direct production-line simulation validating eq. 3
//!   statistically,
//! * [`ndetect`] — the DL(n) layer for n-detection test sets: the
//!   saturating `θ(n)` growth law and its least-squares fit,
//! * [`par`] — the dependency-free scoped thread pool behind the
//!   simulation and Monte-Carlo hot paths (`DLP_THREADS` override,
//!   deterministic chunked work distribution),
//! * [`obs`] — the observability layer: stage spans, counters, gauges,
//!   and the JSON `RunReport` behind the `DLP_TRACE` contract,
//! * [`budget`] — cooperative run budgets (wall-clock deadline, memory
//!   estimate, explicit [`CancelToken`]) checked at chunk boundaries,
//! * [`ckpt`] — versioned, checksummed checkpoint envelopes and the
//!   atomic write-temp-then-rename helper every artifact writer uses.
//!
//! All quantities are dimensionless: yields, coverages and defect levels in
//! `[0, 1]` (use [`Ppm`] for parts-per-million display), susceptibilities
//! `τ > 1`.
//!
//! # Example: the paper's Example 1
//!
//! How much stuck-at coverage does a `Y = 0.75` chip need for a 100 ppm
//! defect level, when realistic faults are easier to detect (`R = 2.1`)?
//!
//! ```
//! use dlp_core::sousa::SousaModel;
//!
//! let model = SousaModel::new(0.75, 2.1, 1.0)?;
//! let t = model.required_coverage(100e-6)?;
//! assert!((t - 0.977).abs() < 5e-4); // paper: T = 97.7 %
//! # Ok::<(), dlp_core::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agrawal;
pub mod budget;
pub mod ckpt;
pub mod coverage;
mod error;
pub mod fit;
pub mod montecarlo;
pub mod ndetect;
pub mod obs;
pub mod par;
mod pipeline;
mod ppm;
pub mod rng;
pub mod sousa;
pub mod weighted;
pub mod williams_brown;
pub mod yield_model;

pub use budget::{BudgetExceeded, BudgetReason, CancelToken, RunBudget};
pub use ckpt::CkptError;
pub use error::ModelError;
pub use pipeline::{Diagnostic, Diagnostics, PipelineError, Stage};
pub use ppm::Ppm;
