//! Monte Carlo fallout simulation — a statistical cross-check of the
//! weighted defect-level formula (eq. 3).
//!
//! The paper's eq. 3 (`DL = 1 − Y^(1−θ)`) is derived from independent
//! Poisson fault occurrences. This module *simulates the production line
//! directly*: dice are rolled per die and per fault, dies failing any
//! detected fault are scrapped, and the shipped-defective ratio is
//! counted. The estimate must converge to eq. 3 — a strong end-to-end
//! validation of the model implementation that needs no external data.

use crate::obs::Recorder;
use crate::par::{self, ThreadCount};
use crate::weighted::FaultWeights;
use crate::ModelError;

/// Dies per RNG shard. Shard `s` always covers dies
/// `[s · SHARD_DIES, (s+1) · SHARD_DIES)` and draws from the stream
/// `Xorshift64Star::split(seed, s)`, so the decomposition — and the
/// counted outcome — is a function of `(dies, seed)` alone, never of the
/// worker count.
const SHARD_DIES: usize = 4096;

/// Monte Carlo settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Number of dies to fabricate.
    pub dies: usize,
    /// RNG seed (xorshift64*; self-contained, no external dependency).
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            dies: 100_000,
            seed: 0x5EED,
        }
    }
}

/// Counted production outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FalloutEstimate {
    /// Dies fabricated.
    pub fabricated: usize,
    /// Dies with no fault at all (true yield numerator).
    pub good: usize,
    /// Dies passing the test (shipped).
    pub shipped: usize,
    /// Shipped dies that carry at least one (undetected) fault.
    pub escapes: usize,
}

impl FalloutEstimate {
    /// The measured yield `good / fabricated`.
    pub fn yield_estimate(&self) -> f64 {
        self.good as f64 / self.fabricated.max(1) as f64
    }

    /// The measured defect level `escapes / shipped`.
    pub fn defect_level(&self) -> f64 {
        if self.shipped == 0 {
            0.0
        } else {
            self.escapes as f64 / self.shipped as f64
        }
    }
}

/// Simulates fabrication and test of `config.dies` dies.
///
/// Fault `j` strikes a die with probability `p_j = 1 − e^(−w_j)`
/// independently; the tester scraps the die iff some struck fault is in
/// the detected set.
///
/// Dies are processed in fixed-size shards with per-shard RNG streams
/// split deterministically from `config.seed`, spread over the worker
/// count resolved from `DLP_THREADS` (default: available parallelism).
/// The counted outcome is bit-identical for every thread count; see
/// [`simulate_fallout_with`] for explicit thread control.
///
/// # Errors
///
/// [`ModelError::BadFitData`] if `detected.len()` mismatches the fault
/// count or `config.dies == 0`; [`ModelError::BadThreadCount`] if the
/// `DLP_THREADS` environment variable is set to `0` or garbage.
///
/// # Example
///
/// ```
/// use dlp_core::montecarlo::{simulate_fallout, MonteCarloConfig};
/// use dlp_core::weighted::FaultWeights;
///
/// let w = FaultWeights::new(vec![0.05; 10])?.scaled_to_yield(0.75)?;
/// // Detect the first 7 of 10 equal faults: theta = 0.7.
/// let detected: Vec<bool> = (0..10).map(|j| j < 7).collect();
/// let est = simulate_fallout(&w, &detected, &MonteCarloConfig::default())?;
/// let formula = w.defect_level(w.theta(&detected)?)?;
/// assert!((est.defect_level() - formula).abs() < 0.01);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
pub fn simulate_fallout(
    weights: &FaultWeights,
    detected: &[bool],
    config: &MonteCarloConfig,
) -> Result<FalloutEstimate, ModelError> {
    simulate_fallout_with(weights, detected, config, ThreadCount::from_env()?)
}

/// [`simulate_fallout`] with an explicit worker count.
///
/// # Errors
///
/// [`ModelError::BadFitData`] if `detected.len()` mismatches the fault
/// count or `config.dies == 0`.
pub fn simulate_fallout_with(
    weights: &FaultWeights,
    detected: &[bool],
    config: &MonteCarloConfig,
    threads: ThreadCount,
) -> Result<FalloutEstimate, ModelError> {
    simulate_fallout_obs(weights, detected, config, threads, Recorder::noop())
}

/// [`simulate_fallout_with`] with observability: records the
/// `montecarlo` span, shard/die counters, fallout tallies
/// (`mc.good` / `mc.shipped` / `mc.escapes`), the per-shard escape
/// histogram (`mc.shard_escapes` — deterministic percentiles at any
/// thread count, since shards fold in chunk order), and per-worker
/// timeline telemetry (`mc.worker<i>.*`) into `obs`.
///
/// Recording is observation-only: the counted [`FalloutEstimate`] is
/// bit-identical to [`simulate_fallout_with`] for every thread count,
/// with tracing on or off.
///
/// # Errors
///
/// See [`simulate_fallout_with`].
pub fn simulate_fallout_obs(
    weights: &FaultWeights,
    detected: &[bool],
    config: &MonteCarloConfig,
    threads: ThreadCount,
    obs: &Recorder,
) -> Result<FalloutEstimate, ModelError> {
    let _span = obs.span("montecarlo");
    if detected.len() != weights.len() {
        return Err(ModelError::BadFitData("detection mask length mismatch"));
    }
    if config.dies == 0 {
        return Err(ModelError::BadFitData("zero dies requested"));
    }
    let probabilities: Vec<f64> = (0..weights.len()).map(|j| weights.probability(j)).collect();

    // Shard descriptors: (stream index, dies in shard). The last shard
    // takes the remainder.
    let shards: Vec<(u64, usize)> = (0..config.dies.div_ceil(SHARD_DIES))
        .map(|s| (s as u64, SHARD_DIES.min(config.dies - s * SHARD_DIES)))
        .collect();
    obs.add("mc.shards", shards.len() as u64);
    obs.add("mc.dies", config.dies as u64);
    obs.add("mc.faults", weights.len() as u64);
    let parts = par::map_chunks_counted(threads.get(), &shards, shards.len(), obs, "mc", |_, shard| {
        let mut good = 0usize;
        let mut shipped = 0usize;
        let mut escapes = 0usize;
        for &(stream, dies) in shard {
            let mut rng = crate::rng::Xorshift64Star::split(config.seed, stream);
            for _ in 0..dies {
                let mut any_fault = false;
                let mut any_detected = false;
                for (j, &p) in probabilities.iter().enumerate() {
                    if rng.next_f64() < p {
                        any_fault = true;
                        if detected[j] {
                            any_detected = true;
                            // Faster: once scrapped the die's remaining
                            // faults cannot change the outcome, but we keep
                            // rolling so the shard's RNG stream stays
                            // aligned per die count — determinism over
                            // micro-optimisation here.
                        }
                    }
                }
                if !any_fault {
                    good += 1;
                }
                if !any_detected {
                    shipped += 1;
                    if any_fault {
                        escapes += 1;
                    }
                }
            }
        }
        (good, shipped, escapes)
    });
    let mut good = 0usize;
    let mut shipped = 0usize;
    let mut escapes = 0usize;
    for (g, s, e) in parts {
        good += g;
        shipped += s;
        escapes += e;
        // `parts` is in chunk order, so this per-shard escape histogram
        // is deterministic for every thread count.
        obs.observe("mc.shard_escapes", e as f64);
    }
    obs.add("mc.good", good as u64);
    obs.add("mc.shipped", shipped as u64);
    obs.add("mc.escapes", escapes as u64);
    Ok(FalloutEstimate {
        fabricated: config.dies,
        good,
        shipped,
        escapes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(n: usize, y: f64) -> FaultWeights {
        FaultWeights::new(vec![1.0; n])
            .unwrap()
            .scaled_to_yield(y)
            .unwrap()
    }

    #[test]
    fn yield_estimate_matches_formula() {
        let w = weights(20, 0.75);
        let detected = vec![false; 20];
        let est = simulate_fallout(
            &w,
            &detected,
            &MonteCarloConfig {
                dies: 200_000,
                seed: 1,
            },
        )
        .unwrap();
        assert!(
            (est.yield_estimate() - 0.75).abs() < 0.005,
            "{}",
            est.yield_estimate()
        );
        // Nothing detected: everything ships, DL = 1 - Y.
        assert_eq!(est.shipped, est.fabricated);
        assert!((est.defect_level() - 0.25).abs() < 0.005);
    }

    #[test]
    fn full_detection_ships_no_escapes() {
        let w = weights(10, 0.8);
        let est = simulate_fallout(&w, &[true; 10], &MonteCarloConfig::default()).unwrap();
        assert_eq!(est.escapes, 0);
        assert!(est.shipped < est.fabricated, "some dies must be scrapped");
        assert_eq!(est.defect_level(), 0.0);
    }

    #[test]
    fn estimate_converges_to_eq3_with_skewed_weights() {
        // Heavily skewed weights — the regime where eq. 3 differs most
        // from the unweighted intuition.
        let raw: Vec<f64> = (0..30).map(|j| 1.5f64.powi(j)).collect();
        let w = FaultWeights::new(raw)
            .unwrap()
            .scaled_to_yield(0.7)
            .unwrap();
        let detected: Vec<bool> = (0..30).map(|j| j % 3 != 0).collect();
        let theta = w.theta(&detected).unwrap();
        let formula = w.defect_level(theta).unwrap();
        let est = simulate_fallout(
            &w,
            &detected,
            &MonteCarloConfig {
                dies: 300_000,
                seed: 9,
            },
        )
        .unwrap();
        assert!(
            (est.defect_level() - formula).abs() < 0.004,
            "MC {} vs eq.3 {}",
            est.defect_level(),
            formula
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let w = weights(5, 0.9);
        let d = vec![true, false, true, false, true];
        let cfg = MonteCarloConfig {
            dies: 10_000,
            seed: 42,
        };
        assert_eq!(
            simulate_fallout(&w, &d, &cfg).unwrap(),
            simulate_fallout(&w, &d, &cfg).unwrap()
        );
    }

    #[test]
    fn identical_across_thread_counts() {
        let w = weights(8, 0.7);
        let d = vec![true, true, false, true, false, false, true, true];
        // Straddle a shard boundary (dies not a multiple of SHARD_DIES).
        let cfg = MonteCarloConfig {
            dies: 3 * SHARD_DIES + 57,
            seed: 0xFEED,
        };
        let reference =
            simulate_fallout_with(&w, &d, &cfg, ThreadCount::fixed(1).unwrap()).unwrap();
        for t in [2usize, 4] {
            assert_eq!(
                simulate_fallout_with(&w, &d, &cfg, ThreadCount::fixed(t).unwrap()).unwrap(),
                reference,
                "threads={t}"
            );
        }
    }

    #[test]
    fn tracing_does_not_perturb_the_estimate() {
        let w = weights(8, 0.7);
        let d = vec![true, true, false, true, false, false, true, true];
        let cfg = MonteCarloConfig {
            dies: 2 * SHARD_DIES + 19,
            seed: 0xACE,
        };
        let plain = simulate_fallout_with(&w, &d, &cfg, ThreadCount::fixed(1).unwrap()).unwrap();
        for t in [1usize, 4] {
            let obs = Recorder::enabled();
            let traced =
                simulate_fallout_obs(&w, &d, &cfg, ThreadCount::fixed(t).unwrap(), &obs).unwrap();
            assert_eq!(traced, plain, "threads={t}");
            let report = obs.report("mc");
            assert_eq!(report.counter("mc.dies"), Some(cfg.dies as u64));
            assert_eq!(report.counter("mc.shards"), Some(3));
            assert_eq!(report.counter("mc.good"), Some(plain.good as u64));
            assert_eq!(report.counter("mc.shipped"), Some(plain.shipped as u64));
            assert_eq!(report.counter("mc.escapes"), Some(plain.escapes as u64));
            assert!(report.span_nanos("montecarlo").is_some());
            let worker_total: u64 = report
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("mc.worker") && n.ends_with(".items"))
                .map(|&(_, v)| v)
                .sum();
            assert_eq!(worker_total, 3, "every shard attributed to a worker");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let w = weights(3, 0.9);
        assert!(simulate_fallout(&w, &[true], &MonteCarloConfig::default()).is_err());
        assert!(simulate_fallout(&w, &[true; 3], &MonteCarloConfig { dies: 0, seed: 1 }).is_err());
    }

    #[test]
    fn mc_tracks_formula() {
        for (seed, y) in [(3u64, 0.55), (77, 0.62), (191, 0.7), (260, 0.78), (333, 0.82), (401, 0.86), (449, 0.88), (499, 0.58)] {
            let raw: Vec<f64> = (0..12).map(|j| 1.0 + (j as f64) * 0.7).collect();
            let w = FaultWeights::new(raw).unwrap().scaled_to_yield(y).unwrap();
            let detected: Vec<bool> = (0..12).map(|j| (seed >> (j % 8)) & 1 == 1).collect();
            let theta = w.theta(&detected).unwrap();
            let formula = w.defect_level(theta).unwrap();
            let est = simulate_fallout(&w, &detected, &MonteCarloConfig { dies: 60_000, seed })
                .unwrap();
            assert!(
                (est.defect_level() - formula).abs() < 0.02,
                "seed={seed} y={y}: MC {} vs eq.3 {}",
                est.defect_level(),
                formula
            );
        }
    }
}
