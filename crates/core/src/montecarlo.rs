//! Monte Carlo fallout simulation — a statistical cross-check of the
//! weighted defect-level formula (eq. 3).
//!
//! The paper's eq. 3 (`DL = 1 − Y^(1−θ)`) is derived from independent
//! Poisson fault occurrences. This module *simulates the production line
//! directly*: dice are rolled per die and per fault, dies failing any
//! detected fault are scrapped, and the shipped-defective ratio is
//! counted. The estimate must converge to eq. 3 — a strong end-to-end
//! validation of the model implementation that needs no external data.
//!
//! ## Compound (mixed-Poisson) fallout
//!
//! Real fabrication defects cluster: the per-die defect count is not
//! Poisson but a *mixed* Poisson, where each die's expected count is
//! scaled by a random multiplier (gamma mixing gives Stapper's
//! negative-binomial yield). The engine supports this through the
//! [`DieMix`] hook: before a die's per-fault dice are rolled, the hook
//! supplies a weight multiplier `g`, and fault `j` then strikes with
//! probability `1 − e^(−w_j · g)`. The independent-Poisson model is the
//! [`UnitMix`] instance (`g ≡ 1`, consuming no randomness), which makes
//! [`simulate_fallout`] *bit-identical* to the historical engine. The
//! clustered and hierarchical mixes live in the `dlp-yield` crate.

use crate::budget::{BudgetExceeded, RunBudget};
use crate::ckpt::{self, CkptError, KeyHasher};
use crate::obs::{Json, Recorder};
use crate::par::{self, ThreadCount};
use crate::rng::Xorshift64Star;
use crate::weighted::FaultWeights;
use crate::ModelError;

/// Dies per RNG shard. Shard `s` always covers dies
/// `[s · SHARD_DIES, (s+1) · SHARD_DIES)` and draws from the stream
/// `Xorshift64Star::split(seed, s)`, so the decomposition — and the
/// counted outcome — is a function of `(dies, seed)` alone, never of the
/// worker count.
const SHARD_DIES: usize = 4096;

/// Monte Carlo settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloConfig {
    /// Number of dies to fabricate.
    pub dies: usize,
    /// RNG seed (xorshift64*; self-contained, no external dependency).
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            dies: 100_000,
            seed: 0x5EED,
        }
    }
}

/// Per-die weight-multiplier hook for compound (mixed-Poisson) fallout.
///
/// The engine calls [`DieMix::multiplier`] once per die, *before* the
/// per-fault dice are rolled, handing it the run's master seed, the
/// global die index, and the die's shard RNG stream. The returned `g`
/// scales every fault weight: fault `j` strikes with probability
/// `1 − e^(−w_j · g)`.
///
/// Implementations must be deterministic functions of
/// `(seed, die, rng state)` — the engine's thread-count invariance and
/// checkpoint/resume guarantees only hold if the multiplier depends on
/// nothing else. Die-level mixing should draw from `rng` (the shard
/// stream); wafer- or lot-level mixing shared across dies must instead
/// derive its own sub-stream from `seed` and the die index, since a
/// wafer can straddle shard boundaries.
pub trait DieMix: Sync {
    /// Folds the mix's identity and parameters into a checkpoint key, so
    /// a resume checkpoint written under one distribution can never be
    /// replayed under another. [`UnitMix`] writes nothing — legacy
    /// Poisson checkpoint keys stay valid.
    fn write_key(&self, h: &mut KeyHasher);

    /// The weight multiplier for the die with global index `die`.
    /// `rng` is positioned at the die's first draw; whatever the hook
    /// consumes shifts the die's subsequent per-fault draws (still
    /// deterministic — the stream is a pure function of `(seed, shard)`).
    fn multiplier(&self, seed: u64, die: u64, rng: &mut Xorshift64Star) -> f64;
}

/// The independent-Poisson mix: every die's multiplier is exactly `1`,
/// no randomness is consumed, and no key bytes are written — the
/// historical engine, bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitMix;

impl DieMix for UnitMix {
    fn write_key(&self, _h: &mut KeyHasher) {}

    fn multiplier(&self, _seed: u64, _die: u64, _rng: &mut Xorshift64Star) -> f64 {
        1.0
    }
}

/// Counted production outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FalloutEstimate {
    /// Dies fabricated.
    pub fabricated: usize,
    /// Dies with no fault at all (true yield numerator).
    pub good: usize,
    /// Dies passing the test (shipped).
    pub shipped: usize,
    /// Shipped dies that carry at least one (undetected) fault.
    pub escapes: usize,
}

impl FalloutEstimate {
    /// The measured yield `good / fabricated`.
    pub fn yield_estimate(&self) -> f64 {
        self.good as f64 / self.fabricated.max(1) as f64
    }

    /// The measured defect level `escapes / shipped`.
    pub fn defect_level(&self) -> f64 {
        if self.shipped == 0 {
            0.0
        } else {
            self.escapes as f64 / self.shipped as f64
        }
    }
}

/// Resume state of an interrupted Monte-Carlo fallout run.
///
/// One entry per completed RNG shard, in shard order: because shard `s`
/// always draws from the split stream `s`, "RNG stream position" is
/// simply the number of completed shards — no generator state needs to
/// be serialised. Produced by [`simulate_fallout_resumable`] inside
/// [`ModelError::Interrupted`]; feed it back via the `resume` parameter
/// to continue bit-identically.
#[derive(Clone, PartialEq, Eq)]
pub struct McCheckpoint {
    /// `(good, shipped, escapes)` for each completed leading shard.
    pub tallies: Vec<(usize, usize, usize)>,
}

impl std::fmt::Debug for McCheckpoint {
    // One tally per completed shard — thousands for large die counts —
    // so a derived Debug would flood any error message that embeds the
    // checkpoint; only the aggregate is shown.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (good, shipped, escapes) = self.tallies.iter().fold(
            (0usize, 0usize, 0usize),
            |(g, s, e), &(tg, ts, te)| (g + tg, s + ts, e + te),
        );
        f.debug_struct("McCheckpoint")
            .field("completed_shards", &self.tallies.len())
            .field("good", &good)
            .field("shipped", &shipped)
            .field("escapes", &escapes)
            .finish()
    }
}

/// The envelope `kind` of Monte-Carlo checkpoints.
pub const MC_CKPT_KIND: &str = "mc.fallout";

impl McCheckpoint {
    /// The checkpoint key binding this run's inputs: per-fault strike
    /// probabilities, detection mask, die count, and seed.
    pub fn key(weights: &FaultWeights, detected: &[bool], config: &MonteCarloConfig) -> u64 {
        McCheckpoint::key_mixed(weights, detected, config, &UnitMix)
    }

    /// [`McCheckpoint::key`] for a compound run: the [`DieMix`]'s
    /// identity and parameters are folded in after the base inputs, so a
    /// clustered checkpoint never resumes a Poisson run (or vice versa).
    /// For [`UnitMix`] this equals [`McCheckpoint::key`] exactly.
    pub fn key_mixed(
        weights: &FaultWeights,
        detected: &[bool],
        config: &MonteCarloConfig,
        mix: &dyn DieMix,
    ) -> u64 {
        let mut h = KeyHasher::new();
        h.write_usize(weights.len());
        for j in 0..weights.len() {
            h.write_f64(weights.probability(j));
        }
        h.write_usize(detected.len());
        for &d in detected {
            h.write_bool(d);
        }
        h.write_usize(config.dies);
        h.write_u64(config.seed);
        mix.write_key(&mut h);
        h.finish()
    }

    /// The checkpoint payload: `{"tallies": [[good, shipped, escapes], ...]}`.
    pub fn to_payload(&self) -> Json {
        let tallies = self
            .tallies
            .iter()
            .map(|&(g, s, e)| {
                Json::Array(vec![
                    Json::Number(g as f64),
                    Json::Number(s as f64),
                    Json::Number(e as f64),
                ])
            })
            .collect();
        Json::Object(vec![("tallies".to_string(), Json::Array(tallies))])
    }

    /// Decodes a payload produced by [`McCheckpoint::to_payload`].
    ///
    /// # Errors
    ///
    /// [`CkptError::Malformed`] if the payload does not have the
    /// expected shape (non-array tallies, non-integer counts).
    pub fn from_payload(payload: &Json) -> Result<McCheckpoint, CkptError> {
        let tallies = payload
            .get("tallies")
            .and_then(Json::as_array)
            .ok_or(CkptError::Malformed {
                what: "missing tallies array",
            })?;
        let mut out = Vec::with_capacity(tallies.len());
        for row in tallies {
            let row = row.as_array().filter(|r| r.len() == 3).ok_or({
                CkptError::Malformed {
                    what: "tally row is not a 3-element array",
                }
            })?;
            let mut counts = [0usize; 3];
            for (slot, v) in counts.iter_mut().zip(row) {
                *slot = v
                    .as_f64()
                    .filter(|x| *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53))
                    .map(|x| x as usize)
                    .ok_or(CkptError::Malformed {
                        what: "tally count is not a non-negative integer",
                    })?;
            }
            out.push((counts[0], counts[1], counts[2]));
        }
        Ok(McCheckpoint { tallies: out })
    }

    /// Seals and atomically writes this checkpoint for the given inputs.
    ///
    /// # Errors
    ///
    /// [`CkptError::Io`] if the atomic write fails.
    pub fn save_to(
        &self,
        path: &str,
        weights: &FaultWeights,
        detected: &[bool],
        config: &MonteCarloConfig,
    ) -> Result<(), CkptError> {
        let key = McCheckpoint::key(weights, detected, config);
        ckpt::save(path, MC_CKPT_KIND, key, &self.to_payload())
    }

    /// Loads and fully verifies a checkpoint written by
    /// [`McCheckpoint::save_to`] against the given inputs.
    ///
    /// # Errors
    ///
    /// Any [`CkptError`]: unreadable file, corrupt envelope, wrong
    /// version/kind/key, checksum mismatch, or malformed payload.
    pub fn load_from(
        path: &str,
        weights: &FaultWeights,
        detected: &[bool],
        config: &MonteCarloConfig,
    ) -> Result<McCheckpoint, CkptError> {
        let key = McCheckpoint::key(weights, detected, config);
        let payload = ckpt::load(path, MC_CKPT_KIND, key)?;
        McCheckpoint::from_payload(&payload)
    }
}

/// Simulates fabrication and test of `config.dies` dies.
///
/// Fault `j` strikes a die with probability `p_j = 1 − e^(−w_j)`
/// independently; the tester scraps the die iff some struck fault is in
/// the detected set.
///
/// Dies are processed in fixed-size shards with per-shard RNG streams
/// split deterministically from `config.seed`, spread over the worker
/// count resolved from `DLP_THREADS` (default: available parallelism).
/// The counted outcome is bit-identical for every thread count; see
/// [`simulate_fallout_with`] for explicit thread control.
///
/// # Errors
///
/// [`ModelError::BadFitData`] if `detected.len()` mismatches the fault
/// count or `config.dies == 0`; [`ModelError::BadThreadCount`] if the
/// `DLP_THREADS` environment variable is set to `0` or garbage.
///
/// # Example
///
/// ```
/// use dlp_core::montecarlo::{simulate_fallout, MonteCarloConfig};
/// use dlp_core::weighted::FaultWeights;
///
/// let w = FaultWeights::new(vec![0.05; 10])?.scaled_to_yield(0.75)?;
/// // Detect the first 7 of 10 equal faults: theta = 0.7.
/// let detected: Vec<bool> = (0..10).map(|j| j < 7).collect();
/// let est = simulate_fallout(&w, &detected, &MonteCarloConfig::default())?;
/// let formula = w.defect_level(w.theta(&detected)?)?;
/// assert!((est.defect_level() - formula).abs() < 0.01);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
pub fn simulate_fallout(
    weights: &FaultWeights,
    detected: &[bool],
    config: &MonteCarloConfig,
) -> Result<FalloutEstimate, ModelError> {
    simulate_fallout_with(weights, detected, config, ThreadCount::from_env()?)
}

/// [`simulate_fallout`] with an explicit worker count.
///
/// # Errors
///
/// [`ModelError::BadFitData`] if `detected.len()` mismatches the fault
/// count or `config.dies == 0`.
pub fn simulate_fallout_with(
    weights: &FaultWeights,
    detected: &[bool],
    config: &MonteCarloConfig,
    threads: ThreadCount,
) -> Result<FalloutEstimate, ModelError> {
    simulate_fallout_obs(weights, detected, config, threads, Recorder::noop())
}

/// [`simulate_fallout_with`] with observability: records the
/// `montecarlo` span, shard/die counters, fallout tallies
/// (`mc.good` / `mc.shipped` / `mc.escapes`), the per-shard escape
/// histogram (`mc.shard_escapes` — deterministic percentiles at any
/// thread count, since shards fold in chunk order), and per-worker
/// timeline telemetry (`mc.worker<i>.*`) into `obs`.
///
/// Recording is observation-only: the counted [`FalloutEstimate`] is
/// bit-identical to [`simulate_fallout_with`] for every thread count,
/// with tracing on or off.
///
/// # Errors
///
/// See [`simulate_fallout_with`].
pub fn simulate_fallout_obs(
    weights: &FaultWeights,
    detected: &[bool],
    config: &MonteCarloConfig,
    threads: ThreadCount,
    obs: &Recorder,
) -> Result<FalloutEstimate, ModelError> {
    simulate_fallout_resumable(weights, detected, config, threads, obs, &RunBudget::unlimited(), None)
}

/// [`simulate_fallout_obs`] with cooperative budget checks at shard
/// boundaries and checkpoint/resume.
///
/// With `resume = Some(checkpoint)`, the tallies of the checkpoint's
/// completed leading shards are replayed (the `mc.shard_escapes`
/// histogram included) and only the remaining shards are simulated, so
/// the result — estimate *and* deterministic trace content — is
/// bit-identical to an uninterrupted run at any thread count.
///
/// # Errors
///
/// - [`ModelError::BadFitData`] / [`ModelError::BadThreadCount`] as
///   [`simulate_fallout`];
/// - [`ModelError::BadCheckpoint`] if `resume` records more shards than
///   this run has;
/// - [`ModelError::Budget`] if the up-front memory estimate already
///   exceeds the budget (nothing was simulated);
/// - [`ModelError::Interrupted`] if the budget tripped at a shard
///   boundary — the embedded [`McCheckpoint`] resumes the run.
pub fn simulate_fallout_resumable(
    weights: &FaultWeights,
    detected: &[bool],
    config: &MonteCarloConfig,
    threads: ThreadCount,
    obs: &Recorder,
    budget: &RunBudget,
    resume: Option<&McCheckpoint>,
) -> Result<FalloutEstimate, ModelError> {
    simulate_fallout_mixed_resumable(weights, detected, config, &UnitMix, threads, obs, budget, resume)
}

/// [`simulate_fallout_resumable`] with a [`DieMix`] hook — the compound
/// (mixed-Poisson) production line. Each die's fault weights are scaled
/// by `mix.multiplier(...)` before its per-fault dice are rolled.
///
/// All engine guarantees carry over unchanged: the counted outcome (and
/// the deterministic trace content) is bit-identical at every thread
/// count, budget checks run at shard boundaries, and an interrupted run
/// resumes bit-identically from the embedded [`McCheckpoint`] — provided
/// the same `mix` is supplied (bind checkpoints to it via
/// [`McCheckpoint::key_mixed`]). With [`UnitMix`] this *is*
/// [`simulate_fallout_resumable`], bit for bit.
///
/// # Errors
///
/// See [`simulate_fallout_resumable`].
#[allow(clippy::too_many_arguments)] // the resumable engine's full surface
pub fn simulate_fallout_mixed_resumable(
    weights: &FaultWeights,
    detected: &[bool],
    config: &MonteCarloConfig,
    mix: &dyn DieMix,
    threads: ThreadCount,
    obs: &Recorder,
    budget: &RunBudget,
    resume: Option<&McCheckpoint>,
) -> Result<FalloutEstimate, ModelError> {
    let _span = obs.span("montecarlo");
    if detected.len() != weights.len() {
        return Err(ModelError::BadFitData("detection mask length mismatch"));
    }
    if config.dies == 0 {
        return Err(ModelError::BadFitData("zero dies requested"));
    }
    let shard_count = config.dies.div_ceil(SHARD_DIES);
    // The stage's dominant allocations: per-fault probabilities and the
    // shard descriptors (the per-chunk result slots are the same size).
    let estimated_bytes = (weights.len() * std::mem::size_of::<f64>()
        + shard_count
            * (std::mem::size_of::<(u64, usize)>()
                + std::mem::size_of::<(usize, usize, usize)>())) as u64;
    if let Err(reason) = budget.check_memory(estimated_bytes) {
        return Err(ModelError::Budget(BudgetExceeded {
            reason,
            completed: 0,
            total: shard_count as u64,
        }));
    }
    let done = resume.map_or(&[][..], |c| c.tallies.as_slice());
    if done.len() > shard_count {
        return Err(ModelError::BadCheckpoint {
            what: "checkpoint records more shards than this run has",
        });
    }
    let probabilities: Vec<f64> = (0..weights.len()).map(|j| weights.probability(j)).collect();
    let raw_weights = weights.weights();

    // Shard descriptors: (stream index, dies in shard). The last shard
    // takes the remainder.
    let shards: Vec<(u64, usize)> = (0..shard_count)
        .map(|s| (s as u64, SHARD_DIES.min(config.dies - s * SHARD_DIES)))
        .collect();
    obs.add("mc.shards", shards.len() as u64);
    obs.add("mc.dies", config.dies as u64);
    obs.add("mc.faults", weights.len() as u64);
    let simulated = par::map_chunks_budgeted(
        threads.get(),
        &shards[done.len()..],
        shards.len() - done.len(),
        obs,
        "mc",
        budget,
        |_, shard| {
            let mut good = 0usize;
            let mut shipped = 0usize;
            let mut escapes = 0usize;
            for &(stream, dies) in shard {
                let mut rng = crate::rng::Xorshift64Star::split(config.seed, stream);
                let first_die = stream * SHARD_DIES as u64;
                for i in 0..dies {
                    let g = mix.multiplier(config.seed, first_die + i as u64, &mut rng);
                    let mut any_fault = false;
                    let mut any_detected = false;
                    for (j, &p) in probabilities.iter().enumerate() {
                        // `g == 1.0` takes the precomputed probability —
                        // the exact float the historical Poisson engine
                        // compared against, so UnitMix stays bit-identical.
                        let p = if g == 1.0 {
                            p
                        } else {
                            1.0 - (-raw_weights[j] * g).exp()
                        };
                        if rng.next_f64() < p {
                            any_fault = true;
                            if detected[j] {
                                any_detected = true;
                                // Faster: once scrapped the die's remaining
                                // faults cannot change the outcome, but we keep
                                // rolling so the shard's RNG stream stays
                                // aligned per die count — determinism over
                                // micro-optimisation here.
                            }
                        }
                    }
                    if !any_fault {
                        good += 1;
                    }
                    if !any_detected {
                        shipped += 1;
                        if any_fault {
                            escapes += 1;
                        }
                    }
                }
            }
            (good, shipped, escapes)
        },
    );
    let (parts, interrupted) = match simulated {
        Ok(parts) => (parts, None),
        Err(par::Interrupted { prefix, budget }) => (prefix, Some(budget)),
    };
    let mut good = 0usize;
    let mut shipped = 0usize;
    let mut escapes = 0usize;
    // Replayed checkpoint tallies first, then freshly simulated shards:
    // together a contiguous leading run in shard order, so the
    // per-shard escape histogram is deterministic for every thread
    // count and identical whether or not the run was ever interrupted.
    for &(g, s, e) in done.iter().chain(&parts) {
        good += g;
        shipped += s;
        escapes += e;
        obs.observe("mc.shard_escapes", e as f64);
    }
    if let Some(mut budget) = interrupted {
        budget.completed += done.len() as u64;
        budget.total = shards.len() as u64;
        let tallies = done.iter().copied().chain(parts).collect();
        return Err(ModelError::Interrupted {
            budget,
            checkpoint: Box::new(McCheckpoint { tallies }),
        });
    }
    obs.add("mc.good", good as u64);
    obs.add("mc.shipped", shipped as u64);
    obs.add("mc.escapes", escapes as u64);
    Ok(FalloutEstimate {
        fabricated: config.dies,
        good,
        shipped,
        escapes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(n: usize, y: f64) -> FaultWeights {
        FaultWeights::new(vec![1.0; n])
            .unwrap()
            .scaled_to_yield(y)
            .unwrap()
    }

    #[test]
    fn yield_estimate_matches_formula() {
        let w = weights(20, 0.75);
        let detected = vec![false; 20];
        let est = simulate_fallout(
            &w,
            &detected,
            &MonteCarloConfig {
                dies: 200_000,
                seed: 1,
            },
        )
        .unwrap();
        assert!(
            (est.yield_estimate() - 0.75).abs() < 0.005,
            "{}",
            est.yield_estimate()
        );
        // Nothing detected: everything ships, DL = 1 - Y.
        assert_eq!(est.shipped, est.fabricated);
        assert!((est.defect_level() - 0.25).abs() < 0.005);
    }

    #[test]
    fn full_detection_ships_no_escapes() {
        let w = weights(10, 0.8);
        let est = simulate_fallout(&w, &[true; 10], &MonteCarloConfig::default()).unwrap();
        assert_eq!(est.escapes, 0);
        assert!(est.shipped < est.fabricated, "some dies must be scrapped");
        assert_eq!(est.defect_level(), 0.0);
    }

    #[test]
    fn estimate_converges_to_eq3_with_skewed_weights() {
        // Heavily skewed weights — the regime where eq. 3 differs most
        // from the unweighted intuition.
        let raw: Vec<f64> = (0..30).map(|j| 1.5f64.powi(j)).collect();
        let w = FaultWeights::new(raw)
            .unwrap()
            .scaled_to_yield(0.7)
            .unwrap();
        let detected: Vec<bool> = (0..30).map(|j| j % 3 != 0).collect();
        let theta = w.theta(&detected).unwrap();
        let formula = w.defect_level(theta).unwrap();
        let est = simulate_fallout(
            &w,
            &detected,
            &MonteCarloConfig {
                dies: 300_000,
                seed: 9,
            },
        )
        .unwrap();
        assert!(
            (est.defect_level() - formula).abs() < 0.004,
            "MC {} vs eq.3 {}",
            est.defect_level(),
            formula
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let w = weights(5, 0.9);
        let d = vec![true, false, true, false, true];
        let cfg = MonteCarloConfig {
            dies: 10_000,
            seed: 42,
        };
        assert_eq!(
            simulate_fallout(&w, &d, &cfg).unwrap(),
            simulate_fallout(&w, &d, &cfg).unwrap()
        );
    }

    #[test]
    fn identical_across_thread_counts() {
        let w = weights(8, 0.7);
        let d = vec![true, true, false, true, false, false, true, true];
        // Straddle a shard boundary (dies not a multiple of SHARD_DIES).
        let cfg = MonteCarloConfig {
            dies: 3 * SHARD_DIES + 57,
            seed: 0xFEED,
        };
        let reference =
            simulate_fallout_with(&w, &d, &cfg, ThreadCount::fixed(1).unwrap()).unwrap();
        for t in [2usize, 4] {
            assert_eq!(
                simulate_fallout_with(&w, &d, &cfg, ThreadCount::fixed(t).unwrap()).unwrap(),
                reference,
                "threads={t}"
            );
        }
    }

    #[test]
    fn tracing_does_not_perturb_the_estimate() {
        let w = weights(8, 0.7);
        let d = vec![true, true, false, true, false, false, true, true];
        let cfg = MonteCarloConfig {
            dies: 2 * SHARD_DIES + 19,
            seed: 0xACE,
        };
        let plain = simulate_fallout_with(&w, &d, &cfg, ThreadCount::fixed(1).unwrap()).unwrap();
        for t in [1usize, 4] {
            let obs = Recorder::enabled();
            let traced =
                simulate_fallout_obs(&w, &d, &cfg, ThreadCount::fixed(t).unwrap(), &obs).unwrap();
            assert_eq!(traced, plain, "threads={t}");
            let report = obs.report("mc");
            assert_eq!(report.counter("mc.dies"), Some(cfg.dies as u64));
            assert_eq!(report.counter("mc.shards"), Some(3));
            assert_eq!(report.counter("mc.good"), Some(plain.good as u64));
            assert_eq!(report.counter("mc.shipped"), Some(plain.shipped as u64));
            assert_eq!(report.counter("mc.escapes"), Some(plain.escapes as u64));
            assert!(report.span_nanos("montecarlo").is_some());
            let worker_total: u64 = report
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("mc.worker") && n.ends_with(".items"))
                .map(|&(_, v)| v)
                .sum();
            assert_eq!(worker_total, 3, "every shard attributed to a worker");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let w = weights(3, 0.9);
        assert!(simulate_fallout(&w, &[true], &MonteCarloConfig::default()).is_err());
        assert!(simulate_fallout(&w, &[true; 3], &MonteCarloConfig { dies: 0, seed: 1 }).is_err());
    }

    /// A deterministic non-unit mix for engine tests: doubles every
    /// odd-indexed die's weights and burns one shard-stream draw per die.
    struct DoubleOddDies;

    impl DieMix for DoubleOddDies {
        fn write_key(&self, h: &mut KeyHasher) {
            h.write_bytes(b"test.double-odd");
        }

        fn multiplier(&self, _seed: u64, die: u64, rng: &mut Xorshift64Star) -> f64 {
            let _ = rng.next_f64(); // variable stream consumption is allowed
            if die % 2 == 1 {
                2.0
            } else {
                1.0
            }
        }
    }

    #[test]
    fn unit_mix_keys_and_results_match_the_legacy_engine() {
        let w = weights(6, 0.8);
        let d = vec![true, false, true, true, false, true];
        let cfg = MonteCarloConfig {
            dies: 2 * SHARD_DIES + 77,
            seed: 0xD1E5,
        };
        assert_eq!(
            McCheckpoint::key(&w, &d, &cfg),
            McCheckpoint::key_mixed(&w, &d, &cfg, &UnitMix),
            "UnitMix must not perturb legacy checkpoint keys"
        );
        assert_ne!(
            McCheckpoint::key(&w, &d, &cfg),
            McCheckpoint::key_mixed(&w, &d, &cfg, &DoubleOddDies),
            "a non-unit mix must move the key"
        );
        let legacy = simulate_fallout_with(&w, &d, &cfg, ThreadCount::fixed(1).unwrap()).unwrap();
        let mixed = simulate_fallout_mixed_resumable(
            &w,
            &d,
            &cfg,
            &UnitMix,
            ThreadCount::fixed(1).unwrap(),
            Recorder::noop(),
            &RunBudget::unlimited(),
            None,
        )
        .unwrap();
        assert_eq!(mixed, legacy);
    }

    #[test]
    fn mixed_engine_is_deterministic_across_thread_counts_and_resume() {
        let w = weights(7, 0.7);
        let d = vec![true, true, false, true, false, true, true];
        let cfg = MonteCarloConfig {
            dies: 3 * SHARD_DIES + 11, // 4 shards
            seed: 0xC1C1,
        };
        let reference = simulate_fallout_mixed_resumable(
            &w,
            &d,
            &cfg,
            &DoubleOddDies,
            ThreadCount::fixed(1).unwrap(),
            Recorder::noop(),
            &RunBudget::unlimited(),
            None,
        )
        .unwrap();
        let unit = simulate_fallout_with(&w, &d, &cfg, ThreadCount::fixed(1).unwrap()).unwrap();
        assert_ne!(reference, unit, "doubling weights must change the outcome");
        for t in [2usize, 4] {
            let got = simulate_fallout_mixed_resumable(
                &w,
                &d,
                &cfg,
                &DoubleOddDies,
                ThreadCount::fixed(t).unwrap(),
                Recorder::noop(),
                &RunBudget::unlimited(),
                None,
            )
            .unwrap();
            assert_eq!(got, reference, "threads={t}");
        }
        // Kill at every shard boundary, resume, and demand bit-identity.
        for kill in [1u64, 2, 3] {
            let err = simulate_fallout_mixed_resumable(
                &w,
                &d,
                &cfg,
                &DoubleOddDies,
                ThreadCount::fixed(2).unwrap(),
                Recorder::noop(),
                &RunBudget::unlimited().cancel_after_checks(kill),
                None,
            )
            .expect_err("fuse below shard count must interrupt");
            let checkpoint = match err {
                ModelError::Interrupted { checkpoint, .. } => checkpoint,
                other => panic!("kill={kill}: expected Interrupted, got {other:?}"),
            };
            let resumed = simulate_fallout_mixed_resumable(
                &w,
                &d,
                &cfg,
                &DoubleOddDies,
                ThreadCount::fixed(4).unwrap(),
                Recorder::noop(),
                &RunBudget::unlimited(),
                Some(&checkpoint),
            )
            .unwrap();
            assert_eq!(resumed, reference, "kill={kill}");
        }
    }

    /// Deterministic trace content of a run: everything except timing.
    #[allow(clippy::type_complexity)]
    fn trace_fingerprint(obs: &Recorder) -> (Vec<(String, u64)>, Option<(u64, Vec<(f64, u64)>)>) {
        let report = obs.report("mc");
        let counters = report
            .counters
            .iter()
            .filter(|(n, _)| {
                n.starts_with("mc.")
                    && !n.contains("worker")
                    && !n.contains("nanos")
                    && !n.contains("wall")
                    && !n.contains("slot")
            })
            .cloned()
            .collect();
        let hist = report
            .hist("mc.shard_escapes")
            .map(|h| (h.count, h.buckets.to_vec()));
        (counters, hist)
    }

    #[test]
    fn interrupt_and_resume_is_bit_identical() {
        let w = weights(8, 0.7);
        let d = vec![true, true, false, true, false, false, true, true];
        let cfg = MonteCarloConfig {
            dies: 5 * SHARD_DIES + 123, // 6 shards
            seed: 0xFEED,
        };
        let uninterrupted_obs = Recorder::enabled();
        let reference = simulate_fallout_obs(
            &w,
            &d,
            &cfg,
            ThreadCount::fixed(1).unwrap(),
            &uninterrupted_obs,
        )
        .unwrap();
        let reference_trace = trace_fingerprint(&uninterrupted_obs);
        for kill in [1u64, 2, 4, 5] {
            for t in [1usize, 2, 4] {
                let threads = ThreadCount::fixed(t).unwrap();
                let budget = RunBudget::unlimited().cancel_after_checks(kill);
                let err = simulate_fallout_resumable(
                    &w,
                    &d,
                    &cfg,
                    threads,
                    Recorder::noop(),
                    &budget,
                    None,
                )
                .expect_err("fuse below shard count must interrupt");
                let (budget_info, checkpoint) = match err {
                    ModelError::Interrupted { budget, checkpoint } => (budget, checkpoint),
                    other => panic!("kill={kill} t={t}: expected Interrupted, got {other:?}"),
                };
                assert_eq!(budget_info.completed, kill, "kill={kill} t={t}");
                assert_eq!(budget_info.total, 6);
                assert_eq!(checkpoint.tallies.len(), kill as usize);
                // Round-trip the checkpoint through its sealed envelope.
                let sealed = crate::ckpt::seal(
                    MC_CKPT_KIND,
                    McCheckpoint::key(&w, &d, &cfg),
                    &checkpoint.to_payload(),
                );
                let payload =
                    crate::ckpt::open(&sealed, MC_CKPT_KIND, McCheckpoint::key(&w, &d, &cfg))
                        .unwrap();
                let restored = McCheckpoint::from_payload(&payload).unwrap();
                assert_eq!(restored, *checkpoint);
                // Resume at a possibly different thread count.
                let resume_obs = Recorder::enabled();
                let resumed = simulate_fallout_resumable(
                    &w,
                    &d,
                    &cfg,
                    threads,
                    &resume_obs,
                    &RunBudget::unlimited(),
                    Some(&restored),
                )
                .unwrap();
                assert_eq!(resumed, reference, "kill={kill} t={t}");
                assert_eq!(
                    trace_fingerprint(&resume_obs),
                    reference_trace,
                    "kill={kill} t={t}: deterministic trace content must replay"
                );
            }
        }
    }

    #[test]
    fn double_interrupt_then_resume_still_matches() {
        let w = weights(6, 0.8);
        let d = vec![true, false, true, true, false, true];
        let cfg = MonteCarloConfig {
            dies: 4 * SHARD_DIES, // 4 shards
            seed: 7,
        };
        let reference =
            simulate_fallout_with(&w, &d, &cfg, ThreadCount::fixed(2).unwrap()).unwrap();
        let threads = ThreadCount::fixed(2).unwrap();
        let kill = |n: u64, resume: Option<&McCheckpoint>| {
            simulate_fallout_resumable(
                &w,
                &d,
                &cfg,
                threads,
                Recorder::noop(),
                &RunBudget::unlimited().cancel_after_checks(n),
                resume,
            )
        };
        let first = match kill(1, None) {
            Err(ModelError::Interrupted { checkpoint, .. }) => checkpoint,
            other => panic!("expected first interrupt, got {other:?}"),
        };
        let second = match kill(2, Some(&first)) {
            Err(ModelError::Interrupted { budget, checkpoint }) => {
                assert_eq!(budget.completed, 3, "1 replayed + 2 fresh shards");
                checkpoint
            }
            other => panic!("expected second interrupt, got {other:?}"),
        };
        assert_eq!(second.tallies.len(), 3);
        assert_eq!(second.tallies[..1], first.tallies[..]);
        let finished = simulate_fallout_resumable(
            &w,
            &d,
            &cfg,
            threads,
            Recorder::noop(),
            &RunBudget::unlimited(),
            Some(&second),
        )
        .unwrap();
        assert_eq!(finished, reference);
    }

    #[test]
    fn resume_rejects_oversized_and_foreign_checkpoints() {
        let w = weights(4, 0.9);
        let d = vec![true; 4];
        let cfg = MonteCarloConfig {
            dies: SHARD_DIES, // 1 shard
            seed: 1,
        };
        let oversized = McCheckpoint {
            tallies: vec![(1, 1, 0); 5],
        };
        assert!(matches!(
            simulate_fallout_resumable(
                &w,
                &d,
                &cfg,
                ThreadCount::fixed(1).unwrap(),
                Recorder::noop(),
                &RunBudget::unlimited(),
                Some(&oversized),
            ),
            Err(ModelError::BadCheckpoint { .. })
        ));
        // A checkpoint sealed for different inputs fails on its key.
        let other_cfg = MonteCarloConfig {
            dies: SHARD_DIES,
            seed: 2,
        };
        let sealed = crate::ckpt::seal(
            MC_CKPT_KIND,
            McCheckpoint::key(&w, &d, &other_cfg),
            &McCheckpoint { tallies: vec![] }.to_payload(),
        );
        assert!(matches!(
            crate::ckpt::open(&sealed, MC_CKPT_KIND, McCheckpoint::key(&w, &d, &cfg)),
            Err(crate::ckpt::CkptError::KeyMismatch { .. })
        ));
    }

    #[test]
    fn memory_budget_gates_up_front() {
        let w = weights(4, 0.9);
        let d = vec![true; 4];
        let cfg = MonteCarloConfig::default();
        let err = simulate_fallout_resumable(
            &w,
            &d,
            &cfg,
            ThreadCount::fixed(1).unwrap(),
            Recorder::noop(),
            &RunBudget::unlimited().with_memory_limit(16),
            None,
        )
        .expect_err("a 16-byte budget cannot hold the shard table");
        match err {
            ModelError::Budget(b) => {
                assert_eq!(b.completed, 0);
                assert!(matches!(b.reason, crate::budget::BudgetReason::Memory { .. }));
            }
            other => panic!("expected Budget, got {other:?}"),
        }
    }

    #[test]
    fn mc_checkpoint_payload_rejects_malformed_shapes() {
        for bad in [
            "{}",
            "{\"tallies\":3.0}",
            "{\"tallies\":[[1.0,2.0]]}",
            "{\"tallies\":[[1.0,2.0,-3.0]]}",
            "{\"tallies\":[[1.0,2.0,3.5]]}",
            "{\"tallies\":[\"x\"]}",
        ] {
            let payload = Json::parse(bad).unwrap();
            assert!(
                matches!(
                    McCheckpoint::from_payload(&payload),
                    Err(CkptError::Malformed { .. })
                ),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn mc_tracks_formula() {
        for (seed, y) in [(3u64, 0.55), (77, 0.62), (191, 0.7), (260, 0.78), (333, 0.82), (401, 0.86), (449, 0.88), (499, 0.58)] {
            let raw: Vec<f64> = (0..12).map(|j| 1.0 + (j as f64) * 0.7).collect();
            let w = FaultWeights::new(raw).unwrap().scaled_to_yield(y).unwrap();
            let detected: Vec<bool> = (0..12).map(|j| (seed >> (j % 8)) & 1 == 1).collect();
            let theta = w.theta(&detected).unwrap();
            let formula = w.defect_level(theta).unwrap();
            let est = simulate_fallout(&w, &detected, &MonteCarloConfig { dies: 60_000, seed })
                .unwrap();
            assert!(
                (est.defect_level() - formula).abs() < 0.02,
                "seed={seed} y={y}: MC {} vs eq.3 {}",
                est.defect_level(),
                formula
            );
        }
    }
}
