//! The DL(n) model layer for *n-detection* test sets.
//!
//! An n-detect test set detects every stuck-at fault at least `n` times,
//! so unmodeled realistic faults sharing those sites are caught
//! incidentally (Pomeranz & Reddy). Measuring the weighted realistic
//! coverage `θ(n)` of each set and feeding it through the paper's eq. 3
//! (`DL = 1 − Y^(1−θ)`) turns the detection multiplicity into a defect
//! level projection.
//!
//! Empirically `θ(n)` saturates: each extra required detection excites a
//! site under more distinct conditions, but the reachable realistic
//! coverage is bounded by `θ_max` (the analogue of eq. 11's saturation).
//! [`NDetectGrowth`] is the matching two-parameter law
//!
//! ```text
//! θ(n) = θ_max · (1 − ρ^n),   ρ = 1 − θ_1 / θ_max
//! ```
//!
//! anchored so that `θ(1) = θ_1`, and [`fit_ndetect_growth`] recovers
//! `(θ_1, θ_max)` from measured `(n, θ)` points by Nelder–Mead least
//! squares with the same smooth reparameterisation idiom as
//! [`crate::fit::fit_sousa`].

use crate::error::{check_open_unit, check_unit};
use crate::fit::{nelder_mead, NelderMeadOptions};
use crate::ModelError;

/// The saturating growth law `θ(n) = θ_max (1 − (1 − θ_1/θ_max)^n)`.
///
/// # Example
///
/// ```
/// use dlp_core::ndetect::NDetectGrowth;
///
/// let g = NDetectGrowth::new(0.6, 0.9)?;
/// assert!((g.at(1) - 0.6).abs() < 1e-12); // anchored at θ(1) = θ_1
/// assert!(g.at(8) < 0.9);                 // approaches θ_max from below
/// assert!(g.at(8) > g.at(2));             // monotone in n
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NDetectGrowth {
    theta1: f64,
    theta_max: f64,
}

impl NDetectGrowth {
    /// Builds the law from its anchor `θ_1 = θ(1)` and saturation level
    /// `θ_max`.
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] unless `0 < θ_1 ≤ θ_max ≤ 1`.
    pub fn new(theta1: f64, theta_max: f64) -> Result<Self, ModelError> {
        let theta_max = check_unit("theta_max", theta_max)?;
        if !(theta1 > 0.0 && theta1 <= theta_max) {
            return Err(ModelError::OutOfDomain {
                parameter: "theta_1",
                value: theta1,
                range: "(0, theta_max]",
            });
        }
        Ok(NDetectGrowth { theta1, theta_max })
    }

    /// The single-detection coverage `θ(1)`.
    pub fn theta1(&self) -> f64 {
        self.theta1
    }

    /// The saturation coverage `θ_max = lim θ(n)`.
    pub fn theta_max(&self) -> f64 {
        self.theta_max
    }

    /// The per-rank miss ratio `ρ = 1 − θ_1/θ_max`: the fraction of the
    /// reachable coverage still missing after each extra detection.
    pub fn miss_ratio(&self) -> f64 {
        1.0 - self.theta1 / self.theta_max
    }

    /// Evaluates `θ(n)`. `θ(0) = 0` by construction.
    pub fn at(&self, n: u32) -> f64 {
        self.theta_max * (1.0 - self.miss_ratio().powi(n as i32))
    }

    /// The projected defect level `DL(n) = 1 − Y^(1−θ(n))` (eq. 3) at
    /// process yield `y`.
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] unless `y ∈ (0, 1)`.
    pub fn defect_level(&self, y: f64, n: u32) -> Result<f64, ModelError> {
        let y = check_open_unit("yield", y)?;
        Ok(1.0 - y.powf(1.0 - self.at(n)))
    }
}

/// Fits [`NDetectGrowth`] to measured `(n, θ(n))` points by Nelder–Mead
/// least squares.
///
/// Constraints are enforced by smooth reparameterisation: the simplex
/// walks `(logit θ_max, logit(θ_1/θ_max))`, so every candidate satisfies
/// `0 < θ_1 ≤ θ_max < 1` by construction.
///
/// # Errors
///
/// [`ModelError::BadFitData`] for fewer than two points, a duplicate or
/// zero `n`, or a `θ` outside `[0, 1]`; [`ModelError::FitDiverged`] if
/// the simplex fails to contract.
///
/// # Example
///
/// ```
/// use dlp_core::ndetect::{fit_ndetect_growth, NDetectGrowth};
///
/// let truth = NDetectGrowth::new(0.55, 0.85)?;
/// let points: Vec<(u32, f64)> = (1..=8).map(|n| (n, truth.at(n))).collect();
/// let fitted = fit_ndetect_growth(&points)?;
/// assert!((fitted.theta1() - 0.55).abs() < 1e-4);
/// assert!((fitted.theta_max() - 0.85).abs() < 1e-4);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
pub fn fit_ndetect_growth(points: &[(u32, f64)]) -> Result<NDetectGrowth, ModelError> {
    if points.len() < 2 {
        return Err(ModelError::BadFitData(
            "need at least two (n, theta) points",
        ));
    }
    for &(n, theta) in points {
        if n == 0 {
            return Err(ModelError::BadFitData("n = 0 is not a test set"));
        }
        if !(0.0..=1.0).contains(&theta) {
            return Err(ModelError::BadFitData("theta outside [0, 1]"));
        }
    }
    for (i, &(n, _)) in points.iter().enumerate() {
        if points[i + 1..].iter().any(|&(m, _)| m == n) {
            return Err(ModelError::BadFitData("duplicate n in fit data"));
        }
    }

    let objective = |p: &[f64]| {
        let theta_max = 1.0 / (1.0 + (-p[0]).exp());
        let ratio = 1.0 / (1.0 + (-p[1]).exp());
        let Ok(model) = NDetectGrowth::new(ratio * theta_max, theta_max) else {
            return f64::INFINITY;
        };
        points
            .iter()
            .map(|&(n, theta)| {
                let r = model.at(n) - theta;
                r * r
            })
            .sum()
    };

    // Start from the first measured point as both anchor and a mid-range
    // saturation guess (logits of clamped values keep the start finite).
    let clamp = |x: f64| x.clamp(1e-6, 1.0 - 1e-6);
    let theta_last = clamp(points[points.len() - 1].1.max(0.5));
    let x0 = [
        (theta_last / (1.0 - theta_last)).ln(),
        0.0, // ratio 0.5
    ];
    let (p, _) = nelder_mead(
        objective,
        &x0,
        NelderMeadOptions {
            max_iterations: 4000,
            ..Default::default()
        },
    )?;
    let theta_max = 1.0 / (1.0 + (-p[0]).exp());
    let ratio = 1.0 / (1.0 + (-p[1]).exp());
    NDetectGrowth::new(ratio * theta_max, theta_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn law_is_anchored_monotone_and_saturating() {
        let g = NDetectGrowth::new(0.5, 0.8).unwrap();
        assert!((g.at(1) - 0.5).abs() < 1e-12);
        assert_eq!(g.at(0), 0.0);
        let mut prev = 0.0;
        for n in 1..=64 {
            let t = g.at(n);
            assert!(t >= prev - 1e-15, "θ(n) must not shrink at n = {n}");
            assert!(t <= 0.8 + 1e-12);
            prev = t;
        }
        assert!((g.at(64) - 0.8).abs() < 1e-6, "θ(n) must approach θ_max");
    }

    #[test]
    fn degenerate_flat_law_is_legal() {
        // θ_1 = θ_max: the first detection already reaches saturation.
        let g = NDetectGrowth::new(0.7, 0.7).unwrap();
        assert_eq!(g.miss_ratio(), 0.0);
        assert!((g.at(1) - 0.7).abs() < 1e-12);
        assert!((g.at(5) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn constructor_rejects_bad_parameters() {
        assert!(NDetectGrowth::new(0.0, 0.5).is_err());
        assert!(NDetectGrowth::new(-0.1, 0.5).is_err());
        assert!(NDetectGrowth::new(0.6, 0.5).is_err());
        assert!(NDetectGrowth::new(0.5, 1.1).is_err());
        assert!(NDetectGrowth::new(f64::NAN, 0.5).is_err());
        assert!(NDetectGrowth::new(0.5, f64::NAN).is_err());
    }

    #[test]
    fn defect_level_is_monotone_nonincreasing_in_n() {
        let g = NDetectGrowth::new(0.55, 0.92).unwrap();
        let mut prev = f64::INFINITY;
        for n in 1..=16 {
            let dl = g.defect_level(0.75, n).unwrap();
            assert!((0.0..=1.0).contains(&dl));
            assert!(dl <= prev + 1e-15, "DL must not rise with n = {n}");
            prev = dl;
        }
        assert!(g.defect_level(0.0, 1).is_err());
        assert!(g.defect_level(1.0, 1).is_err());
    }

    #[test]
    fn fit_recovers_known_parameters() {
        let truth = NDetectGrowth::new(0.48, 0.9).unwrap();
        let points: Vec<(u32, f64)> = (1..=8).map(|n| (n, truth.at(n))).collect();
        let fitted = fit_ndetect_growth(&points).unwrap();
        assert!((fitted.theta1() - truth.theta1()).abs() < 1e-4);
        assert!((fitted.theta_max() - truth.theta_max()).abs() < 1e-4);
    }

    #[test]
    fn fit_survives_noisy_points() {
        let truth = NDetectGrowth::new(0.6, 0.85).unwrap();
        // Deterministic ±0.005 perturbation.
        let points: Vec<(u32, f64)> = (1..=8)
            .map(|n| {
                let noise = if n % 2 == 0 { 0.005 } else { -0.005 };
                (n, (truth.at(n) + noise).clamp(0.0, 1.0))
            })
            .collect();
        let fitted = fit_ndetect_growth(&points).unwrap();
        assert!((fitted.theta1() - truth.theta1()).abs() < 0.05);
        assert!((fitted.theta_max() - truth.theta_max()).abs() < 0.05);
    }

    #[test]
    fn fit_rejects_degenerate_data() {
        assert!(fit_ndetect_growth(&[]).is_err());
        assert!(fit_ndetect_growth(&[(1, 0.5)]).is_err());
        assert!(fit_ndetect_growth(&[(0, 0.1), (1, 0.5)]).is_err());
        assert!(fit_ndetect_growth(&[(1, 0.5), (1, 0.6)]).is_err());
        assert!(fit_ndetect_growth(&[(1, 0.5), (2, 1.5)]).is_err());
        assert!(fit_ndetect_growth(&[(1, f64::NAN), (2, 0.5)]).is_err());
    }
}
