//! Dependency-free pipeline observability: stage-scoped spans, named
//! counters/gauges/series, and a JSON [`RunReport`].
//!
//! The extract → simulate → fit pipeline is exactly the kind of
//! multi-stage flow where silent data loss hides: a surprising `DL(T)`
//! curve gives no hint of *which* stage dropped faults or ate the
//! wall-clock. This module gives every stage a [`Recorder`] to write
//! into:
//!
//! * **spans** — monotonic wall-clock timing of a named scope
//!   ([`Recorder::span`] returns an RAII guard; nested/repeated spans
//!   accumulate `nanos` and `count`);
//! * **counters** — named monotonic `u64` tallies ([`Recorder::add`],
//!   [`Recorder::incr`]) such as faults enumerated or dies simulated;
//! * **gauges** — last-write-wins `f64` observations
//!   ([`Recorder::gauge`]) such as critical-area totals;
//! * **series** — append-only `f64` sequences ([`Recorder::push`]) such
//!   as the live-fault count per 64-pattern simulation block.
//!
//! A snapshot of everything recorded is a [`RunReport`], which
//! serialises to the same hand-rolled JSON style as the bench harness's
//! `BENCH_*.json` files and parses back with the minimal [`Json`]
//! reader (used by CI to validate emitted reports).
//!
//! # The `DLP_TRACE` contract
//!
//! Tracing defaults to **off**: the pipeline entry points take a
//! [`Recorder`] and callers that do not care pass [`Recorder::noop`],
//! whose methods return before touching any state (a branch on one
//! `bool` — no clock reads, no allocation, no locking). Binaries that
//! honour tracing resolve [`TraceSetting::from_env`]: `DLP_TRACE`
//! unset, empty, or `0` is off; `1` means "write the report to the
//! caller's default path"; anything else is the report path itself.
//!
//! # Determinism
//!
//! Recording never feeds back into computation: an enabled recorder
//! observes the pipeline but cannot perturb it, so results stay
//! bit-identical for every `DLP_THREADS` setting with tracing on or
//! off. The *report contents* are deterministic too, with one
//! documented exception: per-worker item tallies
//! (`<scope>.worker<i>.items`) depend on which worker won which chunk
//! and may vary run to run — their sum is invariant.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// The environment variable that enables trace reports.
pub const TRACE_ENV: &str = "DLP_TRACE";

/// Resolution of the `DLP_TRACE` environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSetting {
    /// Tracing disabled (unset, empty, or `0`).
    Off,
    /// Tracing enabled; write the report to the caller's default path
    /// (`DLP_TRACE=1`).
    Default,
    /// Tracing enabled; write the report to this path.
    Path(String),
}

impl TraceSetting {
    /// Reads [`TRACE_ENV`] from the environment.
    pub fn from_env() -> TraceSetting {
        Self::from_setting(std::env::var(TRACE_ENV).ok().as_deref())
    }

    /// Parses an explicit `DLP_TRACE`-style setting (`None` = unset).
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_core::obs::TraceSetting;
    ///
    /// assert_eq!(TraceSetting::from_setting(None), TraceSetting::Off);
    /// assert_eq!(TraceSetting::from_setting(Some("0")), TraceSetting::Off);
    /// assert_eq!(TraceSetting::from_setting(Some("1")), TraceSetting::Default);
    /// assert_eq!(
    ///     TraceSetting::from_setting(Some("out/trace.json")),
    ///     TraceSetting::Path("out/trace.json".into())
    /// );
    /// ```
    pub fn from_setting(setting: Option<&str>) -> TraceSetting {
        match setting.map(str::trim) {
            None | Some("") | Some("0") => TraceSetting::Off,
            Some("1") => TraceSetting::Default,
            Some(path) => TraceSetting::Path(path.to_string()),
        }
    }

    /// Whether tracing is enabled at all.
    pub fn is_on(&self) -> bool {
        *self != TraceSetting::Off
    }

    /// The report path: `default` under [`TraceSetting::Default`], the
    /// explicit path under [`TraceSetting::Path`], `None` when off.
    pub fn resolve(&self, default: &str) -> Option<String> {
        match self {
            TraceSetting::Off => None,
            TraceSetting::Default => Some(default.to_string()),
            TraceSetting::Path(p) => Some(p.clone()),
        }
    }
}

/// Accumulated timing of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct SpanStats {
    nanos: u64,
    count: u64,
}

#[derive(Debug, Default)]
struct State {
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<f64>>,
}

impl State {
    const fn new() -> State {
        State {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            series: BTreeMap::new(),
        }
    }
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The shared no-op recorder behind [`Recorder::noop`].
static NOOP: Recorder = Recorder::disabled();

/// Collects spans, counters, gauges, and series for one pipeline run.
///
/// `Recorder` is `Sync`: parallel workers may record concurrently (the
/// state sits behind a mutex). A disabled recorder ([`Recorder::noop`] /
/// [`Recorder::disabled`]) short-circuits every method on a single
/// `bool` — the overhead contract the benches verify.
///
/// # Example
///
/// ```
/// use dlp_core::obs::Recorder;
///
/// let obs = Recorder::enabled();
/// {
///     let _span = obs.span("extract");
///     obs.add("extract.faults", 128);
///     obs.gauge("extract.weight.total", 0.29);
///     obs.push("sim.live_per_block", 128.0);
/// }
/// let report = obs.report("demo");
/// assert_eq!(report.counter("extract.faults"), Some(128));
/// assert!(report.span_nanos("extract").is_some());
/// ```
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    state: Mutex<State>,
}

impl Recorder {
    /// A recorder that collects everything.
    pub const fn enabled() -> Recorder {
        Recorder {
            enabled: true,
            state: Mutex::new(State::new()),
        }
    }

    /// A recorder whose every method is a no-op.
    pub const fn disabled() -> Recorder {
        Recorder {
            enabled: false,
            state: Mutex::new(State::new()),
        }
    }

    /// The process-wide shared no-op recorder, for callers that do not
    /// trace.
    pub fn noop() -> &'static Recorder {
        &NOOP
    }

    /// A recorder matching a [`TraceSetting`]: collecting when the
    /// setting is on, no-op otherwise.
    pub fn from_setting(setting: &TraceSetting) -> Recorder {
        if setting.is_on() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Whether this recorder collects anything. Use to skip building
    /// expensive labels (e.g. `format!`ed counter names) up front.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a named span; the returned guard records the elapsed
    /// wall-clock time into the span's totals when dropped.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            recorder: self,
            name,
            start: self.enabled.then(Instant::now),
        }
    }

    /// Adds `delta` to the named monotonic counter (created at 0).
    pub fn add(&self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        if let Some(c) = state.counters.get_mut(name) {
            *c = c.saturating_add(delta);
        } else {
            state.counters.insert(name.to_string(), delta);
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        if let Some(g) = state.gauges.get_mut(name) {
            *g = value;
        } else {
            state.gauges.insert(name.to_string(), value);
        }
    }

    /// Appends `value` to the named series.
    pub fn push(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        if let Some(s) = state.series.get_mut(name) {
            s.push(value);
        } else {
            state.series.insert(name.to_string(), vec![value]);
        }
    }

    fn record_span(&self, name: &'static str, nanos: u64) {
        let mut state = lock_or_recover(&self.state);
        let stats = state.spans.entry(name.to_string()).or_default();
        stats.nanos = stats.nanos.saturating_add(nanos);
        stats.count += 1;
    }

    /// Snapshots everything recorded so far into a [`RunReport`].
    pub fn report(&self, name: &str) -> RunReport {
        let state = lock_or_recover(&self.state);
        RunReport {
            name: name.to_string(),
            spans: state
                .spans
                .iter()
                .map(|(n, s)| SpanEntry {
                    name: n.clone(),
                    nanos: s.nanos,
                    count: s.count,
                })
                .collect(),
            counters: state
                .counters
                .iter()
                .map(|(n, &v)| (n.clone(), v))
                .collect(),
            gauges: state.gauges.iter().map(|(n, &v)| (n.clone(), v)).collect(),
            series: state
                .series
                .iter()
                .map(|(n, v)| (n.clone(), v.clone()))
                .collect(),
        }
    }
}

/// RAII span guard from [`Recorder::span`]; records on drop.
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a Recorder,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.recorder.record_span(self.name, nanos);
        }
    }
}

/// Accumulated timing of one named span in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEntry {
    /// The span name.
    pub name: String,
    /// Total wall-clock nanoseconds across all executions.
    pub nanos: u64,
    /// How many times the span ran.
    pub count: u64,
}

/// An immutable snapshot of a [`Recorder`], serialisable to JSON.
///
/// The JSON shape (hand-rolled, like the bench harness reports):
///
/// ```json
/// {
///   "name": "full_flow_c432",
///   "spans": { "extract": { "nanos": 91342011, "count": 1 } },
///   "counters": { "extract.faults": 1182 },
///   "gauges": { "extract.weight.total": 0.2876 },
///   "series": { "sim.gate.live_per_block": [864, 131, 42] }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The run name (the `TRACE_<name>.json` stem by convention).
    pub name: String,
    /// Per-span accumulated timings, sorted by name.
    pub spans: Vec<SpanEntry>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Series, sorted by name.
    pub series: Vec<(String, Vec<f64>)>,
}

impl RunReport {
    /// Total nanoseconds of the named span, if recorded.
    pub fn span_nanos(&self, name: &str) -> Option<u64> {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.nanos)
    }

    /// The named counter's value, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The named gauge's value, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The named series, if recorded.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Serialises the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str("  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {}: {{ \"nanos\": {}, \"count\": {} }}",
                json_string(&s.name),
                s.nanos,
                s.count
            ));
        }
        out.push_str(if self.spans.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    {}: {v}", json_string(n)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    {}: {}", json_string(n), json_number(*v)));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"series\": {");
        for (i, (n, vs)) in self.series.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let body: Vec<String> = vs.iter().map(|&v| json_number(v)).collect();
            out.push_str(&format!("    {}: [{}]", json_string(n), body.join(", ")));
        }
        out.push_str(if self.series.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Writes [`to_json`](Self::to_json) to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite inputs,
/// which JSON cannot represent as numbers).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the fraction for integral floats; keep the
        // value round-trippable as a float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// A malformed JSON document, with the byte offset of the offence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A minimal parsed JSON value — just enough for CI to validate emitted
/// [`RunReport`]s without external dependencies.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite gauge values).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first malformed token.
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_core::obs::Json;
    ///
    /// let v = Json::parse(r#"{"counters": {"faults": 42}}"#)?;
    /// let faults = v.get("counters").and_then(|c| c.get("faults"));
    /// assert_eq!(faults.and_then(Json::as_f64), Some(42.0));
    /// # Ok::<(), dlp_core::obs::JsonError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing content after the document",
            });
        }
        Ok(value)
    }

    /// Object member lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, byte: u8, message: &'static str) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError {
            offset: *pos,
            message,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(JsonError {
            offset: *pos,
            message: "expected a JSON value",
        }),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError {
            offset: *pos,
            message: "malformed literal",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit()
            || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Number)
        .ok_or(JsonError {
            offset: start,
            message: "malformed number",
        })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect_byte(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    offset: *pos,
                    message: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or(JsonError {
                                offset: *pos,
                                message: "malformed \\u escape",
                            })?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => {
                        return Err(JsonError {
                            offset: *pos,
                            message: "unknown escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&byte) if byte < 0x20 => {
                return Err(JsonError {
                    offset: *pos,
                    message: "unescaped control character",
                })
            }
            Some(&byte) => {
                // Copy one UTF-8 scalar. The input came from a &str, so
                // the lead byte determines the sequence length and the
                // bytes are valid UTF-8 by construction.
                let len = utf8_len(byte);
                let chunk = bytes.get(*pos..*pos + len).ok_or(JsonError {
                    offset: *pos,
                    message: "truncated UTF-8 sequence",
                })?;
                let s = std::str::from_utf8(chunk).map_err(|_| JsonError {
                    offset: *pos,
                    message: "invalid UTF-8",
                })?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn utf8_len(lead: u8) -> usize {
    if lead < 0x80 {
        1
    } else if lead < 0xE0 {
        2
    } else if lead < 0xF0 {
        3
    } else {
        4
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect_byte(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect_byte(bytes, pos, b'{', "expected '{'")?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_setting_parses() {
        assert_eq!(TraceSetting::from_setting(None), TraceSetting::Off);
        assert_eq!(TraceSetting::from_setting(Some("")), TraceSetting::Off);
        assert_eq!(TraceSetting::from_setting(Some(" 0 ")), TraceSetting::Off);
        assert_eq!(TraceSetting::from_setting(Some("1")), TraceSetting::Default);
        assert_eq!(
            TraceSetting::from_setting(Some("a/b.json")),
            TraceSetting::Path("a/b.json".to_string())
        );
        assert_eq!(TraceSetting::Off.resolve("x.json"), None);
        assert_eq!(
            TraceSetting::Default.resolve("x.json"),
            Some("x.json".to_string())
        );
        assert_eq!(
            TraceSetting::Path("y.json".to_string()).resolve("x.json"),
            Some("y.json".to_string())
        );
        assert!(!TraceSetting::Off.is_on());
        assert!(TraceSetting::Default.is_on());
    }

    #[test]
    fn noop_recorder_records_nothing() {
        let obs = Recorder::noop();
        assert!(!obs.is_enabled());
        {
            let _span = obs.span("stage");
            obs.add("c", 3);
            obs.gauge("g", 1.5);
            obs.push("s", 2.0);
        }
        let report = obs.report("noop");
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.series.is_empty());
    }

    #[test]
    fn enabled_recorder_accumulates() {
        let obs = Recorder::enabled();
        for _ in 0..3 {
            let _span = obs.span("stage");
            obs.add("c", 2);
            obs.push("s", 1.0);
        }
        obs.incr("c");
        obs.gauge("g", 1.0);
        obs.gauge("g", 2.5);
        let report = obs.report("run");
        assert_eq!(report.name, "run");
        assert_eq!(report.counter("c"), Some(7));
        assert_eq!(report.gauge("g"), Some(2.5));
        assert_eq!(report.series("s"), Some(&[1.0, 1.0, 1.0][..]));
        let span = &report.spans[0];
        assert_eq!(span.name, "stage");
        assert_eq!(span.count, 3);
        assert_eq!(report.span_nanos("stage"), Some(span.nanos));
        assert_eq!(report.counter("missing"), None);
    }

    #[test]
    fn recorder_is_sync_across_threads() {
        let obs = Recorder::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        obs.incr("hits");
                    }
                });
            }
        });
        assert_eq!(obs.report("t").counter("hits"), Some(400));
    }

    #[test]
    fn report_json_round_trips_through_parser() {
        let obs = Recorder::enabled();
        {
            let _span = obs.span("extract");
            obs.add("extract.faults", 42);
            obs.gauge("weight", 0.25);
            obs.gauge("bad", f64::NAN);
            obs.push("live", 10.0);
            obs.push("live", 7.0);
        }
        let report = obs.report("unit \"quoted\"");
        let json = Json::parse(&report.to_json()).expect("report must parse");
        assert_eq!(
            json.get("name"),
            Some(&Json::String("unit \"quoted\"".to_string()))
        );
        let counters = json.get("counters").expect("counters");
        assert_eq!(
            counters.get("extract.faults").and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            json.get("gauges").and_then(|g| g.get("weight")).and_then(Json::as_f64),
            Some(0.25)
        );
        // Non-finite gauges serialise as null.
        assert_eq!(
            json.get("gauges").and_then(|g| g.get("bad")),
            Some(&Json::Null)
        );
        let live = json
            .get("series")
            .and_then(|s| s.get("live"))
            .and_then(Json::as_array)
            .expect("series array");
        assert_eq!(live.len(), 2);
        let spans = json.get("spans").and_then(|s| s.get("extract")).expect("span");
        assert!(spans.get("nanos").and_then(Json::as_f64).is_some());
        assert_eq!(spans.get("count").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn empty_report_is_valid_json() {
        let report = Recorder::enabled().report("empty");
        let json = Json::parse(&report.to_json()).expect("parses");
        assert_eq!(json.get("counters"), Some(&Json::Object(Vec::new())));
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let v = Json::parse(r#" {"a": [1, -2.5, 1e3], "b": {"c": true, "d": null}, "e": "x\ny"} "#)
            .expect("parses");
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).and_then(|a| a[2].as_f64()),
            Some(1000.0)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(
            v.get("e"),
            Some(&Json::String("x\ny".to_string()))
        );
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{\"a\": 01x}",
            "nul",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = Json::parse("{\"a\": ?}").expect_err("bad value");
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn json_number_formatting() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(3.0), "3.0");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
