//! Versioned benchmark-report schema (`BENCH_*.json`).
//!
//! The bench bins used to write ad-hoc flat JSON maps, which made
//! cross-run comparison guesswork: a number with no unit, no sample
//! spread, and no record of the machine that produced it. A
//! [`BenchReport`] fixes the schema:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "name": "fault_sim",
//!   "env": { "threads": 8, "cpus": 8, "git_rev": "941dcd8c0a2b" },
//!   "entries": [
//!     { "label": "ppsfp_256v_t1", "unit": "ns/iter",
//!       "value": 1843921.0, "samples": [1840102.0, 1843921.0, 1850773.0] }
//!   ]
//! }
//! ```
//!
//! `value` is the headline number (the **median** of `samples` when
//! samples were taken; a derived quantity like a speedup ratio
//! otherwise, with `samples` empty). `env` records what the regression
//! gate needs to judge comparability: resolved worker count, machine
//! CPU count, and the git revision that produced the report.
//! [`BENCH_SCHEMA_VERSION`] gates parsing — `perf_regress` refuses to
//! compare across schema versions.

use super::json::{json_number, json_string, Json, JsonError};

/// The bench-report schema version this crate reads and writes.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Execution environment captured alongside benchmark numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEnv {
    /// Resolved worker count (the `DLP_THREADS` contract).
    pub threads: usize,
    /// The machine's available parallelism.
    pub cpus: usize,
    /// Abbreviated git revision, or `"unknown"` outside a checkout.
    pub git_rev: String,
}

impl BenchEnv {
    /// Captures the current environment. `DLP_THREADS` parse failures
    /// fall back to auto — capture is diagnostics, never a gate.
    pub fn capture() -> BenchEnv {
        let threads = crate::par::ThreadCount::from_env()
            .unwrap_or(crate::par::ThreadCount::Auto)
            .get();
        let cpus = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        BenchEnv {
            threads,
            cpus,
            git_rev: git_rev().unwrap_or_else(|| "unknown".to_string()),
        }
    }

    /// The repository revision *as of now*: the abbreviated `HEAD`
    /// commit with `"-dirty"` appended when the worktree has
    /// uncommitted modifications; `None` outside a checkout.
    ///
    /// Reports must derive their recorded revision at *write* time, not
    /// capture time — a long-lived report written after a commit would
    /// otherwise pin the previous commit's hash (the committed
    /// `BENCH_scale_sweep.json` did exactly that).
    pub fn current_git_rev() -> Option<String> {
        let mut rev = git_rev()?;
        if worktree_dirty() == Some(true) {
            rev.push_str("-dirty");
        }
        Some(rev)
    }

    /// Re-derives [`git_rev`](BenchEnv::git_rev) from the repository as
    /// of now (see [`BenchEnv::current_git_rev`]); keeps `"unknown"`
    /// outside a checkout.
    pub fn refresh_git_rev(&mut self) {
        self.git_rev = BenchEnv::current_git_rev().unwrap_or_else(|| "unknown".to_string());
    }
}

/// Best-effort abbreviated git revision: walks up from the current
/// directory to a `.git`, follows `HEAD` one level of indirection. No
/// subprocess, no dependency.
fn git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    let git = loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            break candidate;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let full = if let Some(reference) = head.strip_prefix("ref: ") {
        std::fs::read_to_string(git.join(reference)).ok()?
    } else {
        head.to_string()
    };
    let full = full.trim();
    if full.len() < 12 || !full.bytes().take(12).all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some(full[..12].to_string())
}

/// Best-effort worktree-modification check via `git status --porcelain`
/// (the one question the `.git` files alone cannot answer); `None` when
/// git is unavailable or the command fails — absence of evidence never
/// marks a report dirty.
fn worktree_dirty() -> Option<bool> {
    let out = std::process::Command::new("git")
        .args(["status", "--porcelain", "--untracked-files=no"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    Some(!out.stdout.is_empty())
}

/// One measured quantity in a [`BenchReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// What was measured (e.g. `ppsfp_256v_t1`).
    pub label: String,
    /// The unit of `value` (e.g. `ns/iter`, `ratio`, `ppm`).
    pub unit: String,
    /// The headline number: median of `samples` when present.
    pub value: f64,
    /// The raw per-batch samples behind `value` (empty for derived
    /// quantities such as ratios).
    pub samples: Vec<f64>,
}

/// The median of `samples` (mean of the middle pair for even counts);
/// `NaN` when empty.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// A versioned benchmark report — see the module docs for the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// The report name (the `BENCH_<name>.json` stem by convention).
    pub name: String,
    /// The environment the numbers were measured in.
    pub env: BenchEnv,
    /// Measured quantities, in recording order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report for `name`, capturing the current environment.
    pub fn new(name: &str) -> BenchReport {
        BenchReport {
            name: name.to_string(),
            env: BenchEnv::capture(),
            entries: Vec::new(),
        }
    }

    /// Records a derived quantity (no samples).
    pub fn record(&mut self, label: &str, unit: &str, value: f64) {
        self.entries.push(BenchEntry {
            label: label.to_string(),
            unit: unit.to_string(),
            value,
            samples: Vec::new(),
        });
    }

    /// Records a sampled quantity; `value` becomes the median of
    /// `samples`.
    pub fn record_samples(&mut self, label: &str, unit: &str, samples: &[f64]) {
        self.entries.push(BenchEntry {
            label: label.to_string(),
            unit: unit.to_string(),
            value: median(samples),
            samples: samples.to_vec(),
        });
    }

    /// The entry with this label, if recorded.
    pub fn entry(&self, label: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.label == label)
    }

    /// The headline value of the labelled entry, if recorded.
    pub fn value(&self, label: &str) -> Option<f64> {
        self.entry(label).map(|e| e.value)
    }

    /// The report's integrity checksum: 64-bit FNV-1a (as 16 hex
    /// digits) over a canonical rendering of the name, environment, and
    /// entries. Stable across write/parse cycles, so a loaded report
    /// can be verified against the checksum recorded in its file.
    pub fn checksum(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Json::Object(vec![
                    ("label".to_string(), Json::String(e.label.clone())),
                    ("unit".to_string(), Json::String(e.unit.clone())),
                    ("value".to_string(), Json::Number(e.value)),
                    (
                        "samples".to_string(),
                        Json::Array(e.samples.iter().copied().map(Json::Number).collect()),
                    ),
                ])
            })
            .collect();
        let canonical = Json::Object(vec![
            ("name".to_string(), Json::String(self.name.clone())),
            (
                "env".to_string(),
                Json::Object(vec![
                    ("threads".to_string(), Json::Number(self.env.threads as f64)),
                    ("cpus".to_string(), Json::Number(self.env.cpus as f64)),
                    ("git_rev".to_string(), Json::String(self.env.git_rev.clone())),
                ]),
            ),
            ("entries".to_string(), Json::Array(entries)),
        ]);
        format!(
            "{:016x}",
            crate::ckpt::fnv64(crate::ckpt::render(&canonical).as_bytes())
        )
    }

    /// Serialises the report as pretty-printed JSON, with the
    /// [`checksum`](Self::checksum) recorded so loaders can detect
    /// corruption.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"checksum\": {},\n", json_string(&self.checksum())));
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str(&format!(
            "  \"env\": {{ \"threads\": {}, \"cpus\": {}, \"git_rev\": {} }},\n",
            self.env.threads,
            self.env.cpus,
            json_string(&self.env.git_rev)
        ));
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let samples: Vec<String> = e.samples.iter().map(|&s| json_number(s)).collect();
            out.push_str(&format!(
                "    {{ \"label\": {}, \"unit\": {}, \"value\": {}, \"samples\": [{}] }}",
                json_string(&e.label),
                json_string(&e.unit),
                json_number(e.value),
                samples.join(", ")
            ));
        }
        out.push_str(if self.entries.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }

    /// Parses a report, rejecting unknown schema versions.
    ///
    /// # Errors
    ///
    /// [`JsonError`] for malformed JSON, a missing/mismatched
    /// `schema_version`, or a malformed section. The offset points at
    /// the document start for schema-level (as opposed to syntax-level)
    /// problems.
    pub fn from_json(text: &str) -> Result<BenchReport, JsonError> {
        let schema_err = |message| JsonError { offset: 0, message };
        let doc = Json::parse(text)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or_else(|| schema_err("missing schema_version"))?;
        if version != BENCH_SCHEMA_VERSION as f64 {
            return Err(schema_err("unsupported bench schema_version"));
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| schema_err("missing name"))?
            .to_string();
        let env = doc.get("env").ok_or_else(|| schema_err("missing env"))?;
        let env_usize = |key| {
            env.get(key)
                .and_then(Json::as_f64)
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as usize)
                .ok_or_else(|| schema_err("malformed env"))
        };
        let env = BenchEnv {
            threads: env_usize("threads")?,
            cpus: env_usize("cpus")?,
            git_rev: env
                .get("git_rev")
                .and_then(Json::as_str)
                .ok_or_else(|| schema_err("malformed env"))?
                .to_string(),
        };
        let mut entries = Vec::new();
        for item in doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| schema_err("missing entries"))?
        {
            let label = item
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| schema_err("entry without a label"))?
                .to_string();
            let unit = item
                .get("unit")
                .and_then(Json::as_str)
                .ok_or_else(|| schema_err("entry without a unit"))?
                .to_string();
            let value = match item.get("value") {
                Some(Json::Null) => f64::NAN,
                Some(v) => v.as_f64().ok_or_else(|| schema_err("entry without a value"))?,
                None => return Err(schema_err("entry without a value")),
            };
            let samples = item
                .get("samples")
                .and_then(Json::as_array)
                .ok_or_else(|| schema_err("entry without samples"))?
                .iter()
                .map(|s| s.as_f64().ok_or_else(|| schema_err("non-numeric sample")))
                .collect::<Result<Vec<f64>, JsonError>>()?;
            entries.push(BenchEntry {
                label,
                unit,
                value,
                samples,
            });
        }
        let report = BenchReport { name, env, entries };
        // Reports written before the checksum existed (e.g. a committed
        // baseline) carry no checksum field and stay loadable; when the
        // field is present it must verify.
        if let Some(recorded) = doc.get("checksum") {
            let recorded = recorded
                .as_str()
                .ok_or_else(|| schema_err("malformed checksum"))?;
            if recorded != report.checksum() {
                return Err(schema_err("bench checksum mismatch"));
            }
        }
        Ok(report)
    }

    /// Writes [`to_json`](Self::to_json) to `path` atomically
    /// (write-temp-then-rename via [`crate::ckpt::atomic_write`]), so a
    /// crash mid-write can never leave a half-written report.
    ///
    /// `env.git_rev` is re-derived at write time (with a `"-dirty"`
    /// marker when the worktree is modified): a report captured before
    /// a commit and written after it would otherwise record the stale
    /// revision. The in-memory report is left untouched; the checksum
    /// in the file covers the refreshed revision.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating, writing, or renaming the file.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        let mut fresh = self.clone();
        fresh.env.refresh_git_rev();
        crate::ckpt::atomic_write(path, &fresh.to_json())
    }

    /// Reads and verifies a report previously written by
    /// [`write_to`](Self::write_to): the file must exist, be UTF-8,
    /// parse under the versioned schema, and — when a checksum is
    /// recorded — hash to it.
    ///
    /// # Errors
    ///
    /// [`crate::ckpt::CkptError::Io`] if the file cannot be read,
    /// [`crate::ckpt::CkptError::Json`] for parse/schema/checksum
    /// failures.
    pub fn load(path: &str) -> Result<BenchReport, crate::ckpt::CkptError> {
        let text = std::fs::read_to_string(path).map_err(|e| crate::ckpt::CkptError::Io {
            path: path.to_string(),
            error: e.to_string(),
        })?;
        BenchReport::from_json(&text).map_err(crate::ckpt::CkptError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn checksum_detects_entry_tampering_but_tolerates_absence() {
        let mut report = BenchReport::new("x");
        report.record("a", "ns/iter", 120.0);
        let text = report.to_json();
        assert!(text.contains("\"checksum\""));
        // A value flip inside an entry must fail the checksum.
        let tampered = text.replace("120.0", "125.0");
        assert_ne!(tampered, text);
        let err = BenchReport::from_json(&tampered).expect_err("tamper detected");
        assert_eq!(err.message, "bench checksum mismatch");
        // A checksum-free report (pre-checksum baseline) still loads.
        let legacy: String = text
            .lines()
            .filter(|l| !l.contains("\"checksum\""))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = BenchReport::from_json(&legacy).expect("legacy loads");
        assert_eq!(parsed, report);
        // A non-string checksum is malformed, not a panic.
        let bad = text.replace(
            &format!("\"checksum\": \"{}\"", report.checksum()),
            "\"checksum\": 3",
        );
        let err = BenchReport::from_json(&bad).expect_err("typed error");
        assert_eq!(err.message, "malformed checksum");
    }

    #[test]
    fn atomic_write_and_load_round_trip() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("dlp_bench_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create test dir");
        let path = dir.join("BENCH_test.json");
        let path = path.to_str().expect("utf-8 path");
        let mut report = BenchReport::new("atomic");
        report.record_samples("w", "ns/iter", &[3.0, 1.0, 2.0]);
        report.write_to(path).expect("atomic write");
        let loaded = BenchReport::load(path).expect("verified load");
        // write_to refreshes env.git_rev (possibly adding "-dirty"), so
        // compare everything else exactly and the revision by prefix.
        assert_eq!(loaded.name, report.name);
        assert_eq!(loaded.entries, report.entries);
        assert_eq!(loaded.env.threads, report.env.threads);
        assert_eq!(loaded.env.cpus, report.env.cpus);
        let rev = loaded.env.git_rev.trim_end_matches("-dirty");
        assert!(rev == "unknown" || rev.len() == 12, "{}", loaded.env.git_rev);
        // Corrupt the file on disk: load is a typed error.
        let text = std::fs::read_to_string(path).expect("read");
        std::fs::write(path, &text[..text.len() / 2]).expect("truncate");
        assert!(matches!(
            BenchReport::load(path),
            Err(crate::ckpt::CkptError::Json(_))
        ));
        assert!(matches!(
            BenchReport::load("/nonexistent/nowhere.json"),
            Err(crate::ckpt::CkptError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new("unit");
        report.record_samples("stage_a", "ns/iter", &[120.0, 100.0, 110.0]);
        report.record("speedup_t2", "ratio", 1.7);
        assert_eq!(report.value("stage_a"), Some(110.0), "median of samples");
        let parsed = BenchReport::from_json(&report.to_json()).expect("round-trips");
        assert_eq!(parsed, report);
        assert_eq!(parsed.entry("speedup_t2").map(|e| e.unit.as_str()), Some("ratio"));
        assert_eq!(parsed.value("missing"), None);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = BenchReport::new("empty");
        let parsed = BenchReport::from_json(&report.to_json()).expect("round-trips");
        assert!(parsed.entries.is_empty());
        assert!(parsed.env.cpus >= 1);
    }

    #[test]
    fn nan_values_round_trip_as_null() {
        let mut report = BenchReport::new("nan");
        report.record("undefined_ratio", "ratio", f64::NAN);
        let json = report.to_json();
        assert!(json.contains("\"value\": null"), "{json}");
        let parsed = BenchReport::from_json(&json).expect("parses");
        assert!(parsed.value("undefined_ratio").is_some_and(f64::is_nan));
    }

    #[test]
    fn schema_version_is_enforced() {
        let report = BenchReport::new("v");
        let future = report
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = BenchReport::from_json(&future).expect_err("future schema rejected");
        assert_eq!(err.message, "unsupported bench schema_version");
        // The old flat ad-hoc shape (no schema_version at all) is rejected.
        let err = BenchReport::from_json(r#"{"ppsfp_64v": 123.0}"#).expect_err("flat map");
        assert_eq!(err.message, "missing schema_version");
    }

    #[test]
    fn malformed_sections_are_typed_errors() {
        for (doc, why) in [
            (r#"{"schema_version": 1, "name": "x"}"#, "missing env"),
            (
                r#"{"schema_version": 1, "name": "x", "env": {"threads": 1, "cpus": 2, "git_rev": "r"}}"#,
                "missing entries",
            ),
            (
                r#"{"schema_version": 1, "name": "x", "env": {"threads": -1, "cpus": 2, "git_rev": "r"}, "entries": []}"#,
                "negative threads",
            ),
            (
                r#"{"schema_version": 1, "name": "x", "env": {"threads": 1, "cpus": 2, "git_rev": "r"}, "entries": [{"label": "a"}]}"#,
                "entry missing fields",
            ),
        ] {
            assert!(BenchReport::from_json(doc).is_err(), "{why}: {doc}");
        }
    }

    #[test]
    fn captured_env_is_sane() {
        let env = BenchEnv::capture();
        assert!(env.cpus >= 1);
        assert!(env.threads >= 1);
        assert!(!env.git_rev.is_empty());
    }

    #[test]
    fn written_rev_is_derived_at_write_time() {
        // A report written inside a checkout must record the *current*
        // HEAD (modulo the dirty marker), even when the report object
        // was constructed earlier with a doctored revision.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp")
            .join(format!("dlp_bench_rev_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create test dir");
        let path = dir.join("BENCH_rev.json");
        let path = path.to_str().expect("utf-8 path");
        let mut report = BenchReport::new("rev");
        report.env.git_rev = "stale0stale0".to_string();
        report.write_to(path).expect("atomic write");
        let loaded = BenchReport::load(path).expect("verified load");
        assert_ne!(loaded.env.git_rev, "stale0stale0");
        assert_eq!(
            loaded.env.git_rev,
            BenchEnv::current_git_rev().unwrap_or_else(|| "unknown".to_string())
        );
        // The in-memory report is untouched.
        assert_eq!(report.env.git_rev, "stale0stale0");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
