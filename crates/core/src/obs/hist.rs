//! Log-bucketed latency/size histograms with deterministic merges.
//!
//! Averages hide the tail: a parallel stage whose *mean* chunk time looks
//! healthy can still be dominated by one straggler worker. [`Histogram`]
//! records a value distribution in logarithmic buckets so p50/p90/p99 and
//! the maximum survive aggregation, at constant memory per histogram.
//!
//! # Bucketing rule
//!
//! Buckets are **log-linear** with [`SUB_BUCKETS`] = 4 sub-buckets per
//! power of two (the HDR-histogram shape, quantization error ≤ 25 %):
//!
//! * bucket `0` holds everything below `1.0`;
//! * bucket `1 + 4·octave + sub` holds `v ∈ [2^octave·(1 + sub/4),
//!   2^octave·(1 + (sub+1)/4))` for `octave = ⌊log2 v⌋`.
//!
//! The index is computed from exact IEEE 754 operations (power-of-two
//! scalings and a Sterbenz subtraction), so the same value always lands
//! in the same bucket on every platform. Values are
//! intended to be non-negative magnitudes (nanoseconds, counts); negative
//! or non-finite observations are tallied in an `invalid` counter and
//! excluded from the distribution.
//!
//! # Determinism
//!
//! Bucket counts are `u64` tallies, so merging histograms — or recording
//! the same multiset of values in any order, from any number of workers —
//! yields identical bucket counts, count, min, max, and therefore
//! identical percentiles. (The `sum` is an `f64` accumulation and is only
//! order-independent when the values sum exactly, e.g. integral values
//! below 2^53.)

use std::collections::BTreeMap;

/// Sub-buckets per power of two (relative quantization error ≤ 1/4).
pub const SUB_BUCKETS: u32 = 4;

/// Computes the bucket index for a non-negative finite value.
fn bucket_index(v: f64) -> u32 {
    if v < 1.0 {
        return 0;
    }
    // Saturating cast: absurdly large values collapse into the top bucket.
    let m = v as u64;
    let octave = 63 - m.leading_zeros();
    // For in-range v, v / 2^octave ∈ [1, 2); the power-of-two division,
    // the subtraction (Sterbenz), and the power-of-two multiplication
    // are all exact in IEEE 754, so the sub-bucket is deterministic on
    // every platform. Saturated values clamp into the top sub-bucket.
    let scaled = v / (1u64 << octave) as f64;
    let sub = (((scaled - 1.0) * f64::from(SUB_BUCKETS)) as u32).min(SUB_BUCKETS - 1);
    1 + octave * SUB_BUCKETS + sub
}

/// The exclusive upper bound of a bucket (`le` boundary in an exposition).
pub fn bucket_upper_bound(index: u32) -> f64 {
    if index == 0 {
        return 1.0;
    }
    let i = index - 1;
    let octave = i / SUB_BUCKETS;
    let sub = i % SUB_BUCKETS;
    (1u64 << octave) as f64 * (1.0 + f64::from(sub + 1) / f64::from(SUB_BUCKETS))
}

/// A mergeable log-bucketed histogram.
///
/// # Example
///
/// ```
/// use dlp_core::obs::hist::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 2.0, 40.0, 1000.0] {
///     h.observe(v);
/// }
/// assert_eq!(h.count(), 5);
/// let snap = h.snapshot("demo");
/// assert_eq!(snap.max, 1000.0);
/// assert!(snap.p50().unwrap() <= snap.p90().unwrap());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    invalid: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: BTreeMap::new(),
            count: 0,
            invalid: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one value. Negative or non-finite values are tallied as
    /// `invalid` and excluded from the distribution.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            self.invalid = self.invalid.saturating_add(1);
            return;
        }
        self.count = self.count.saturating_add(1);
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
    }

    /// Merges another histogram into this one. Bucket counts add as
    /// integers, so the merged percentiles are independent of merge order
    /// and of how observations were partitioned across workers.
    pub fn merge(&mut self, other: &Histogram) {
        for (&b, &c) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += c;
        }
        self.count = self.count.saturating_add(other.count);
        self.invalid = self.invalid.saturating_add(other.invalid);
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of valid observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of rejected (negative / non-finite) observations.
    pub fn invalid(&self) -> u64 {
        self.invalid
    }

    /// An immutable snapshot carrying `name`, for a `RunReport`.
    pub fn snapshot(&self, name: &str) -> HistEntry {
        HistEntry {
            name: name.to_string(),
            count: self.count,
            invalid: self.invalid,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .map(|(&b, &c)| (bucket_upper_bound(b), c))
                .collect(),
        }
    }
}

/// A named histogram snapshot inside a `RunReport`.
///
/// `buckets` holds `(upper_bound, count)` pairs sorted by bound, with
/// *per-bucket* (not cumulative) counts; empty buckets are omitted. When
/// `count == 0`, `min` is `+∞` and `max` is `−∞` (serialised as `null`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistEntry {
    /// The histogram name.
    pub name: String,
    /// Valid observations.
    pub count: u64,
    /// Rejected (negative / non-finite) observations.
    pub invalid: u64,
    /// Sum of valid observations.
    pub sum: f64,
    /// Smallest valid observation (`+∞` when empty).
    pub min: f64,
    /// Largest valid observation (`−∞` when empty).
    pub max: f64,
    /// `(upper_bound, count)` per non-empty bucket, sorted by bound.
    pub buckets: Vec<(f64, u64)>,
}

impl HistEntry {
    /// The `q`-quantile upper-bound estimate, `q ∈ (0, 1]`: the bucket
    /// boundary at or above the ⌈q·count⌉-th observation, clamped to the
    /// exact recorded maximum. `None` when the histogram is empty.
    ///
    /// Depends only on bucket counts and `max`, so it is deterministic
    /// under merging (see the module docs).
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || q <= 0.0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(bound, c) in &self.buckets {
            cum += c;
            if cum >= rank {
                return Some(bound.min(self.max));
            }
        }
        Some(self.max)
    }

    /// The median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.percentile(0.50)
    }

    /// The 90th-percentile estimate.
    pub fn p90(&self) -> Option<f64> {
        self.percentile(0.90)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(0.99)
    }

    /// Mean of the valid observations, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log_linear() {
        // [0,1) -> 0; [1,1.25) -> 1; 2^k lands at the octave start.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(0.999), 0);
        assert_eq!(bucket_index(1.0), 1);
        assert_eq!(bucket_index(1.24), 1);
        assert_eq!(bucket_index(2.0), 1 + SUB_BUCKETS);
        assert_eq!(bucket_index(4.0), 1 + 2 * SUB_BUCKETS);
        assert_eq!(bucket_index(3.0), 1 + SUB_BUCKETS + 2); // 3 = 2·(1+2/4)
        assert_eq!(bucket_upper_bound(0), 1.0);
        assert_eq!(bucket_upper_bound(1), 1.25);
        assert_eq!(bucket_upper_bound(1 + SUB_BUCKETS), 2.5);
        // Every value sits strictly below its bucket's upper bound and at
        // or above the previous bucket's bound.
        for v in [1.0, 1.3, 2.0, 3.7, 63.0, 64.0, 100.0, 1e6, 1e12] {
            let b = bucket_index(v);
            assert!(v < bucket_upper_bound(b), "{v} < ub({b})");
            if b > 0 {
                assert!(v >= bucket_upper_bound(b - 1), "{v} >= ub({})", b - 1);
            }
        }
        // Huge values saturate into the top bucket without panicking.
        let top = bucket_index(1e300);
        assert_eq!(top, bucket_index(u64::MAX as f64));
        assert!(bucket_upper_bound(top).is_finite());
    }

    #[test]
    fn invalid_observations_are_counted_separately() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(-1.0);
        h.observe(5.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.invalid(), 3);
        let snap = h.snapshot("x");
        assert_eq!(snap.min, 5.0);
        assert_eq!(snap.max, 5.0);
        assert_eq!(snap.p50(), Some(5.0));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let snap = Histogram::new().snapshot("empty");
        assert_eq!(snap.percentile(0.5), None);
        assert_eq!(snap.mean(), None);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn percentiles_are_ordered_and_clamped_to_max() {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.observe(i as f64);
        }
        let s = h.snapshot("p");
        let (p50, p90, p99) = (s.p50().unwrap(), s.p90().unwrap(), s.p99().unwrap());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max);
        // Log-bucket quantization error is bounded by 25 % + the clamp.
        assert!((400.0..=640.0).contains(&p50), "p50 = {p50}");
        assert!((800.0..=1000.0).contains(&p90), "p90 = {p90}");
        // A single-value histogram reports that value everywhere.
        let mut one = Histogram::new();
        one.observe(42.0);
        let s = one.snapshot("one");
        assert_eq!(s.p50(), Some(42.0));
        assert_eq!(s.p99(), Some(42.0));
    }

    /// Deterministic pseudo-random integral values (exact f64 sums).
    fn test_values(n: usize) -> Vec<f64> {
        let mut x = 0x9E3779B97F4A7C15u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 1_000_000) as f64
            })
            .collect()
    }

    #[test]
    fn merge_is_partition_and_order_invariant() {
        let values = test_values(1000);
        let mut reference = Histogram::new();
        for &v in &values {
            reference.observe(v);
        }
        // Partition into k parts (round-robin), merge in forward and
        // reverse order: identical snapshots either way.
        for k in [2usize, 3, 7] {
            let mut parts = vec![Histogram::new(); k];
            for (i, &v) in values.iter().enumerate() {
                parts[i % k].observe(v);
            }
            for ordered in [true, false] {
                let mut merged = Histogram::new();
                let order: Vec<usize> = if ordered {
                    (0..k).collect()
                } else {
                    (0..k).rev().collect()
                };
                for i in order {
                    merged.merge(&parts[i]);
                }
                assert_eq!(merged.snapshot("m"), reference.snapshot("m"), "k={k}");
            }
        }
    }

    #[test]
    fn concurrent_observation_is_deterministic() {
        // Four threads each observe a fixed disjoint slice into clones,
        // merged afterwards: the result equals the serial histogram no
        // matter how the scheduler interleaved them.
        let values = test_values(4000);
        let mut serial = Histogram::new();
        for &v in &values {
            serial.observe(v);
        }
        let merged = std::sync::Mutex::new(Histogram::new());
        std::thread::scope(|scope| {
            for chunk in values.chunks(1000) {
                let merged = &merged;
                scope.spawn(move || {
                    let mut local = Histogram::new();
                    for &v in chunk {
                        local.observe(v);
                    }
                    merged.lock().unwrap().merge(&local);
                });
            }
        });
        let merged = merged.into_inner().unwrap();
        assert_eq!(merged.snapshot("t"), serial.snapshot("t"));
    }
}
