//! A minimal recursive-descent JSON reader — just enough for CI to
//! validate emitted reports without external dependencies.
//!
//! The parser is hardened against adversarial documents: string escapes
//! cover the full `\uXXXX` range including UTF-16 surrogate pairs, and
//! nesting is bounded by [`MAX_DEPTH`] so a pathological document (ten
//! thousand open brackets) is a typed [`JsonError`] instead of a stack
//! overflow.

/// Maximum container nesting the parser accepts. Every real report in
/// this workspace nests 3 deep; 128 leaves two orders of magnitude of
/// headroom while keeping recursion far from any platform's stack limit.
pub const MAX_DEPTH: usize = 128;

/// A malformed JSON document, with the byte offset of the offence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// A minimal parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite gauge values).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first malformed token.
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_core::obs::Json;
    ///
    /// let v = Json::parse(r#"{"counters": {"faults": 42}}"#)?;
    /// let faults = v.get("counters").and_then(|c| c.get("faults"));
    /// assert_eq!(faults.and_then(Json::as_f64), Some(42.0));
    /// # Ok::<(), dlp_core::obs::JsonError>(())
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing content after the document",
            });
        }
        Ok(value)
    }

    /// Object member lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON value (`null` for non-finite inputs,
/// which JSON cannot represent as numbers).
pub(crate) fn json_number(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the fraction for integral floats; keep the
        // value round-trippable as a float.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(
    bytes: &[u8],
    pos: &mut usize,
    byte: u8,
    message: &'static str,
) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError {
            offset: *pos,
            message,
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError {
            offset: *pos,
            message: "nesting deeper than MAX_DEPTH",
        });
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(JsonError {
            offset: *pos,
            message: "expected a JSON value",
        }),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError {
            offset: *pos,
            message: "malformed literal",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Number)
        .ok_or(JsonError {
            offset: start,
            message: "malformed number",
        })
}

/// Reads the four hex digits of a `\uXXXX` escape (with `*pos` at the
/// `u`) and returns the code unit, advancing past the digits.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let unit = bytes
        .get(*pos + 1..*pos + 5)
        .and_then(|h| std::str::from_utf8(h).ok())
        .filter(|h| h.bytes().all(|b| b.is_ascii_hexdigit()))
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or(JsonError {
            offset: *pos,
            message: "malformed \\u escape",
        })?;
    *pos += 4;
    Ok(unit)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect_byte(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    offset: *pos,
                    message: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                let escape_start = *pos;
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let unit = parse_hex4(bytes, pos)?;
                        let scalar = match unit {
                            // High surrogate: a low surrogate escape must
                            // follow; the pair combines into one scalar
                            // beyond the Basic Multilingual Plane.
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1) != Some(&b'\\')
                                    || bytes.get(*pos + 2) != Some(&b'u')
                                {
                                    return Err(JsonError {
                                        offset: escape_start,
                                        message: "high surrogate without a low surrogate",
                                    });
                                }
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(JsonError {
                                        offset: escape_start,
                                        message: "high surrogate without a low surrogate",
                                    });
                                }
                                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                            }
                            0xDC00..=0xDFFF => {
                                return Err(JsonError {
                                    offset: escape_start,
                                    message: "lone low surrogate",
                                })
                            }
                            unit => unit,
                        };
                        out.push(char::from_u32(scalar).ok_or(JsonError {
                            offset: escape_start,
                            message: "malformed \\u escape",
                        })?);
                    }
                    _ => {
                        return Err(JsonError {
                            offset: *pos,
                            message: "unknown escape",
                        })
                    }
                }
                *pos += 1;
            }
            Some(&byte) if byte < 0x20 => {
                return Err(JsonError {
                    offset: *pos,
                    message: "unescaped control character",
                })
            }
            Some(&byte) => {
                // Copy one UTF-8 scalar. The input came from a &str, so
                // the lead byte determines the sequence length and the
                // bytes are valid UTF-8 by construction.
                let len = utf8_len(byte);
                let chunk = bytes.get(*pos..*pos + len).ok_or(JsonError {
                    offset: *pos,
                    message: "truncated UTF-8 sequence",
                })?;
                let s = std::str::from_utf8(chunk).map_err(|_| JsonError {
                    offset: *pos,
                    message: "invalid UTF-8",
                })?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

fn utf8_len(lead: u8) -> usize {
    if lead < 0x80 {
        1
    } else if lead < 0xE0 {
        2
    } else if lead < 0xF0 {
        3
    } else {
        4
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect_byte(bytes, pos, b'[', "expected '['")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or ']'",
                })
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect_byte(bytes, pos, b'{', "expected '{'")?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':', "expected ':'")?;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => {
                return Err(JsonError {
                    offset: *pos,
                    message: "expected ',' or '}'",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_accepts_standard_documents() {
        let v = Json::parse(r#" {"a": [1, -2.5, 1e3], "b": {"c": true, "d": null}, "e": "x\ny"} "#)
            .expect("parses");
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_array())
                .and_then(|a| a[2].as_f64()),
            Some(1000.0)
        );
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::String("x\ny".to_string())));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "{\"a\": 01x}",
            "nul",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = Json::parse("{\"a\": ?}").expect_err("bad value");
        assert!(err.to_string().contains("byte"), "{err}");
    }

    #[test]
    fn unicode_escapes_cover_the_bmp() {
        assert_eq!(
            Json::parse(r#""Aé中""#),
            Ok(Json::String("Aé中".to_string()))
        );
        // Escaped and literal forms agree.
        assert_eq!(
            Json::parse(r#""é中""#),
            Ok(Json::String("é中".to_string()))
        );
    }

    #[test]
    fn surrogate_pairs_combine_into_supplementary_scalars() {
        // U+1F600 GRINNING FACE = 😀; U+10000 = 𐀀.
        assert_eq!(
            Json::parse(r#""😀""#),
            Ok(Json::String("\u{1F600}".to_string()))
        );
        assert_eq!(
            Json::parse(r#""x𐀀y""#),
            Ok(Json::String(format!("x{}y", '\u{10000}')))
        );
        // Round-trip: a serialised astral-plane string parses back.
        let s = "emoji \u{1F600} and gothic \u{10330}";
        assert_eq!(
            Json::parse(&json_string(s)),
            Ok(Json::String(s.to_string()))
        );
    }

    #[test]
    fn lone_and_malformed_surrogates_are_rejected() {
        for bad in [
            r#""\uD83D""#,          // lone high surrogate, end of string
            r#""\uD83Dx""#,         // high surrogate followed by a plain char
            r#""\uD83D\n""#,        // high surrogate followed by another escape
            r#""\uD83D\uD83D""#,    // high surrogate followed by a high surrogate
            r#""\uDC00""#,          // lone low surrogate
            r#""\uDE00\uD83D""#,    // pair in the wrong order
            r#""\uD83Dé""#,    // high surrogate + non-surrogate escape
            r#""\u12G4""#,          // bad hex digit
            r#""\u123""#,           // truncated hex
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Exactly at the limit: parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok(), "depth == MAX_DEPTH must parse");
        // One past the limit: typed error, no stack overflow.
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        let err = Json::parse(&deep).expect_err("too deep");
        assert_eq!(err.message, "nesting deeper than MAX_DEPTH");
        // An adversarial pile of brackets (far past the limit, unclosed —
        // the historical stack-overflow shape) also errors out cleanly.
        let adversarial = "[".repeat(100_000);
        assert!(Json::parse(&adversarial).is_err());
        let objects = "{\"a\":".repeat(100_000);
        assert!(Json::parse(&objects).is_err());
        // Depth counts nesting, not sibling count: wide stays fine.
        let wide = format!("[{}1]", "1,".repeat(50_000));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn json_number_formatting() {
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(3.0), "3.0");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(f64::NEG_INFINITY), "null");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
