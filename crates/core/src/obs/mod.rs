//! Dependency-free pipeline observability: stage-scoped spans, named
//! counters/gauges/series, log-bucketed histograms, and a JSON
//! [`RunReport`] with an OpenMetrics exposition.
//!
//! The extract → simulate → fit pipeline is exactly the kind of
//! multi-stage flow where silent data loss hides: a surprising `DL(T)`
//! curve gives no hint of *which* stage dropped faults or ate the
//! wall-clock. This module gives every stage a [`Recorder`] to write
//! into:
//!
//! * **spans** — monotonic wall-clock timing of a named scope
//!   ([`Recorder::span`] returns an RAII guard; nested/repeated spans
//!   accumulate `nanos` and `count`);
//! * **counters** — named monotonic `u64` tallies ([`Recorder::add`],
//!   [`Recorder::incr`]) such as faults enumerated or dies simulated;
//! * **gauges** — last-write-wins `f64` observations
//!   ([`Recorder::gauge`]) such as critical-area totals;
//! * **series** — append-only `f64` sequences ([`Recorder::push`]) such
//!   as the live-fault count per 64-pattern simulation block, bounded
//!   at [`SERIES_CAP`] points by 2:1 decimation (see below);
//! * **histograms** — log-bucketed value distributions
//!   ([`Recorder::observe`], [`hist::Histogram`]) such as per-chunk
//!   worker latencies, reported with p50/p90/p99/max.
//!
//! A snapshot of everything recorded is a [`RunReport`], which
//! serialises to the same hand-rolled JSON style as the bench harness's
//! `BENCH_*.json` files, parses back with the hardened [`Json`] reader
//! ([`RunReport::from_json`] — used by CI to validate emitted reports),
//! and exports as OpenMetrics text ([`RunReport::to_openmetrics`]) for
//! scraping. The bench bins share the schema discipline through
//! [`bench::BenchReport`].
//!
//! # The `DLP_TRACE` contract
//!
//! Tracing defaults to **off**: the pipeline entry points take a
//! [`Recorder`] and callers that do not care pass [`Recorder::noop`],
//! whose methods return before touching any state (a branch on one
//! `bool` — no clock reads, no allocation, no locking). Binaries that
//! honour tracing resolve [`TraceSetting::from_env`]: `DLP_TRACE`
//! unset, empty, or `0` is off; `1` means "write the report to the
//! caller's default path"; anything else is the report path itself.
//!
//! # Bounded series memory
//!
//! A long Monte-Carlo run pushes one point per shard; unbounded series
//! would grow the trace with the workload. Each series is therefore
//! capped at [`SERIES_CAP`] retained points: on reaching the cap the
//! buffer is decimated 2:1 (every other point kept) and the acceptance
//! stride doubles, so the retained points stay an approximately uniform
//! subsample of the full sequence. Every point not retained is tallied
//! in the `obs.series_dropped_points` counter of the emitted report —
//! truncation is visible, never silent.
//!
//! # Determinism
//!
//! Recording never feeds back into computation: an enabled recorder
//! observes the pipeline but cannot perturb it, so results stay
//! bit-identical for every `DLP_THREADS` setting with tracing on or
//! off. The *report contents* are deterministic too, with two
//! documented exceptions: per-worker scheduling splits
//! (`<scope>.worker<i>.*` counters/series and wall-clock timing
//! telemetry) depend on which worker won which chunk; and histogram
//! *timing* values vary run to run. Histograms over deterministic
//! quantities (detections per block, shard escapes, pair weights) have
//! identical bucket counts — and therefore identical percentiles — for
//! every thread count, because bucket tallies are order-independent
//! integer adds (see [`hist`]).

pub mod bench;
pub mod hist;
pub mod json;
pub mod openmetrics;
pub mod trace;

pub use bench::{BenchEntry, BenchEnv, BenchReport, BENCH_SCHEMA_VERSION};
pub use hist::{HistEntry, Histogram};
pub use json::{Json, JsonError};
pub use openmetrics::OmError;
pub use trace::{FlightRecorder, TraceContext, TraceOutcome, TraceRecord};

use hist::Histogram as Hist;
use json::{json_number, json_string};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// The environment variable that enables trace reports.
pub const TRACE_ENV: &str = "DLP_TRACE";

/// Maximum retained points per series; see the module docs on bounded
/// series memory.
pub const SERIES_CAP: usize = 4096;

/// Resolution of the `DLP_TRACE` environment variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSetting {
    /// Tracing disabled (unset, empty, or `0`).
    Off,
    /// Tracing enabled; write the report to the caller's default path
    /// (`DLP_TRACE=1`).
    Default,
    /// Tracing enabled; write the report to this path.
    Path(String),
}

impl TraceSetting {
    /// Reads [`TRACE_ENV`] from the environment.
    pub fn from_env() -> TraceSetting {
        Self::from_setting(std::env::var(TRACE_ENV).ok().as_deref())
    }

    /// Parses an explicit `DLP_TRACE`-style setting (`None` = unset).
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_core::obs::TraceSetting;
    ///
    /// assert_eq!(TraceSetting::from_setting(None), TraceSetting::Off);
    /// assert_eq!(TraceSetting::from_setting(Some("0")), TraceSetting::Off);
    /// assert_eq!(TraceSetting::from_setting(Some("1")), TraceSetting::Default);
    /// assert_eq!(
    ///     TraceSetting::from_setting(Some("out/trace.json")),
    ///     TraceSetting::Path("out/trace.json".into())
    /// );
    /// ```
    pub fn from_setting(setting: Option<&str>) -> TraceSetting {
        match setting.map(str::trim) {
            None | Some("") | Some("0") => TraceSetting::Off,
            Some("1") => TraceSetting::Default,
            Some(path) => TraceSetting::Path(path.to_string()),
        }
    }

    /// Whether tracing is enabled at all.
    pub fn is_on(&self) -> bool {
        *self != TraceSetting::Off
    }

    /// The report path: `default` under [`TraceSetting::Default`], the
    /// explicit path under [`TraceSetting::Path`], `None` when off.
    pub fn resolve(&self, default: &str) -> Option<String> {
        match self {
            TraceSetting::Off => None,
            TraceSetting::Default => Some(default.to_string()),
            TraceSetting::Path(p) => Some(p.clone()),
        }
    }
}

/// Accumulated timing of one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct SpanStats {
    nanos: u64,
    count: u64,
}

/// One append-only series with cap-and-decimate memory bounding.
#[derive(Debug)]
struct SeriesBuf {
    points: Vec<f64>,
    /// Points to skip after each accepted point (`stride - 1`).
    skip: u64,
    /// Remaining skips before the next acceptance.
    pending: u64,
    /// Points pushed but not retained (skipped or decimated away).
    dropped: u64,
}

impl SeriesBuf {
    fn new() -> SeriesBuf {
        SeriesBuf {
            points: Vec::new(),
            skip: 0,
            pending: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, value: f64) {
        if self.pending > 0 {
            self.pending -= 1;
            self.dropped += 1;
            return;
        }
        self.points.push(value);
        self.pending = self.skip;
        if self.points.len() >= SERIES_CAP {
            // 2:1 decimation: keep even indices, double the stride. The
            // retained points remain a uniform subsample of the pushed
            // sequence (multiples of the new stride), and `pending`
            // already counts down to the next multiple.
            let mut keep = 0usize;
            for i in 0..self.points.len() {
                if i % 2 == 0 {
                    self.points[keep] = self.points[i];
                    keep += 1;
                }
            }
            self.dropped += (self.points.len() - keep) as u64;
            self.points.truncate(keep);
            self.skip = self.skip * 2 + 1;
        }
    }
}

#[derive(Debug, Default)]
struct State {
    spans: BTreeMap<String, SpanStats>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, SeriesBuf>,
    hists: BTreeMap<String, Hist>,
}

impl State {
    const fn new() -> State {
        State {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            series: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The shared no-op recorder behind [`Recorder::noop`].
static NOOP: Recorder = Recorder::disabled();

/// Collects spans, counters, gauges, series, and histograms for one
/// pipeline run.
///
/// `Recorder` is `Sync`: parallel workers may record concurrently (the
/// state sits behind a mutex). A disabled recorder ([`Recorder::noop`] /
/// [`Recorder::disabled`]) short-circuits every method on a single
/// `bool` — the overhead contract the benches verify.
///
/// # Example
///
/// ```
/// use dlp_core::obs::Recorder;
///
/// let obs = Recorder::enabled();
/// {
///     let _span = obs.span("extract");
///     obs.add("extract.faults", 128);
///     obs.gauge("extract.weight.total", 0.29);
///     obs.push("sim.live_per_block", 128.0);
///     obs.observe("sim.detects_per_block", 17.0);
/// }
/// let report = obs.report("demo");
/// assert_eq!(report.counter("extract.faults"), Some(128));
/// assert!(report.span_nanos("extract").is_some());
/// assert_eq!(report.hist("sim.detects_per_block").map(|h| h.count), Some(1));
/// ```
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    state: Mutex<State>,
}

impl Recorder {
    /// A recorder that collects everything.
    pub const fn enabled() -> Recorder {
        Recorder {
            enabled: true,
            state: Mutex::new(State::new()),
        }
    }

    /// A recorder whose every method is a no-op.
    pub const fn disabled() -> Recorder {
        Recorder {
            enabled: false,
            state: Mutex::new(State::new()),
        }
    }

    /// The process-wide shared no-op recorder, for callers that do not
    /// trace.
    pub fn noop() -> &'static Recorder {
        &NOOP
    }

    /// A recorder matching a [`TraceSetting`]: collecting when the
    /// setting is on, no-op otherwise.
    pub fn from_setting(setting: &TraceSetting) -> Recorder {
        if setting.is_on() {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        }
    }

    /// Whether this recorder collects anything. Use to skip building
    /// expensive labels (e.g. `format!`ed counter names) up front.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a named span; the returned guard records the elapsed
    /// wall-clock time into the span's totals when dropped.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            recorder: self,
            name,
            start: self.enabled.then(Instant::now),
        }
    }

    /// Adds `delta` to the named monotonic counter (created at 0).
    pub fn add(&self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        if let Some(c) = state.counters.get_mut(name) {
            *c = c.saturating_add(delta);
        } else {
            state.counters.insert(name.to_string(), delta);
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// The named counter's current value (`None` when disabled or never
    /// written). Lets callers derive gauges from cumulative tallies.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        if !self.enabled {
            return None;
        }
        lock_or_recover(&self.state).counters.get(name).copied()
    }

    /// All counters whose name starts with `prefix`, sorted by name
    /// (empty when disabled).
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        if !self.enabled {
            return Vec::new();
        }
        lock_or_recover(&self.state)
            .counters
            .range(prefix.to_string()..)
            .take_while(|(n, _)| n.starts_with(prefix))
            .map(|(n, &v)| (n.clone(), v))
            .collect()
    }

    /// Sets the named gauge (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        if let Some(g) = state.gauges.get_mut(name) {
            *g = value;
        } else {
            state.gauges.insert(name.to_string(), value);
        }
    }

    /// Appends `value` to the named series (bounded at [`SERIES_CAP`]
    /// retained points; see the module docs).
    pub fn push(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        if let Some(s) = state.series.get_mut(name) {
            s.push(value);
        } else {
            let mut buf = SeriesBuf::new();
            buf.push(value);
            state.series.insert(name.to_string(), buf);
        }
    }

    /// Records `value` into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        if let Some(h) = state.hists.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Hist::new();
            h.observe(value);
            state.hists.insert(name.to_string(), h);
        }
    }

    /// Merges a locally-built histogram into the named histogram — the
    /// low-contention path for workers that tally privately and merge
    /// once (bucket adds commute, so merge order cannot change the
    /// result).
    pub fn merge_hist(&self, name: &str, h: &Hist) {
        if !self.enabled {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        if let Some(existing) = state.hists.get_mut(name) {
            existing.merge(h);
        } else {
            state.hists.insert(name.to_string(), h.clone());
        }
    }

    /// Adds one completed execution of `nanos` to the named span's
    /// totals — the dynamic-name twin of [`span`](Self::span), for
    /// callers (trace merging, [`trace::TraceContext::attach`]) that
    /// measured the interval themselves.
    pub fn add_span(&self, name: &str, nanos: u64) {
        self.add_span_runs(name, nanos, 1);
    }

    fn add_span_runs(&self, name: &str, nanos: u64, count: u64) {
        if !self.enabled {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        let stats = state.spans.entry(name.to_string()).or_default();
        stats.nanos = stats.nanos.saturating_add(nanos);
        stats.count = stats.count.saturating_add(count);
    }

    fn record_span(&self, name: &'static str, nanos: u64) {
        self.add_span(name, nanos);
    }

    /// Folds everything `other` recorded into this recorder: counters
    /// and span totals add, histograms merge bucket-wise, series
    /// points append (dropped tallies carried over), gauges last-write
    /// win. Addition commutes, so merging per-request recorders in any
    /// completion order yields the same totals direct recording would
    /// have — the property that keeps the service's `/metrics` stable
    /// across worker counts.
    ///
    /// A no-op when either side is disabled. `other` is snapshotted
    /// under its own lock before this recorder's lock is taken, so the
    /// two locks are never held at once.
    pub fn merge_from(&self, other: &Recorder) {
        if !self.enabled || !other.enabled {
            return;
        }
        let report = other.report("");
        let series: Vec<(String, Vec<f64>, u64)> = {
            let state = lock_or_recover(&other.state);
            state
                .series
                .iter()
                .map(|(n, s)| (n.clone(), s.points.clone(), s.dropped))
                .collect()
        };
        for s in &report.spans {
            self.add_span_runs(&s.name, s.nanos, s.count);
        }
        for (name, value) in &report.counters {
            // The dropped-points tally is synthesised at report time
            // from the series buffers, whose `dropped` counts are
            // carried over below — merging the synthetic counter too
            // would double-count.
            if name == "obs.series_dropped_points" {
                continue;
            }
            self.add(name, *value);
        }
        for (name, value) in &report.gauges {
            self.gauge(name, *value);
        }
        let hists: Vec<(String, Hist)> = {
            let state = lock_or_recover(&other.state);
            state
                .hists
                .iter()
                .map(|(n, h)| (n.clone(), h.clone()))
                .collect()
        };
        for (name, h) in &hists {
            self.merge_hist(name, h);
        }
        let mut state = lock_or_recover(&self.state);
        for (name, points, dropped) in series {
            let buf = state
                .series
                .entry(name)
                .or_insert_with(SeriesBuf::new);
            for p in points {
                buf.push(p);
            }
            buf.dropped = buf.dropped.saturating_add(dropped);
        }
    }

    /// Snapshots everything recorded so far into a [`RunReport`].
    pub fn report(&self, name: &str) -> RunReport {
        let state = lock_or_recover(&self.state);
        let mut counters = state.counters.clone();
        let dropped: u64 = state.series.values().map(|s| s.dropped).sum();
        if dropped > 0 {
            let c = counters
                .entry("obs.series_dropped_points".to_string())
                .or_insert(0);
            *c = c.saturating_add(dropped);
        }
        RunReport {
            name: name.to_string(),
            spans: state
                .spans
                .iter()
                .map(|(n, s)| SpanEntry {
                    name: n.clone(),
                    nanos: s.nanos,
                    count: s.count,
                })
                .collect(),
            counters: counters.into_iter().collect(),
            gauges: state.gauges.iter().map(|(n, &v)| (n.clone(), v)).collect(),
            series: state
                .series
                .iter()
                .map(|(n, s)| (n.clone(), s.points.clone()))
                .collect(),
            hists: state.hists.iter().map(|(n, h)| h.snapshot(n)).collect(),
        }
    }
}

/// RAII span guard from [`Recorder::span`]; records on drop.
#[derive(Debug)]
pub struct Span<'a> {
    recorder: &'a Recorder,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.recorder.record_span(self.name, nanos);
        }
    }
}

/// Accumulated timing of one named span in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEntry {
    /// The span name.
    pub name: String,
    /// Total wall-clock nanoseconds across all executions.
    pub nanos: u64,
    /// How many times the span ran.
    pub count: u64,
}

/// An immutable snapshot of a [`Recorder`], serialisable to JSON and to
/// OpenMetrics text.
///
/// The JSON shape (hand-rolled, like the bench harness reports):
///
/// ```json
/// {
///   "name": "full_flow_c432",
///   "spans": { "extract": { "nanos": 91342011, "count": 1 } },
///   "counters": { "extract.faults": 1182 },
///   "gauges": { "extract.weight.total": 0.2876 },
///   "series": { "sim.gate.live_per_block": [864, 131, 42] },
///   "hists": {
///     "sim.gate.detects_per_block": {
///       "count": 3, "invalid": 0, "sum": 61.0, "min": 4.0, "max": 38.0,
///       "buckets": [[4.5, 1], [20.0, 1], [40.0, 1]]
///     }
///   }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The run name (the `TRACE_<name>.json` stem by convention).
    pub name: String,
    /// Per-span accumulated timings, sorted by name.
    pub spans: Vec<SpanEntry>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Series, sorted by name.
    pub series: Vec<(String, Vec<f64>)>,
    /// Histogram snapshots, sorted by name.
    pub hists: Vec<HistEntry>,
}

impl RunReport {
    /// Total nanoseconds of the named span, if recorded.
    pub fn span_nanos(&self, name: &str) -> Option<u64> {
        self.spans.iter().find(|s| s.name == name).map(|s| s.nanos)
    }

    /// The named counter's value, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The named gauge's value, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The named series, if recorded.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// The named histogram snapshot, if recorded.
    pub fn hist(&self, name: &str) -> Option<&HistEntry> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Serialises the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": {},\n", json_string(&self.name)));
        out.push_str("  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {}: {{ \"nanos\": {}, \"count\": {} }}",
                json_string(&s.name),
                s.nanos,
                s.count
            ));
        }
        out.push_str(if self.spans.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"counters\": {");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    {}: {v}", json_string(n)));
        }
        out.push_str(if self.counters.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    {}: {}", json_string(n), json_number(*v)));
        }
        out.push_str(if self.gauges.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"series\": {");
        for (i, (n, vs)) in self.series.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let body: Vec<String> = vs.iter().map(|&v| json_number(v)).collect();
            out.push_str(&format!("    {}: [{}]", json_string(n), body.join(", ")));
        }
        out.push_str(if self.series.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"hists\": {");
        for (i, h) in self.hists.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .map(|&(bound, count)| format!("[{}, {count}]", json_number(bound)))
                .collect();
            out.push_str(&format!(
                "    {}: {{ \"count\": {}, \"invalid\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}] }}",
                json_string(&h.name),
                h.count,
                h.invalid,
                json_number(h.sum),
                json_number(h.min),
                json_number(h.max),
                buckets.join(", ")
            ));
        }
        out.push_str(if self.hists.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Parses a serialised report back (the inverse of
    /// [`to_json`](Self::to_json)). Reports written before histograms
    /// existed (no `"hists"` key) parse with empty histogram sections;
    /// `null` numbers deserialise as the non-finite sentinels they
    /// stood for (`NaN`, or ±∞ for an empty histogram's min/max).
    ///
    /// # Errors
    ///
    /// [`JsonError`] for malformed JSON or a malformed section (offset
    /// 0 for schema-level problems).
    pub fn from_json(text: &str) -> Result<RunReport, JsonError> {
        let schema_err = |message| JsonError { offset: 0, message };
        let doc = Json::parse(text)?;
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| schema_err("missing report name"))?
            .to_string();
        let as_u64 = |v: &Json, message| {
            v.as_f64()
                .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                .map(|x| x as u64)
                .ok_or_else(|| schema_err(message))
        };
        let num_or_null = |v: &Json, null_means: f64, message: &'static str| match v {
            Json::Null => Ok(null_means),
            v => v.as_f64().ok_or_else(|| schema_err(message)),
        };
        let mut spans = Vec::new();
        for (n, v) in doc.get("spans").and_then(Json::as_object).unwrap_or(&[]) {
            let nanos = v
                .get("nanos")
                .ok_or_else(|| schema_err("span without nanos"))
                .and_then(|x| as_u64(x, "malformed span nanos"))?;
            let count = v
                .get("count")
                .ok_or_else(|| schema_err("span without count"))
                .and_then(|x| as_u64(x, "malformed span count"))?;
            spans.push(SpanEntry {
                name: n.clone(),
                nanos,
                count,
            });
        }
        let mut counters = Vec::new();
        for (n, v) in doc.get("counters").and_then(Json::as_object).unwrap_or(&[]) {
            counters.push((n.clone(), as_u64(v, "malformed counter value")?));
        }
        let mut gauges = Vec::new();
        for (n, v) in doc.get("gauges").and_then(Json::as_object).unwrap_or(&[]) {
            gauges.push((n.clone(), num_or_null(v, f64::NAN, "malformed gauge value")?));
        }
        let mut series = Vec::new();
        for (n, v) in doc.get("series").and_then(Json::as_object).unwrap_or(&[]) {
            let points = v
                .as_array()
                .ok_or_else(|| schema_err("series must be an array"))?
                .iter()
                .map(|p| num_or_null(p, f64::NAN, "malformed series point"))
                .collect::<Result<Vec<f64>, JsonError>>()?;
            series.push((n.clone(), points));
        }
        let mut hists = Vec::new();
        for (n, v) in doc.get("hists").and_then(Json::as_object).unwrap_or(&[]) {
            let field = |key: &'static str, message: &'static str| {
                v.get(key).ok_or_else(|| schema_err(message))
            };
            let mut buckets = Vec::new();
            for pair in field("buckets", "hist without buckets")?
                .as_array()
                .ok_or_else(|| schema_err("hist buckets must be an array"))?
            {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| schema_err("hist bucket must be a [bound, count] pair"))?;
                buckets.push((
                    pair[0]
                        .as_f64()
                        .ok_or_else(|| schema_err("malformed bucket bound"))?,
                    as_u64(&pair[1], "malformed bucket count")?,
                ));
            }
            hists.push(HistEntry {
                name: n.clone(),
                count: as_u64(field("count", "hist without count")?, "malformed hist count")?,
                invalid: as_u64(
                    field("invalid", "hist without invalid")?,
                    "malformed hist invalid",
                )?,
                sum: num_or_null(field("sum", "hist without sum")?, f64::NAN, "malformed hist sum")?,
                min: num_or_null(
                    field("min", "hist without min")?,
                    f64::INFINITY,
                    "malformed hist min",
                )?,
                max: num_or_null(
                    field("max", "hist without max")?,
                    f64::NEG_INFINITY,
                    "malformed hist max",
                )?,
                buckets,
            });
        }
        Ok(RunReport {
            name,
            spans,
            counters,
            gauges,
            series,
            hists,
        })
    }

    /// Renders the report as OpenMetrics text exposition (see
    /// [`openmetrics`] for the family schema); always ends with
    /// `# EOF`. The output satisfies [`openmetrics::validate`].
    pub fn to_openmetrics(&self) -> String {
        openmetrics::render(self)
    }

    /// Writes [`to_json`](Self::to_json) to `path` atomically
    /// (write-temp-then-rename via [`crate::ckpt::atomic_write`]), so a
    /// crash mid-write can never leave a half-written trace.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating, writing, or renaming the file.
    pub fn write_to(&self, path: &str) -> std::io::Result<()> {
        crate::ckpt::atomic_write(path, &self.to_json())
    }

    /// Reads and verifies a report previously written by
    /// [`write_to`](Self::write_to): the file must exist, be UTF-8, and
    /// parse as a run report.
    ///
    /// # Errors
    ///
    /// [`crate::ckpt::CkptError::Io`] if the file cannot be read,
    /// [`crate::ckpt::CkptError::Json`] if it does not parse.
    pub fn load(path: &str) -> Result<RunReport, crate::ckpt::CkptError> {
        let text = std::fs::read_to_string(path).map_err(|e| crate::ckpt::CkptError::Io {
            path: path.to_string(),
            error: e.to_string(),
        })?;
        RunReport::from_json(&text).map_err(crate::ckpt::CkptError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_setting_parses() {
        assert_eq!(TraceSetting::from_setting(None), TraceSetting::Off);
        assert_eq!(TraceSetting::from_setting(Some("")), TraceSetting::Off);
        assert_eq!(TraceSetting::from_setting(Some(" 0 ")), TraceSetting::Off);
        assert_eq!(TraceSetting::from_setting(Some("1")), TraceSetting::Default);
        assert_eq!(
            TraceSetting::from_setting(Some("a/b.json")),
            TraceSetting::Path("a/b.json".to_string())
        );
        assert_eq!(TraceSetting::Off.resolve("x.json"), None);
        assert_eq!(
            TraceSetting::Default.resolve("x.json"),
            Some("x.json".to_string())
        );
        assert_eq!(
            TraceSetting::Path("y.json".to_string()).resolve("x.json"),
            Some("y.json".to_string())
        );
        assert!(!TraceSetting::Off.is_on());
        assert!(TraceSetting::Default.is_on());
    }

    #[test]
    fn noop_recorder_records_nothing() {
        let obs = Recorder::noop();
        assert!(!obs.is_enabled());
        {
            let _span = obs.span("stage");
            obs.add("c", 3);
            obs.gauge("g", 1.5);
            obs.push("s", 2.0);
            obs.observe("h", 4.0);
        }
        let report = obs.report("noop");
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.series.is_empty());
        assert!(report.hists.is_empty());
        assert_eq!(obs.counter_value("c"), None);
        assert!(obs.counters_with_prefix("").is_empty());
    }

    #[test]
    fn enabled_recorder_accumulates() {
        let obs = Recorder::enabled();
        for _ in 0..3 {
            let _span = obs.span("stage");
            obs.add("c", 2);
            obs.push("s", 1.0);
            obs.observe("h", 10.0);
        }
        obs.incr("c");
        obs.gauge("g", 1.0);
        obs.gauge("g", 2.5);
        let report = obs.report("run");
        assert_eq!(report.name, "run");
        assert_eq!(report.counter("c"), Some(7));
        assert_eq!(report.gauge("g"), Some(2.5));
        assert_eq!(report.series("s"), Some(&[1.0, 1.0, 1.0][..]));
        let h = report.hist("h").expect("histogram recorded");
        assert_eq!(h.count, 3);
        assert_eq!(h.p50(), Some(10.0));
        let span = &report.spans[0];
        assert_eq!(span.name, "stage");
        assert_eq!(span.count, 3);
        assert_eq!(report.span_nanos("stage"), Some(span.nanos));
        assert_eq!(report.counter("missing"), None);
        assert_eq!(obs.counter_value("c"), Some(7));
    }

    #[test]
    fn counters_with_prefix_filters_and_sorts() {
        let obs = Recorder::enabled();
        obs.add("sim.worker1.busy", 5);
        obs.add("sim.worker0.busy", 3);
        obs.add("sim.wall", 9);
        obs.add("extract.faults", 1);
        assert_eq!(
            obs.counters_with_prefix("sim.worker"),
            vec![
                ("sim.worker0.busy".to_string(), 3),
                ("sim.worker1.busy".to_string(), 5)
            ]
        );
        assert!(obs.counters_with_prefix("nothing").is_empty());
    }

    #[test]
    fn recorder_is_sync_across_threads() {
        let obs = Recorder::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..100 {
                        obs.incr("hits");
                        obs.observe("values", f64::from(i));
                    }
                });
            }
        });
        let report = obs.report("t");
        assert_eq!(report.counter("hits"), Some(400));
        assert_eq!(report.hist("values").map(|h| h.count), Some(400));
    }

    #[test]
    fn merge_hist_matches_direct_observation() {
        let direct = Recorder::enabled();
        let merged = Recorder::enabled();
        let mut local = Histogram::new();
        for v in [1.0, 5.0, 9.0, 1024.0] {
            direct.observe("h", v);
            local.observe(v);
        }
        merged.merge_hist("h", &local);
        merged.merge_hist("h", &Histogram::new());
        assert_eq!(
            direct.report("a").hist("h"),
            merged.report("b").hist("h")
        );
    }

    #[test]
    fn merge_from_matches_direct_recording() {
        // Record the same activity directly and via two per-request
        // recorders merged in, and demand identical reports.
        let direct = Recorder::enabled();
        let merged = Recorder::enabled();
        for part in 0..2u64 {
            let child = Recorder::enabled();
            for obs in [&direct, &child] {
                obs.add("requests", 1 + part);
                obs.add_span("stage", 100 * (part + 1));
                obs.observe("latency", 2.0 * (part as f64 + 1.0));
                obs.push("points", part as f64);
            }
            merged.merge_from(&child);
        }
        direct.gauge("g", 7.0);
        merged.gauge("g", 7.0);
        assert_eq!(direct.report("x"), merged.report("x"));
    }

    #[test]
    fn merge_from_is_commutative_for_counters_and_hists() {
        let a = Recorder::enabled();
        a.add("c", 3);
        a.observe("h", 1.0);
        let b = Recorder::enabled();
        b.add("c", 5);
        b.observe("h", 900.0);
        let ab = Recorder::enabled();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let ba = Recorder::enabled();
        ba.merge_from(&b);
        ba.merge_from(&a);
        let (rab, rba) = (ab.report("m"), ba.report("m"));
        assert_eq!(rab.counter("c"), Some(8));
        assert_eq!(rab.counter("c"), rba.counter("c"));
        assert_eq!(rab.hist("h"), rba.hist("h"));
        assert_eq!(rab.span_nanos("x"), None);
    }

    #[test]
    fn merge_from_disabled_sides_is_a_noop() {
        let target = Recorder::enabled();
        target.add("c", 1);
        target.merge_from(Recorder::noop());
        assert_eq!(target.counter_value("c"), Some(1));
        let noop = Recorder::disabled();
        let busy = Recorder::enabled();
        busy.add("c", 9);
        noop.merge_from(&busy);
        assert_eq!(noop.counter_value("c"), None);
    }

    #[test]
    fn merge_from_carries_series_drop_accounting_once() {
        // A child that decimated its series must not double-report the
        // dropped points after merging.
        let child = Recorder::enabled();
        for i in 0..(2 * SERIES_CAP) {
            child.push("s", i as f64);
        }
        let child_dropped = child
            .report("c")
            .counter("obs.series_dropped_points")
            .unwrap_or(0);
        assert!(child_dropped > 0);
        let target = Recorder::enabled();
        target.merge_from(&child);
        let merged = target.report("t");
        let merged_dropped = merged.counter("obs.series_dropped_points").unwrap_or(0);
        let retained = merged.series("s").map_or(0, <[f64]>::len);
        assert_eq!(merged_dropped as usize + retained, 2 * SERIES_CAP);
    }

    #[test]
    fn series_memory_is_bounded_with_visible_drops() {
        const PUSHES: usize = 10_000;
        let obs = Recorder::enabled();
        for i in 0..PUSHES {
            obs.push("long", i as f64);
        }
        let report = obs.report("bounded");
        let points = report.series("long").expect("series recorded");
        assert!(points.len() <= SERIES_CAP, "len = {}", points.len());
        // After two decimations the stride is 4: the retained points are
        // exactly the multiples of 4, a uniform subsample.
        for (i, &p) in points.iter().enumerate() {
            assert_eq!(p, (4 * i) as f64);
        }
        // Every dropped point is accounted for.
        let dropped = report.counter("obs.series_dropped_points").unwrap_or(0);
        assert_eq!(dropped as usize + points.len(), PUSHES);
        // Short series are untouched and report no drop counter.
        let short = Recorder::enabled();
        for i in 0..100 {
            short.push("s", f64::from(i));
        }
        let report = short.report("short");
        assert_eq!(report.series("s").map(<[f64]>::len), Some(100));
        assert_eq!(report.counter("obs.series_dropped_points"), None);
    }

    #[test]
    fn report_json_round_trips_through_parser() {
        let obs = Recorder::enabled();
        {
            let _span = obs.span("extract");
            obs.add("extract.faults", 42);
            obs.gauge("weight", 0.25);
            obs.gauge("bad", f64::NAN);
            obs.push("live", 10.0);
            obs.push("live", 7.0);
            obs.observe("detects", 3.0);
            obs.observe("detects", 700.0);
        }
        let report = obs.report("unit \"quoted\"");
        let json = Json::parse(&report.to_json()).expect("report must parse");
        assert_eq!(
            json.get("name"),
            Some(&Json::String("unit \"quoted\"".to_string()))
        );
        let counters = json.get("counters").expect("counters");
        assert_eq!(
            counters.get("extract.faults").and_then(Json::as_f64),
            Some(42.0)
        );
        assert_eq!(
            json.get("gauges")
                .and_then(|g| g.get("weight"))
                .and_then(Json::as_f64),
            Some(0.25)
        );
        // Non-finite gauges serialise as null.
        assert_eq!(
            json.get("gauges").and_then(|g| g.get("bad")),
            Some(&Json::Null)
        );
        let live = json
            .get("series")
            .and_then(|s| s.get("live"))
            .and_then(Json::as_array)
            .expect("series array");
        assert_eq!(live.len(), 2);
        let spans = json
            .get("spans")
            .and_then(|s| s.get("extract"))
            .expect("span");
        assert!(spans.get("nanos").and_then(Json::as_f64).is_some());
        assert_eq!(spans.get("count").and_then(Json::as_f64), Some(1.0));
        let detects = json
            .get("hists")
            .and_then(|h| h.get("detects"))
            .expect("hist");
        assert_eq!(detects.get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(detects.get("max").and_then(Json::as_f64), Some(700.0));
    }

    #[test]
    fn non_finite_series_values_serialise_as_null() {
        // Regression: a NaN/∞ pushed into a series must not produce the
        // bare `NaN` / `inf` tokens `{}` formatting would emit — the
        // report must stay parseable by obs::Json.
        let obs = Recorder::enabled();
        obs.push("s", 1.0);
        obs.push("s", f64::NAN);
        obs.push("s", f64::INFINITY);
        obs.push("s", f64::NEG_INFINITY);
        let text = obs.report("nonfinite").to_json();
        let json = Json::parse(&text).expect("report with non-finite series parses");
        let s = json
            .get("series")
            .and_then(|s| s.get("s"))
            .and_then(Json::as_array)
            .expect("series");
        assert_eq!(s[0], Json::Number(1.0));
        assert_eq!(&s[1..], &[Json::Null, Json::Null, Json::Null]);
        // And the typed round-trip maps null back to NaN.
        let parsed = RunReport::from_json(&text).expect("typed parse");
        let points = parsed.series("s").expect("series");
        assert_eq!(points[0], 1.0);
        assert!(points[1..].iter().all(|p| p.is_nan()));
    }

    #[test]
    fn report_round_trips_through_from_json() {
        let obs = Recorder::enabled();
        {
            let _span = obs.span("stage");
            obs.add("c", 12);
            obs.gauge("g", 2.5);
            obs.push("s", 3.0);
            for v in [1.0, 2.0, 4.0, 900.0] {
                obs.observe("h", v);
            }
        }
        let report = obs.report("roundtrip");
        let parsed = RunReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(parsed, report);
        // Percentiles computed from the parsed report match.
        assert_eq!(
            parsed.hist("h").and_then(HistEntry::p99),
            report.hist("h").and_then(HistEntry::p99)
        );
    }

    #[test]
    fn from_json_tolerates_pre_histogram_reports() {
        // The PR-3 report shape had no "hists" key.
        let legacy = r#"{
  "name": "old",
  "spans": { "extract": { "nanos": 5, "count": 1 } },
  "counters": { "c": 2 },
  "gauges": { "g": 1.5 },
  "series": { "s": [1.0, 2.0] }
}"#;
        let parsed = RunReport::from_json(legacy).expect("legacy parses");
        assert!(parsed.hists.is_empty());
        assert_eq!(parsed.counter("c"), Some(2));
        // Malformed sections are typed errors, not panics.
        for bad in [
            r#"{"spans": {}}"#,
            r#"{"name": "x", "counters": {"c": -1}}"#,
            r#"{"name": "x", "spans": {"s": {"nanos": 1}}}"#,
            r#"{"name": "x", "series": {"s": 5}}"#,
            r#"{"name": "x", "hists": {"h": {"count": 1}}}"#,
        ] {
            assert!(RunReport::from_json(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn empty_report_is_valid_json() {
        let report = Recorder::enabled().report("empty");
        let json = Json::parse(&report.to_json()).expect("parses");
        assert_eq!(json.get("counters"), Some(&Json::Object(Vec::new())));
        assert_eq!(json.get("hists"), Some(&Json::Object(Vec::new())));
        assert_eq!(
            RunReport::from_json(&report.to_json()).expect("round-trips"),
            report
        );
    }
}
