//! OpenMetrics text exposition of a `RunReport`, plus a line-format
//! validator used by CI and the unit tests.
//!
//! The exposition maps the report's sections onto five metric families,
//! using labels rather than per-name families so the output stays a
//! fixed, scrape-friendly schema regardless of which counters a run
//! happened to touch:
//!
//! | section  | family                         | type      | labels           |
//! |----------|--------------------------------|-----------|------------------|
//! | spans    | `dlp_span_nanos` / `dlp_span_runs` | counter | `span`        |
//! | counters | `dlp_counter`                  | counter   | `name`           |
//! | gauges   | `dlp_gauge`                    | gauge     | `name`           |
//! | series   | `dlp_series_points`            | gauge     | `name`           |
//! | hists    | `dlp_hist`                     | histogram | `name`, `le`     |
//!
//! Histogram buckets are emitted **cumulative** with a terminal
//! `le="+Inf"` bucket equal to `dlp_hist_count`, counter samples carry
//! the mandatory `_total` suffix, and the exposition ends with `# EOF` —
//! the three OpenMetrics rules naive exporters most often break, and the
//! ones [`validate`] checks hardest.

use super::RunReport;

/// A malformed OpenMetrics exposition, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmError {
    /// 1-based line number of the offending line (0 for document-level
    /// problems such as a missing `# EOF`).
    pub line: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl std::fmt::Display for OmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid OpenMetrics at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for OmError {}

/// Escapes a label value per the OpenMetrics text format.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` sample value (OpenMetrics spells non-finite values
/// `NaN` / `+Inf` / `-Inf`).
fn sample_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Splits a metric name shaped `base{k=v,...}` into its base name and
/// label pairs, so recorders can emit labeled metrics (e.g.
/// `serve.request_seconds{endpoint=dl,cache=hit}`) through the
/// plain-string `Recorder` API. Returns `None` — the whole name is
/// treated as one opaque `name` label — unless the shape is exact: a
/// single trailing `{...}` group on a non-empty base, every key a
/// valid, non-reserved (`name`/`le`/`span`), non-duplicate label name,
/// and every value non-empty and free of characters that would collide
/// with the rendered label syntax.
fn split_labeled_name(name: &str) -> Option<(&str, Vec<(&str, &str)>)> {
    let open = name.find('{')?;
    if !name.ends_with('}') || open == 0 {
        return None;
    }
    let base = &name[..open];
    let body = &name[open + 1..name.len() - 1];
    if body.is_empty() || body.contains(['{', '}']) {
        return None;
    }
    let mut pairs: Vec<(&str, &str)> = Vec::new();
    for part in body.split(',') {
        let (k, v) = part.split_once('=')?;
        if !is_valid_label_name(k) || matches!(k, "name" | "le" | "span") {
            return None;
        }
        if v.is_empty() || v.contains(['"', '\\', '\n', '=', ',']) {
            return None;
        }
        if pairs.iter().any(|&(pk, _)| pk == k) {
            return None;
        }
        pairs.push((k, v));
    }
    Some((base, pairs))
}

/// The rendered label body for a (possibly `{k=v}`-labeled) metric
/// name: `name="base"` plus one label per embedded pair.
fn name_labels(name: &str) -> String {
    match split_labeled_name(name) {
        Some((base, pairs)) => {
            let mut out = format!("name=\"{}\"", escape_label(base));
            for (k, v) in pairs {
                out.push_str(&format!(",{k}=\"{}\"", escape_label(v)));
            }
            out
        }
        None => format!("name=\"{}\"", escape_label(name)),
    }
}

/// Renders `report` as OpenMetrics text (see the module docs for the
/// family schema).
pub(crate) fn render(report: &RunReport) -> String {
    let mut out = String::new();
    if !report.spans.is_empty() {
        out.push_str("# TYPE dlp_span_nanos counter\n");
        out.push_str("# HELP dlp_span_nanos Accumulated wall-clock nanoseconds per span.\n");
        for s in &report.spans {
            out.push_str(&format!(
                "dlp_span_nanos_total{{span=\"{}\"}} {}\n",
                escape_label(&s.name),
                s.nanos
            ));
        }
        out.push_str("# TYPE dlp_span_runs counter\n");
        for s in &report.spans {
            out.push_str(&format!(
                "dlp_span_runs_total{{span=\"{}\"}} {}\n",
                escape_label(&s.name),
                s.count
            ));
        }
    }
    if !report.counters.is_empty() {
        out.push_str("# TYPE dlp_counter counter\n");
        for (n, v) in &report.counters {
            out.push_str(&format!("dlp_counter_total{{{}}} {v}\n", name_labels(n)));
        }
    }
    if !report.gauges.is_empty() {
        out.push_str("# TYPE dlp_gauge gauge\n");
        for (n, v) in &report.gauges {
            out.push_str(&format!(
                "dlp_gauge{{{}}} {}\n",
                name_labels(n),
                sample_value(*v)
            ));
        }
    }
    if !report.series.is_empty() {
        out.push_str("# TYPE dlp_series_points gauge\n");
        for (n, vs) in &report.series {
            out.push_str(&format!(
                "dlp_series_points{{{}}} {}\n",
                name_labels(n),
                vs.len()
            ));
        }
    }
    if !report.hists.is_empty() {
        out.push_str("# TYPE dlp_hist histogram\n");
        for h in &report.hists {
            let labels = name_labels(&h.name);
            let mut cum = 0u64;
            for &(bound, count) in &h.buckets {
                cum += count;
                out.push_str(&format!(
                    "dlp_hist_bucket{{{labels},le=\"{}\"}} {cum}\n",
                    sample_value(bound)
                ));
            }
            out.push_str(&format!(
                "dlp_hist_bucket{{{labels},le=\"+Inf\"}} {}\n",
                h.count
            ));
            out.push_str(&format!("dlp_hist_count{{{labels}}} {}\n", h.count));
            out.push_str(&format!(
                "dlp_hist_sum{{{labels}}} {}\n",
                sample_value(h.sum)
            ));
        }
    }
    out.push_str("# EOF\n");
    out
}

fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_sample_value(token: &str) -> Option<f64> {
    match token {
        "NaN" => Some(f64::NAN),
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        t => t.parse::<f64>().ok(),
    }
}

/// One parsed sample line: name, sorted labels, value.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses `name{label="v",...} value [timestamp]`.
fn parse_sample(line: &str, line_no: usize) -> Result<Sample, OmError> {
    let err = |message| OmError { line: line_no, message };
    let name_end = line
        .find(['{', ' '])
        .ok_or_else(|| err("sample line has no value"))?;
    let name = &line[..name_end];
    if !is_valid_metric_name(name) {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let mut rest = &line[name_end..];
    if let Some(body) = rest.strip_prefix('{') {
        // Quote-aware scan for the closing brace.
        let mut end = None;
        let mut in_quotes = false;
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
            } else if in_quotes && c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_quotes = !in_quotes;
            } else if !in_quotes && c == '}' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| err("unterminated label set"))?;
        let label_body = &body[..end];
        rest = &body[end + 1..];
        if !label_body.is_empty() {
            for pair in split_label_pairs(label_body, line_no)? {
                let (lname, lvalue) = pair;
                if !is_valid_label_name(&lname) {
                    return Err(err("invalid label name"));
                }
                if labels.iter().any(|(n, _)| *n == lname) {
                    return Err(err("duplicate label name"));
                }
                labels.push((lname, lvalue));
            }
        }
    }
    let rest = rest
        .strip_prefix(' ')
        .ok_or_else(|| err("expected a space before the sample value"))?;
    let mut tokens = rest.split(' ');
    let value = tokens
        .next()
        .and_then(parse_sample_value)
        .ok_or_else(|| err("malformed sample value"))?;
    if let Some(ts) = tokens.next() {
        if ts.parse::<f64>().is_err() {
            return Err(err("malformed timestamp"));
        }
    }
    if tokens.next().is_some() {
        return Err(err("trailing tokens after the sample"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Splits `a="x",b="y"` into pairs, unescaping the values.
fn split_label_pairs(body: &str, line_no: usize) -> Result<Vec<(String, String)>, OmError> {
    let err = |message| OmError { line: line_no, message };
    let mut pairs = Vec::new();
    let mut rest = body;
    loop {
        let eq = rest.find('=').ok_or_else(|| err("label without '='"))?;
        let name = rest[..eq].to_string();
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| err("label value must be quoted"))?;
        let mut value = String::new();
        let mut chars = after.char_indices();
        let mut close = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err(err("invalid escape in label value")),
                },
                '"' => {
                    close = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let close = close.ok_or_else(|| err("unterminated label value"))?;
        pairs.push((name, value));
        let tail = &after[close + 1..];
        if tail.is_empty() {
            return Ok(pairs);
        }
        rest = tail
            .strip_prefix(',')
            .ok_or_else(|| err("expected ',' between labels"))?;
    }
}

/// Serialises a label set minus `le`, as a histogram grouping key.
fn group_key(labels: &[(String, String)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .filter(|(n, _)| n != "le")
        .map(|(n, v)| format!("{n}={v}"))
        .collect();
    parts.sort();
    parts.join(",")
}

#[derive(Default)]
struct HistGroup {
    /// `(le, cumulative_count)` in emission order.
    buckets: Vec<(f64, f64)>,
    count: Option<f64>,
    last_line: usize,
}

/// Validates an OpenMetrics text exposition line by line.
///
/// Checks the rules that matter for scrapeability: metric/label name
/// grammar, quoted-and-escaped label values, a `# TYPE` before any
/// sample of a family, counter samples suffixed `_total` with finite
/// non-negative values, histogram `_bucket` series cumulative in `le`
/// with a `+Inf` bucket equal to `_count`, and a terminal `# EOF` with
/// nothing after it.
///
/// # Errors
///
/// [`OmError`] naming the first offending line.
pub fn validate(text: &str) -> Result<(), OmError> {
    use std::collections::BTreeMap;

    let mut families: BTreeMap<String, String> = BTreeMap::new();
    let mut hist_groups: BTreeMap<(String, String), HistGroup> = BTreeMap::new();
    let mut saw_eof = false;
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let err = |message| OmError { line: line_no, message };
        if saw_eof {
            return Err(err("content after '# EOF'"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut tokens = comment.splitn(3, ' ');
            match tokens.next() {
                Some("TYPE") => {
                    let name = tokens.next().ok_or_else(|| err("TYPE without a name"))?;
                    let kind = tokens.next().ok_or_else(|| err("TYPE without a type"))?;
                    if !is_valid_metric_name(name) {
                        return Err(err("invalid metric name in TYPE"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "info" | "stateset"
                            | "unknown" | "gaugehistogram"
                    ) {
                        return Err(err("unknown metric type"));
                    }
                    if families.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(err("family declared twice"));
                    }
                }
                Some("HELP") | Some("UNIT") => {
                    let name = tokens.next().ok_or_else(|| err("directive without a name"))?;
                    if !is_valid_metric_name(name) {
                        return Err(err("invalid metric name in directive"));
                    }
                }
                _ => return Err(err("unknown comment directive")),
            }
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            return Err(err("malformed line"));
        }
        let sample = parse_sample(line, line_no)?;
        // Resolve the sample back to a declared family.
        let (family, kind) = if let Some(base) = sample.name.strip_suffix("_total") {
            match families.get(base).map(String::as_str) {
                Some("counter") => (base.to_string(), "counter".to_string()),
                _ => return Err(err("'_total' sample without a counter TYPE")),
            }
        } else if let Some(kind) = families.get(&sample.name) {
            match kind.as_str() {
                "counter" => return Err(err("counter sample must end in '_total'")),
                "histogram" => {
                    return Err(err("histogram sample must end in '_bucket'/'_count'/'_sum'"))
                }
                _ => (sample.name.clone(), kind.clone()),
            }
        } else if let Some(base) = sample
            .name
            .strip_suffix("_bucket")
            .or_else(|| sample.name.strip_suffix("_count"))
            .or_else(|| sample.name.strip_suffix("_sum"))
        {
            match families.get(base).map(String::as_str) {
                Some("histogram") => (base.to_string(), "histogram".to_string()),
                _ => return Err(err("histogram-suffixed sample without a histogram TYPE")),
            }
        } else {
            return Err(err("sample without a matching '# TYPE'"));
        };
        match kind.as_str() {
            "counter" if !sample.value.is_finite() || sample.value < 0.0 => {
                return Err(err("counter value must be finite and non-negative"));
            }
            "histogram" => {
                let group = hist_groups
                    .entry((family.clone(), group_key(&sample.labels)))
                    .or_default();
                group.last_line = line_no;
                if sample.name.ends_with("_bucket") {
                    let le = sample
                        .labels
                        .iter()
                        .find(|(n, _)| n == "le")
                        .and_then(|(_, v)| parse_sample_value(v))
                        .ok_or_else(|| err("histogram bucket without an 'le' label"))?;
                    if let Some(&(prev_le, prev_cum)) = group.buckets.last() {
                        if le <= prev_le {
                            return Err(err("bucket 'le' bounds must increase"));
                        }
                        if sample.value < prev_cum {
                            return Err(err("bucket counts must be cumulative"));
                        }
                    }
                    group.buckets.push((le, sample.value));
                } else if sample.name.ends_with("_count") {
                    group.count = Some(sample.value);
                }
            }
            "gauge" if sample.name != family => {
                return Err(err("gauge sample name must equal its family name"));
            }
            _ => {}
        }
    }
    if !saw_eof {
        return Err(OmError {
            line: 0,
            message: "missing terminal '# EOF'",
        });
    }
    for ((_, _), group) in hist_groups {
        let inf = group
            .buckets
            .last()
            .filter(|&&(le, _)| le == f64::INFINITY)
            .map(|&(_, c)| c)
            .ok_or(OmError {
                line: group.last_line,
                message: "histogram without a '+Inf' bucket",
            })?;
        let count = group.count.ok_or(OmError {
            line: group.last_line,
            message: "histogram without a '_count' sample",
        })?;
        if inf != count {
            return Err(OmError {
                line: group.last_line,
                message: "'+Inf' bucket must equal '_count'",
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::Recorder;
    use super::*;

    fn demo_report() -> RunReport {
        let obs = Recorder::enabled();
        {
            let _span = obs.span("extract");
            obs.add("extract.faults", 1182);
            obs.gauge("extract.weight.total", 0.2876);
            obs.gauge("bad \"label\"\\path", f64::NAN);
            obs.push("sim.gate.live_per_block", 864.0);
            obs.push("sim.gate.live_per_block", 131.0);
            for v in [1.0, 2.0, 3.0, 900.0] {
                obs.observe("sim.gate.detects_per_block", v);
            }
        }
        obs.report("demo")
    }

    #[test]
    fn rendered_report_is_valid_openmetrics() {
        let text = demo_report().to_openmetrics();
        validate(&text).expect("exposition must validate");
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("dlp_counter_total{name=\"extract.faults\"} 1182"));
        assert!(text.contains("dlp_gauge{name=\"extract.weight.total\"} 0.2876"));
        assert!(text.contains("dlp_gauge{name=\"bad \\\"label\\\"\\\\path\"} NaN"));
        assert!(text.contains("dlp_series_points{name=\"sim.gate.live_per_block\"} 2"));
        assert!(text.contains("dlp_hist_count{name=\"sim.gate.detects_per_block\"} 4"));
        assert!(text.contains("le=\"+Inf\"} 4"));
        assert!(text.contains("dlp_span_nanos_total{span=\"extract\"}"));
    }

    #[test]
    fn empty_report_renders_just_eof() {
        let text = Recorder::enabled().report("empty").to_openmetrics();
        assert_eq!(text, "# EOF\n");
        validate(&text).expect("bare EOF is a valid exposition");
    }

    #[test]
    fn embedded_labels_become_real_labels() {
        let obs = Recorder::enabled();
        obs.add("serve.requests{endpoint=dl,cache=hit}", 3);
        obs.observe("serve.request_seconds{endpoint=dl,cache=miss}", 0.25);
        obs.observe("serve.request_seconds{endpoint=dl,cache=hit}", 0.01);
        obs.gauge("load{zone=a}", 1.5);
        let text = obs.report("labeled").to_openmetrics();
        validate(&text).expect("labeled exposition validates");
        assert!(text.contains(
            "dlp_counter_total{name=\"serve.requests\",endpoint=\"dl\",cache=\"hit\"} 3"
        ));
        assert!(text.contains(
            "dlp_hist_count{name=\"serve.request_seconds\",endpoint=\"dl\",cache=\"miss\"} 1"
        ));
        assert!(text
            .contains("dlp_hist_bucket{name=\"serve.request_seconds\",endpoint=\"dl\",cache=\"hit\",le=\"+Inf\"} 1"));
        assert!(text.contains("dlp_gauge{name=\"load\",zone=\"a\"} 1.5"));
    }

    #[test]
    fn malformed_embedded_labels_stay_opaque() {
        // Names that merely resemble the labeled shape must round-trip
        // as one escaped `name` value, not as broken label syntax.
        let cases = [
            "plain{",             // unterminated
            "{endpoint=dl}",      // empty base
            "x{}",                // empty body
            "x{endpoint}",        // no value
            "x{le=1}",            // reserved key
            "x{name=y}",          // reserved key
            "x{a=1,a=2}",         // duplicate key
            "x{9bad=1}",          // invalid key
            "x{a=}",              // empty value
            "x{a=b\"c}",          // quote in value
            "x{a=b}{c=d}",        // second group
        ];
        let obs = Recorder::enabled();
        for (i, name) in cases.iter().enumerate() {
            obs.add(name, i as u64 + 1);
            obs.observe(&format!("h.{name}"), 1.0);
        }
        let text = obs.report("opaque").to_openmetrics();
        validate(&text).expect("opaque fallback still validates");
        for name in cases {
            assert!(
                text.contains(&format!("name=\"{}\"", escape_label(name))),
                "{name} should render as an opaque name label"
            );
        }
    }

    #[test]
    fn hist_buckets_are_cumulative_in_the_exposition() {
        let obs = Recorder::enabled();
        for v in [1.0, 1.1, 2.0, 600.0] {
            obs.observe("h", v);
        }
        let text = obs.report("r").to_openmetrics();
        // Per-bucket counts are 2/1/1 but the exposition is cumulative.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("dlp_hist_bucket"))
            .map(|l| l.rsplit(' ').next().and_then(|v| v.parse().ok()).unwrap_or(0))
            .collect();
        assert_eq!(*cums.last().expect("has buckets"), 4, "+Inf == count");
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "{cums:?}");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        for (bad, why) in [
            ("dlp_gauge{name=\"x\"} 1\n# EOF\n", "sample before TYPE"),
            ("# TYPE dlp_gauge gauge\ndlp_gauge{name=\"x\"} 1\n", "missing EOF"),
            ("# EOF\nextra\n", "content after EOF"),
            (
                "# TYPE c counter\nc{name=\"x\"} 1\n# EOF\n",
                "counter sample without _total",
            ),
            (
                "# TYPE c counter\nc_total{name=\"x\"} -1\n# EOF\n",
                "negative counter",
            ),
            (
                "# TYPE c counter\nc_total{name=\"x} 1\n# EOF\n",
                "unterminated label value",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"2\"} 1\nh_count 2\n# EOF\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\n# EOF\n",
                "no +Inf bucket",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 2\n# EOF\n",
                "+Inf != count",
            ),
            ("# TYPE g gauge\n9bad 1\n# EOF\n", "invalid metric name"),
            ("# TYPE g gauge\ng{l=\"\\q\"} 1\n# EOF\n", "invalid escape"),
            ("# TYPE g gauge gauge extra\n# EOF\n", "TYPE with junk"),
            ("hello world\n# EOF\n", "free text"),
        ] {
            assert!(validate(bad).is_err(), "{why}: {bad:?} must not validate");
        }
    }

    #[test]
    fn validator_accepts_well_formed_hand_written_exposition() {
        let text = "\
# TYPE acme_requests counter
# HELP acme_requests Requests handled.
acme_requests_total{path=\"/a b\",code=\"200\"} 7 1700000000
# TYPE acme_temp gauge
acme_temp 21.5
# TYPE acme_lat histogram
acme_lat_bucket{le=\"0.1\"} 2
acme_lat_bucket{le=\"+Inf\"} 5
acme_lat_count 5
acme_lat_sum 0.93
# EOF
";
        validate(text).expect("hand-written exposition validates");
    }

    #[test]
    fn om_error_displays_its_line() {
        let err = validate("garbage\n# EOF\n").expect_err("invalid");
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"), "{err}");
    }
}
