//! Request-scoped tracing: per-request span trees, a deterministic
//! trace-id derivation, and the bounded flight recorder behind
//! `dlp-serve`'s `/v1/traces`.
//!
//! A [`Recorder`] aggregates spans *by name* — perfect for a whole run,
//! useless for answering "where did request #4173 spend its time?".
//! A [`TraceContext`] complements it: one per request, carrying
//!
//! * a **trace id** derived with [`derive_trace_id`] from the request
//!   target and a per-service sequence number — stable across worker
//!   counts (no clocks, no randomness), unique within a service;
//! * a **span tree** (parent/child ids, offsets from the request start)
//!   built by RAII guards from [`TraceContext::span`];
//! * a private child [`Recorder`] ([`TraceContext::obs`]) the request's
//!   pipeline stages record into, so concurrent requests never
//!   contaminate each other's counters.
//!
//! [`TraceContext::finish`] closes the tree, adopts the child
//! recorder's stage-span aggregates as tree leaves (under the
//! `recompute` node when one exists — that is where pipeline stages
//! run), and returns a [`TraceRecord`] plus the child recorder. The
//! caller merges the child into the service-global recorder with
//! [`Recorder::merge_from`]; because counters add and histogram
//! buckets add, the merged totals equal what direct recording would
//! have produced, for any completion order — the property that keeps
//! `/metrics` thread-count-invariant.
//!
//! The [`FlightRecorder`] retains completed [`TraceRecord`]s under a
//! fixed capacity: the K slowest successes plus the K most recent
//! errored requests, O(capacity) memory no matter how long the service
//! runs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Mutex;
use std::time::Instant;

use super::{Json, Recorder};
use crate::ckpt::KeyHasher;

/// Derives a request's trace id from its raw target and the service's
/// request sequence number. Deterministic — two services replaying the
/// same request sequence derive the same ids regardless of
/// `DLP_THREADS` — and unique within a service because `seq` is.
pub fn derive_trace_id(target: &str, seq: u64) -> u64 {
    let mut h = KeyHasher::new();
    h.write_bytes(b"serve.trace");
    h.write_bytes(target.as_bytes());
    h.write_u64(seq);
    h.finish()
}

/// The canonical rendering of a trace id: 16 lowercase hex digits.
pub fn trace_id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// One closed span in a finished trace: its id, parent, and offsets
/// from the request start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpanEntry {
    /// Span id — the index of the node in creation order; the root is 0.
    pub id: u64,
    /// Parent span id; `None` only for the root `request` span.
    pub parent: Option<u64>,
    /// Span name (`route`, `cache.probe`, `recompute`, …).
    pub name: String,
    /// Nanoseconds from the request start to the span start.
    pub start_nanos: u64,
    /// The span's duration in nanoseconds.
    pub nanos: u64,
}

struct TraceNode {
    name: String,
    parent: Option<u64>,
    start_nanos: u64,
    /// `None` while the span is still open.
    nanos: Option<u64>,
}

struct TraceState {
    nodes: Vec<TraceNode>,
    /// Indices of currently-open nodes, innermost last. New spans become
    /// children of the top.
    stack: Vec<usize>,
}

/// What a request resolved to, for [`TraceContext::finish`].
#[derive(Debug, Clone)]
pub struct TraceOutcome<'a> {
    /// Stable endpoint label (`dl`, `metrics`, `invalid`, …).
    pub endpoint: &'a str,
    /// The raw request target.
    pub target: &'a str,
    /// The `circuit` query parameter, when present.
    pub circuit: Option<&'a str>,
    /// The `dist` query parameter, when present.
    pub dist: Option<&'a str>,
    /// The HTTP status answered.
    pub status: u16,
    /// Cache disposition: `hit`, `miss`, `corrupt`, or `none`.
    pub cache: &'a str,
    /// Response body size in bytes.
    pub bytes: u64,
    /// The error message, for non-2xx outcomes.
    pub error: Option<String>,
}

/// Per-request trace state: the span tree under construction plus the
/// request's private [`Recorder`].
///
/// `Sync`: the tree sits behind a mutex, so a miss that fans out to
/// worker threads may record concurrently.
#[derive(Debug)]
pub struct TraceContext {
    trace_id: u64,
    seq: u64,
    start: Instant,
    obs: Recorder,
    state: Mutex<TraceState>,
}

impl std::fmt::Debug for TraceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceState")
            .field("nodes", &self.nodes.len())
            .field("open", &self.stack.len())
            .finish()
    }
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn elapsed_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

impl TraceContext {
    /// Opens a trace: the root `request` span starts now.
    pub fn new(trace_id: u64, seq: u64) -> TraceContext {
        TraceContext {
            trace_id,
            seq,
            start: Instant::now(),
            obs: Recorder::enabled(),
            state: Mutex::new(TraceState {
                nodes: vec![TraceNode {
                    name: "request".to_string(),
                    parent: None,
                    start_nanos: 0,
                    nanos: None,
                }],
                stack: vec![0],
            }),
        }
    }

    /// This request's trace id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The request's private recorder. Pipeline stages record here;
    /// the caller merges it into the global recorder after
    /// [`finish`](Self::finish).
    pub fn obs(&self) -> &Recorder {
        &self.obs
    }

    /// Opens a named child span of the innermost open span. The guard
    /// closes it on drop, recording both the tree node and the
    /// name-aggregated span in the request recorder.
    pub fn span(&self, name: &'static str) -> TraceSpan<'_> {
        let start_nanos = elapsed_nanos(self.start);
        let idx = {
            let mut state = lock_or_recover(&self.state);
            let parent = state.stack.last().map(|&i| i as u64);
            let idx = state.nodes.len();
            state.nodes.push(TraceNode {
                name: name.to_string(),
                parent,
                start_nanos,
                nanos: None,
            });
            state.stack.push(idx);
            idx
        };
        TraceSpan {
            ctx: self,
            idx,
            _obs: self.obs.span(name),
        }
    }

    /// Attaches an already-measured span (e.g. HTTP parsing, timed
    /// before the context existed) as a closed child of the innermost
    /// open span, ending now.
    pub fn attach(&self, name: &str, nanos: u64) {
        let end = elapsed_nanos(self.start);
        let mut state = lock_or_recover(&self.state);
        let parent = state.stack.last().map(|&i| i as u64);
        state.nodes.push(TraceNode {
            name: name.to_string(),
            parent,
            start_nanos: end.saturating_sub(nanos),
            nanos: Some(nanos),
        });
        drop(state);
        self.obs.add_span(name, nanos);
    }

    /// Closes the trace: ends every still-open span (including the
    /// root), adopts the recorder's stage-span aggregates as leaves of
    /// the `recompute` node (or of the root when the request never
    /// recomputed), and returns the finished [`TraceRecord`] together
    /// with the request recorder for the caller to merge globally.
    ///
    /// Adopted leaves carry aggregate durations clamped to their
    /// parent's duration, so the tree invariant (child nanos ≤ parent
    /// nanos) holds even for stages whose executions overlap on worker
    /// threads.
    pub fn finish(self, outcome: &TraceOutcome<'_>) -> (TraceRecord, Recorder) {
        let total = elapsed_nanos(self.start);
        let state = self
            .state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut nodes = state.nodes;
        for node in &mut nodes {
            if node.nanos.is_none() {
                node.nanos = Some(total.saturating_sub(node.start_nanos));
            }
        }
        // Contain every child in its parent. Attached intervals can be
        // timed *before* the context existed (the transport's HTTP
        // parse), so their raw durations may exceed the root's; parents
        // precede children in creation order, so one forward pass
        // clamps against already-clamped parents.
        for i in 0..nodes.len() {
            let Some(parent) = nodes[i].parent else {
                continue;
            };
            let parent = parent as usize;
            let p_start = nodes[parent].start_nanos;
            let p_end = p_start.saturating_add(nodes[parent].nanos.unwrap_or(0));
            let start = nodes[i].start_nanos.clamp(p_start, p_end);
            let nanos = nodes[i]
                .nanos
                .unwrap_or(0)
                .min(p_end.saturating_sub(start));
            nodes[i].start_nanos = start;
            nodes[i].nanos = Some(nanos);
        }
        let tree_names: BTreeSet<String> = nodes.iter().map(|n| n.name.clone()).collect();
        let under = nodes
            .iter()
            .position(|n| n.name == "recompute")
            .unwrap_or(0);
        let under_parent = under as u64;
        let under_start = nodes[under].start_nanos;
        let under_nanos = nodes[under].nanos.unwrap_or(total);
        let report = self.obs.report("");
        for span in &report.spans {
            if tree_names.contains(&span.name) {
                continue;
            }
            nodes.push(TraceNode {
                name: span.name.clone(),
                parent: Some(under_parent),
                start_nanos: under_start,
                nanos: Some(span.nanos.min(under_nanos)),
            });
        }
        let spans = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| TraceSpanEntry {
                id: i as u64,
                parent: n.parent,
                name: n.name.clone(),
                start_nanos: n.start_nanos,
                nanos: n.nanos.unwrap_or(0),
            })
            .collect();
        let record = TraceRecord {
            trace_id: self.trace_id,
            seq: self.seq,
            endpoint: outcome.endpoint.to_string(),
            target: outcome.target.to_string(),
            circuit: outcome.circuit.map(str::to_string),
            dist: outcome.dist.map(str::to_string),
            status: outcome.status,
            cache: outcome.cache.to_string(),
            bytes: outcome.bytes,
            nanos: total,
            error: outcome.error.clone(),
            spans,
            counters: report.counters,
        };
        (record, self.obs)
    }
}

/// RAII guard from [`TraceContext::span`]; closes the tree node (and
/// the recorder aggregate, via the inner [`super::Span`]) on drop.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    ctx: &'a TraceContext,
    idx: usize,
    _obs: super::Span<'a>,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let end = elapsed_nanos(self.ctx.start);
        let mut state = lock_or_recover(&self.ctx.state);
        if let Some(node) = state.nodes.get_mut(self.idx) {
            node.nanos = Some(end.saturating_sub(node.start_nanos));
        }
        if let Some(pos) = state.stack.iter().rposition(|&i| i == self.idx) {
            state.stack.remove(pos);
        }
    }
}

/// One finished request trace: identity, outcome, the span tree, and
/// the request's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// The trace id (see [`derive_trace_id`]).
    pub trace_id: u64,
    /// The service-local request sequence number.
    pub seq: u64,
    /// Stable endpoint label.
    pub endpoint: String,
    /// Raw request target.
    pub target: String,
    /// The `circuit` query parameter, when present.
    pub circuit: Option<String>,
    /// The `dist` query parameter, when present.
    pub dist: Option<String>,
    /// HTTP status answered.
    pub status: u16,
    /// Cache disposition: `hit`, `miss`, `corrupt`, or `none`.
    pub cache: String,
    /// Response body bytes.
    pub bytes: u64,
    /// Request wall time in nanoseconds (the root span's duration).
    pub nanos: u64,
    /// Error message for non-2xx outcomes.
    pub error: Option<String>,
    /// The span tree, root first, ids dense in creation order.
    pub spans: Vec<TraceSpanEntry>,
    /// The request recorder's counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl TraceRecord {
    /// Total nanoseconds across spans with this name (0 when absent).
    pub fn span_nanos(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.nanos)
            .sum()
    }

    /// The named counter's value (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    fn opt_str(v: &Option<String>) -> Json {
        match v {
            Some(s) => Json::String(s.clone()),
            None => Json::Null,
        }
    }

    /// The full trace as JSON: identity, outcome, the span tree, and
    /// the per-request counters — the `/v1/traces` element shape.
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::Object(vec![
                    ("id".to_string(), Json::Number(s.id as f64)),
                    (
                        "parent".to_string(),
                        s.parent.map_or(Json::Null, |p| Json::Number(p as f64)),
                    ),
                    ("name".to_string(), Json::String(s.name.clone())),
                    (
                        "start_nanos".to_string(),
                        Json::Number(s.start_nanos as f64),
                    ),
                    ("nanos".to_string(), Json::Number(s.nanos as f64)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Json::Number(*v as f64)))
            .collect();
        Json::Object(vec![
            (
                "trace_id".to_string(),
                Json::String(trace_id_hex(self.trace_id)),
            ),
            ("seq".to_string(), Json::Number(self.seq as f64)),
            ("endpoint".to_string(), Json::String(self.endpoint.clone())),
            ("target".to_string(), Json::String(self.target.clone())),
            ("circuit".to_string(), Self::opt_str(&self.circuit)),
            ("dist".to_string(), Self::opt_str(&self.dist)),
            ("status".to_string(), Json::Number(f64::from(self.status))),
            ("cache".to_string(), Json::String(self.cache.clone())),
            ("bytes".to_string(), Json::Number(self.bytes as f64)),
            ("nanos".to_string(), Json::Number(self.nanos as f64)),
            ("error".to_string(), Self::opt_str(&self.error)),
            ("spans".to_string(), Json::Array(spans)),
            ("counters".to_string(), Json::Object(counters)),
        ])
    }

    /// The compact one-line shape of the structured access log:
    /// identity and outcome plus per-stage nanosecond totals (span
    /// durations summed by name, the root excluded — its wall time is
    /// the `nanos` field).
    pub fn to_access_json(&self) -> Json {
        let mut stages: BTreeMap<&str, u64> = BTreeMap::new();
        for s in &self.spans {
            if s.parent.is_some() {
                let slot = stages.entry(s.name.as_str()).or_insert(0);
                *slot = slot.saturating_add(s.nanos);
            }
        }
        Json::Object(vec![
            (
                "trace_id".to_string(),
                Json::String(trace_id_hex(self.trace_id)),
            ),
            ("endpoint".to_string(), Json::String(self.endpoint.clone())),
            ("target".to_string(), Json::String(self.target.clone())),
            ("circuit".to_string(), Self::opt_str(&self.circuit)),
            ("dist".to_string(), Self::opt_str(&self.dist)),
            ("cache".to_string(), Json::String(self.cache.clone())),
            ("status".to_string(), Json::Number(f64::from(self.status))),
            ("bytes".to_string(), Json::Number(self.bytes as f64)),
            ("nanos".to_string(), Json::Number(self.nanos as f64)),
            ("error".to_string(), Self::opt_str(&self.error)),
            (
                "stages".to_string(),
                Json::Object(
                    stages
                        .into_iter()
                        .map(|(n, v)| (n.to_string(), Json::Number(v as f64)))
                        .collect(),
                ),
            ),
        ])
    }
}

#[derive(Default)]
struct FlightState {
    /// Successful requests, unordered; bounded at `capacity` by
    /// replace-the-fastest.
    slowest: Vec<TraceRecord>,
    /// Errored requests (status >= 400), oldest first; bounded at
    /// `capacity` by dropping the oldest.
    errors: VecDeque<TraceRecord>,
    recorded: u64,
    dropped: u64,
}

/// A bounded store of finished [`TraceRecord`]s: retains the
/// `capacity` slowest successful requests plus the `capacity` most
/// recent errored ones — the requests worth looking at after the fact
/// — in O(capacity) memory. Capacity 0 disables recording entirely.
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<FlightState>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = lock_or_recover(&self.state);
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("recorded", &state.recorded)
            .field("retained", &(state.slowest.len() + state.errors.len()))
            .finish()
    }
}

impl FlightRecorder {
    /// A flight recorder retaining up to `capacity` slow traces plus
    /// `capacity` errored traces.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            state: Mutex::new(FlightState::default()),
        }
    }

    /// A recorder that retains nothing ([`record`](Self::record) is a
    /// no-op).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::new(0)
    }

    /// Whether this recorder retains anything.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many traces are currently retained.
    pub fn len(&self) -> usize {
        let state = lock_or_recover(&self.state);
        state.slowest.len() + state.errors.len()
    }

    /// Whether no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offers a finished trace. Errored requests (status >= 400) go to
    /// the error ring (oldest evicted at capacity); successes displace
    /// the fastest retained success once the success list is full.
    pub fn record(&self, record: TraceRecord) {
        if self.capacity == 0 {
            return;
        }
        let mut state = lock_or_recover(&self.state);
        state.recorded += 1;
        if record.status >= 400 {
            state.errors.push_back(record);
            while state.errors.len() > self.capacity {
                state.errors.pop_front();
                state.dropped += 1;
            }
            return;
        }
        if state.slowest.len() < self.capacity {
            state.slowest.push(record);
            return;
        }
        let fastest = state
            .slowest
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.nanos)
            .map(|(i, _)| i);
        if let Some(i) = fastest {
            if state.slowest[i].nanos < record.nanos {
                state.slowest[i] = record;
            }
        }
        // Exactly one trace was dropped: either the displaced retained
        // one or the new one.
        state.dropped += 1;
    }

    /// Every retained trace, sorted by request sequence number.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let state = lock_or_recover(&self.state);
        let mut out: Vec<TraceRecord> = state
            .slowest
            .iter()
            .chain(state.errors.iter())
            .cloned()
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The `/v1/traces` document: capacity, totals, and the retained
    /// traces (sorted by sequence number, truncated to `limit`).
    pub fn dump(&self, limit: Option<usize>) -> Json {
        let (recorded, dropped) = {
            let state = lock_or_recover(&self.state);
            (state.recorded, state.dropped)
        };
        let mut traces = self.snapshot();
        if let Some(limit) = limit {
            traces.truncate(limit);
        }
        Json::Object(vec![
            (
                "name".to_string(),
                Json::String("serve.traces".to_string()),
            ),
            ("capacity".to_string(), Json::Number(self.capacity as f64)),
            ("recorded".to_string(), Json::Number(recorded as f64)),
            ("dropped".to_string(), Json::Number(dropped as f64)),
            (
                "traces".to_string(),
                Json::Array(traces.iter().map(TraceRecord::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(status: u16) -> TraceOutcome<'static> {
        TraceOutcome {
            endpoint: "dl",
            target: "/v1/dl?circuit=c17",
            circuit: Some("c17"),
            dist: None,
            status,
            cache: "miss",
            bytes: 42,
            error: None,
        }
    }

    fn record_with(seq: u64, status: u16, nanos: u64) -> TraceRecord {
        TraceRecord {
            trace_id: derive_trace_id("/t", seq),
            seq,
            endpoint: "dl".to_string(),
            target: "/t".to_string(),
            circuit: None,
            dist: None,
            status,
            cache: "none".to_string(),
            bytes: 0,
            nanos,
            error: None,
            spans: Vec::new(),
            counters: Vec::new(),
        }
    }

    #[test]
    fn trace_ids_are_deterministic_and_separate() {
        assert_eq!(derive_trace_id("/a", 1), derive_trace_id("/a", 1));
        assert_ne!(derive_trace_id("/a", 1), derive_trace_id("/a", 2));
        assert_ne!(derive_trace_id("/a", 1), derive_trace_id("/b", 1));
        assert_eq!(trace_id_hex(0xab), "00000000000000ab");
    }

    #[test]
    fn span_tree_nests_with_coherent_offsets() {
        let ctx = TraceContext::new(7, 0);
        {
            let _route = ctx.span("route");
        }
        {
            let _outer = ctx.span("recompute");
            let _inner = ctx.span("sim");
        }
        ctx.attach("http.parse", 5);
        let (record, _obs) = ctx.finish(&outcome(200));
        assert_eq!(record.trace_id, 7);
        assert_eq!(record.spans[0].name, "request");
        assert_eq!(record.spans[0].parent, None);
        let by_name = |name: &str| {
            record
                .spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("span {name}"))
        };
        // route and recompute are children of the root; sim nests
        // inside recompute.
        assert_eq!(by_name("route").parent, Some(0));
        let recompute = by_name("recompute");
        assert_eq!(recompute.parent, Some(0));
        let sim = by_name("sim");
        assert_eq!(sim.parent, Some(recompute.id));
        assert!(sim.start_nanos >= recompute.start_nanos);
        assert!(sim.nanos <= recompute.nanos);
        assert!(recompute.nanos <= record.nanos);
        // The attached span is a closed child of the root.
        let parse = by_name("http.parse");
        assert_eq!(parse.parent, Some(0));
        assert_eq!(parse.nanos, 5);
        // Tree spans also fed the request recorder's aggregates.
        assert_eq!(record.counter("nope"), 0);
        assert!(record.span_nanos("recompute") >= record.span_nanos("sim"));
    }

    #[test]
    fn finish_adopts_recorder_stage_spans_under_recompute() {
        let ctx = TraceContext::new(1, 0);
        {
            let _r = ctx.span("recompute");
            // A pipeline stage that only the aggregate recorder saw.
            ctx.obs().add_span("extract", 3);
        }
        let (record, _obs) = ctx.finish(&outcome(200));
        let recompute = record
            .spans
            .iter()
            .find(|s| s.name == "recompute")
            .expect("recompute span");
        let extract = record
            .spans
            .iter()
            .find(|s| s.name == "extract")
            .expect("adopted extract span");
        assert_eq!(extract.parent, Some(recompute.id));
        assert_eq!(extract.start_nanos, recompute.start_nanos);
        assert!(extract.nanos <= recompute.nanos, "clamped to the parent");
    }

    #[test]
    fn finish_closes_spans_left_open() {
        let ctx = TraceContext::new(2, 5);
        let guard = ctx.span("route");
        std::mem::forget(guard);
        let (record, _obs) = ctx.finish(&outcome(200));
        let route = record.spans.iter().find(|s| s.name == "route").expect("route");
        assert!(route.nanos <= record.nanos);
        assert_eq!(record.seq, 5);
    }

    #[test]
    fn record_json_renders_and_parses() {
        let ctx = TraceContext::new(0xfeed, 3);
        {
            let _s = ctx.span("route");
        }
        let (record, _obs) = ctx.finish(&outcome(404));
        let text = crate::ckpt::render(&record.to_json());
        let doc = Json::parse(&text).expect("trace json parses");
        assert_eq!(
            doc.get("trace_id").and_then(Json::as_str),
            Some("000000000000feed")
        );
        assert_eq!(doc.get("status").and_then(Json::as_f64), Some(404.0));
        assert_eq!(doc.get("dist"), Some(&Json::Null));
        let spans = doc.get("spans").and_then(Json::as_array).expect("spans");
        assert_eq!(spans.len(), record.spans.len());
        // The access-log line parses too and aggregates stage nanos.
        let line = crate::ckpt::render(&record.to_access_json());
        let doc = Json::parse(&line).expect("access line parses");
        assert!(doc
            .get("stages")
            .and_then(|s| s.get("route"))
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn flight_recorder_retains_slowest_and_recent_errors() {
        let flight = FlightRecorder::new(2);
        assert!(flight.is_enabled());
        for (seq, status, nanos) in [
            (0, 200, 5),
            (1, 200, 10),
            (2, 200, 1),  // fastest: dropped
            (3, 200, 7),  // displaces the 5ns trace
            (4, 404, 1),
            (5, 500, 1),
            (6, 400, 1),  // evicts the oldest error (seq 4)
        ] {
            flight.record(record_with(seq, status, nanos));
        }
        let kept: Vec<u64> = flight.snapshot().iter().map(|r| r.seq).collect();
        assert_eq!(kept, vec![1, 3, 5, 6]);
        let dump = flight.dump(None);
        assert_eq!(dump.get("recorded").and_then(Json::as_f64), Some(7.0));
        assert_eq!(dump.get("dropped").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            dump.get("traces").and_then(Json::as_array).map(<[Json]>::len),
            Some(4)
        );
        // A limit truncates the dump but not the store.
        let limited = flight.dump(Some(1));
        assert_eq!(
            limited.get("traces").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(flight.len(), 4);
    }

    #[test]
    fn disabled_flight_recorder_records_nothing() {
        let flight = FlightRecorder::disabled();
        assert!(!flight.is_enabled());
        flight.record(record_with(0, 200, 99));
        flight.record(record_with(1, 500, 99));
        assert!(flight.is_empty());
        assert_eq!(
            flight.dump(None).get("traces").and_then(Json::as_array),
            Some(&[][..])
        );
    }
}
