//! Dependency-free scoped parallel execution for the simulation and
//! Monte-Carlo hot paths.
//!
//! The workspace builds offline, so there is no rayon: workers are plain
//! `std::thread::scope` threads pulling chunk indices from an atomic
//! counter. Two properties are load-bearing for the reproduction:
//!
//! * **Determinism.** [`map_chunks`] decomposes the input into contiguous
//!   chunks whose boundaries depend only on the item count and the
//!   requested chunk count — never on the worker count — and returns the
//!   per-chunk results in chunk order. Any reduction folded over the
//!   result is therefore bit-identical for every thread count, so
//!   parallelism cannot perturb a reproduced figure.
//! * **Explicit thread control.** [`ThreadCount`] resolves the worker
//!   count from the `DLP_THREADS` environment variable (default: the
//!   machine's available parallelism; `1` forces the serial in-line
//!   path). An unusable setting (`0`, garbage) is a typed [`ParError`]
//!   that the pipeline stages surface through their own error enums —
//!   never a panic.

use std::env;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable that overrides the worker count.
pub const THREADS_ENV: &str = "DLP_THREADS";

/// An unusable thread-count setting (`DLP_THREADS=0` or non-numeric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParError {
    value: String,
}

impl ParError {
    /// The rejected setting, verbatim.
    pub fn value(&self) -> &str {
        &self.value
    }
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{THREADS_ENV}=\"{}\" is not a positive thread count",
            self.value
        )
    }
}

impl Error for ParError {}

/// How many worker threads a parallel stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadCount {
    /// Use the machine's available parallelism.
    Auto,
    /// Use exactly this many workers (`1` forces the serial path).
    Fixed(NonZeroUsize),
}

impl ThreadCount {
    /// Resolves the `DLP_THREADS` environment variable.
    ///
    /// Unset or empty means [`ThreadCount::Auto`].
    ///
    /// # Errors
    ///
    /// [`ParError`] if the variable is set to `0` or to anything that is
    /// not a positive integer.
    pub fn from_env() -> Result<ThreadCount, ParError> {
        Self::from_setting(env::var(THREADS_ENV).ok().as_deref())
    }

    /// Parses an explicit `DLP_THREADS`-style setting (`None` = unset).
    ///
    /// # Errors
    ///
    /// [`ParError`] for `0` or a non-numeric value.
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_core::par::ThreadCount;
    ///
    /// assert_eq!(ThreadCount::from_setting(None), Ok(ThreadCount::Auto));
    /// assert_eq!(ThreadCount::from_setting(Some("4")), ThreadCount::fixed(4));
    /// assert!(ThreadCount::from_setting(Some("0")).is_err());
    /// assert!(ThreadCount::from_setting(Some("many")).is_err());
    /// ```
    pub fn from_setting(setting: Option<&str>) -> Result<ThreadCount, ParError> {
        match setting.map(str::trim) {
            None | Some("") => Ok(ThreadCount::Auto),
            Some(s) => s
                .parse::<usize>()
                .ok()
                .and_then(NonZeroUsize::new)
                .map(ThreadCount::Fixed)
                .ok_or_else(|| ParError {
                    value: s.to_string(),
                }),
        }
    }

    /// An explicit worker count.
    ///
    /// # Errors
    ///
    /// [`ParError`] for `threads == 0`.
    pub fn fixed(threads: usize) -> Result<ThreadCount, ParError> {
        NonZeroUsize::new(threads)
            .map(ThreadCount::Fixed)
            .ok_or_else(|| ParError {
                value: threads.to_string(),
            })
    }

    /// The resolved worker count (`Auto` falls back to `1` if the
    /// platform cannot report its parallelism).
    pub fn get(self) -> usize {
        match self {
            ThreadCount::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            ThreadCount::Fixed(n) => n.get(),
        }
    }
}

/// Contiguous `(start, end)` chunk bounds: as even as possible, the
/// remainder spread over the leading chunks. Depends only on `len` and
/// `chunks`, never on the worker count.
fn chunk_bounds(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let n = chunks.clamp(1, len);
    let base = len / n;
    let rem = len % n;
    let mut bounds = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < rem);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic parallel map over contiguous chunks of `items`.
///
/// `items` is split into (at most) `chunks` contiguous slices — see
/// [`chunk_bounds`] — and `f(chunk_index, chunk)` is evaluated for each,
/// by `threads` scoped workers pulling chunks from a shared counter.
/// Results come back **in chunk order**, so folding them sequentially is
/// bit-identical for every thread count. With `threads <= 1` (or a single
/// chunk) everything runs inline on the caller's thread — no spawn at all.
///
/// # Example
///
/// ```
/// let items: Vec<u64> = (0..100).collect();
/// let sums = dlp_core::par::map_chunks(4, &items, 8, |_, c| c.iter().sum::<u64>());
/// assert_eq!(sums.iter().sum::<u64>(), 4950);
/// ```
pub fn map_chunks<T, R, F>(threads: usize, items: &[T], chunks: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_chunks_counted(threads, items, chunks, crate::obs::Recorder::noop(), "par", f)
}

/// [`map_chunks`] with per-worker observability.
///
/// Identical result semantics to [`map_chunks`] — chunk decomposition
/// and result order never depend on the worker count — but when `obs`
/// is enabled each worker's processed item total is recorded as the
/// counter `<scope>.worker<i>.items`. Which worker wins which chunk is
/// a scheduling race, so the per-worker split may vary between runs;
/// the sum across workers always equals `items.len()`, and the mapped
/// *results* stay bit-identical regardless.
pub fn map_chunks_counted<T, R, F>(
    threads: usize,
    items: &[T],
    chunks: usize,
    obs: &crate::obs::Recorder,
    scope: &str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let bounds = chunk_bounds(items.len(), chunks);
    let n = bounds.len();
    if threads <= 1 || n <= 1 {
        let out = bounds
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| f(i, &items[lo..hi]))
            .collect();
        if obs.is_enabled() && !items.is_empty() {
            obs.add(&format!("{scope}.worker0.items"), items.len() as u64);
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|thread_scope| {
        for w in 0..threads.min(n) {
            let next = &next;
            let slots = &slots;
            let bounds = &bounds;
            let f = &f;
            thread_scope.spawn(move || {
                let mut processed = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (lo, hi) = bounds[i];
                    processed += (hi - lo) as u64;
                    let r = f(i, &items[lo..hi]);
                    *lock_or_recover(&slots[i]) = Some(r);
                }
                if obs.is_enabled() && processed > 0 {
                    obs.add(&format!("{scope}.worker{w}.items"), processed);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            lock_or_recover(&slot)
                .take()
                .unwrap_or_else(|| unreachable!("scoped worker exited without storing its chunk"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_parsing() {
        assert_eq!(ThreadCount::from_setting(None), Ok(ThreadCount::Auto));
        assert_eq!(ThreadCount::from_setting(Some("")), Ok(ThreadCount::Auto));
        assert_eq!(
            ThreadCount::from_setting(Some("  2 ")),
            ThreadCount::fixed(2)
        );
        for bad in ["0", "-1", "1.5", "four", "4x"] {
            let err = ThreadCount::from_setting(Some(bad)).unwrap_err();
            assert_eq!(err.value(), bad.trim());
            assert!(err.to_string().contains("DLP_THREADS"), "{err}");
        }
        assert!(ThreadCount::fixed(0).is_err());
        assert!(ThreadCount::Auto.get() >= 1);
        assert_eq!(ThreadCount::fixed(3).map(ThreadCount::get), Ok(3));
    }

    #[test]
    fn chunk_bounds_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 64, 70, 100] {
            for chunks in [1usize, 2, 3, 4, 8, 100] {
                let bounds = chunk_bounds(len, chunks);
                if len == 0 {
                    assert!(bounds.is_empty());
                    continue;
                }
                assert_eq!(bounds.len(), chunks.min(len));
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[bounds.len() - 1].1, len);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                    assert!(w[0].1 > w[0].0, "non-empty");
                }
                // Even split: sizes differ by at most one.
                let sizes: Vec<usize> = bounds.iter().map(|&(a, b)| b - a).collect();
                let min = sizes.iter().min().copied().unwrap_or(0);
                let max = sizes.iter().max().copied().unwrap_or(0);
                assert!(max - min <= 1, "len={len} chunks={chunks} {sizes:?}");
            }
        }
    }

    #[test]
    fn map_chunks_is_thread_count_invariant() {
        let items: Vec<u64> = (0..1000).map(|i| i * 7 + 3).collect();
        let reference = map_chunks(1, &items, 16, |ci, c| (ci, c.iter().sum::<u64>()));
        for threads in [2usize, 3, 4, 8] {
            assert_eq!(
                map_chunks(threads, &items, 16, |ci, c| (ci, c.iter().sum::<u64>())),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_chunks_handles_degenerate_shapes() {
        let empty: &[u8] = &[];
        assert!(map_chunks(4, empty, 8, |_, c| c.len()).is_empty());
        assert_eq!(map_chunks(4, &[42u8], 8, |_, c| c[0]), vec![42]);
        // More chunks than items: one chunk per item.
        let out = map_chunks(2, &[1u8, 2, 3], 100, |_, c| c.to_vec());
        assert_eq!(out, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn counted_map_matches_plain_and_tallies_all_items() {
        use crate::obs::Recorder;

        let items: Vec<u32> = (0..500).collect();
        let reference = map_chunks(1, &items, 8, |_, c| c.iter().sum::<u32>());
        let obs = Recorder::enabled();
        let got = map_chunks_counted(3, &items, 8, &obs, "t", |_, c| c.iter().sum::<u32>());
        assert_eq!(got, reference);
        let report = obs.report("par");
        let total: u64 = report
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("t.worker"))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(total, 500, "per-worker tallies must cover every item");

        // The serial path attributes everything to worker 0.
        let serial_obs = Recorder::enabled();
        let _ = map_chunks_counted(1, &items, 8, &serial_obs, "s", |_, c| c.len());
        assert_eq!(serial_obs.report("x").counter("s.worker0.items"), Some(500));
    }

    #[test]
    fn map_chunks_passes_chunk_indices_in_order() {
        let items: Vec<u8> = vec![0; 37];
        let indices = map_chunks(4, &items, 5, |ci, _| ci);
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }
}
