//! Dependency-free scoped parallel execution for the simulation and
//! Monte-Carlo hot paths.
//!
//! The workspace builds offline, so there is no rayon: workers are plain
//! `std::thread::scope` threads pulling chunk indices from an atomic
//! counter. Two properties are load-bearing for the reproduction:
//!
//! * **Determinism.** [`map_chunks`] decomposes the input into contiguous
//!   chunks whose boundaries depend only on the item count and the
//!   requested chunk count — never on the worker count — and returns the
//!   per-chunk results in chunk order. Any reduction folded over the
//!   result is therefore bit-identical for every thread count, so
//!   parallelism cannot perturb a reproduced figure.
//! * **Explicit thread control.** [`ThreadCount`] resolves the worker
//!   count from the `DLP_THREADS` environment variable (default: the
//!   machine's available parallelism; `1` forces the serial in-line
//!   path). An unusable setting (`0`, garbage) is a typed [`ParError`]
//!   that the pipeline stages surface through their own error enums —
//!   never a panic.

use std::env;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::budget::{BudgetExceeded, BudgetReason, RunBudget};

/// The environment variable that overrides the worker count.
pub const THREADS_ENV: &str = "DLP_THREADS";

/// An unusable thread-count setting (`DLP_THREADS=0` or non-numeric).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParError {
    value: String,
}

impl ParError {
    /// The rejected setting, verbatim.
    pub fn value(&self) -> &str {
        &self.value
    }
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{THREADS_ENV}=\"{}\" is not a positive thread count",
            self.value
        )
    }
}

impl Error for ParError {}

/// How many worker threads a parallel stage may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadCount {
    /// Use the machine's available parallelism.
    Auto,
    /// Use exactly this many workers (`1` forces the serial path).
    Fixed(NonZeroUsize),
}

impl ThreadCount {
    /// Resolves the `DLP_THREADS` environment variable.
    ///
    /// Unset or empty means [`ThreadCount::Auto`].
    ///
    /// # Errors
    ///
    /// [`ParError`] if the variable is set to `0` or to anything that is
    /// not a positive integer.
    pub fn from_env() -> Result<ThreadCount, ParError> {
        Self::from_setting(env::var(THREADS_ENV).ok().as_deref())
    }

    /// Parses an explicit `DLP_THREADS`-style setting (`None` = unset).
    ///
    /// # Errors
    ///
    /// [`ParError`] for `0` or a non-numeric value.
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_core::par::ThreadCount;
    ///
    /// assert_eq!(ThreadCount::from_setting(None), Ok(ThreadCount::Auto));
    /// assert_eq!(ThreadCount::from_setting(Some("4")), ThreadCount::fixed(4));
    /// assert!(ThreadCount::from_setting(Some("0")).is_err());
    /// assert!(ThreadCount::from_setting(Some("many")).is_err());
    /// ```
    pub fn from_setting(setting: Option<&str>) -> Result<ThreadCount, ParError> {
        match setting.map(str::trim) {
            None | Some("") => Ok(ThreadCount::Auto),
            Some(s) => s
                .parse::<usize>()
                .ok()
                .and_then(NonZeroUsize::new)
                .map(ThreadCount::Fixed)
                .ok_or_else(|| ParError {
                    value: s.to_string(),
                }),
        }
    }

    /// An explicit worker count.
    ///
    /// # Errors
    ///
    /// [`ParError`] for `threads == 0`.
    pub fn fixed(threads: usize) -> Result<ThreadCount, ParError> {
        NonZeroUsize::new(threads)
            .map(ThreadCount::Fixed)
            .ok_or_else(|| ParError {
                value: threads.to_string(),
            })
    }

    /// The resolved worker count (`Auto` falls back to `1` if the
    /// platform cannot report its parallelism).
    pub fn get(self) -> usize {
        match self {
            ThreadCount::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            ThreadCount::Fixed(n) => n.get(),
        }
    }
}

/// Contiguous `(start, end)` chunk bounds: as even as possible, the
/// remainder spread over the leading chunks. Depends only on `len` and
/// `chunks`, never on the worker count.
fn chunk_bounds(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let n = chunks.clamp(1, len);
    let base = len / n;
    let rem = len % n;
    let mut bounds = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < rem);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

fn lock_or_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic parallel map over contiguous chunks of `items`.
///
/// `items` is split into (at most) `chunks` contiguous slices — see
/// [`chunk_bounds`] — and `f(chunk_index, chunk)` is evaluated for each,
/// by `threads` scoped workers pulling chunks from a shared counter.
/// Results come back **in chunk order**, so folding them sequentially is
/// bit-identical for every thread count. With `threads <= 1` (or a single
/// chunk) everything runs inline on the caller's thread — no spawn at all.
///
/// # Example
///
/// ```
/// let items: Vec<u64> = (0..100).collect();
/// let sums = dlp_core::par::map_chunks(4, &items, 8, |_, c| c.iter().sum::<u64>());
/// assert_eq!(sums.iter().sum::<u64>(), 4950);
/// ```
pub fn map_chunks<T, R, F>(threads: usize, items: &[T], chunks: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_chunks_counted(threads, items, chunks, crate::obs::Recorder::noop(), "par", f)
}

/// What one worker measured about itself during a parallel region.
#[derive(Debug, Default)]
struct WorkerStats {
    items: u64,
    chunks: u64,
    busy_nanos: u64,
    chunk_hist: crate::obs::Histogram,
}

/// Records the per-worker timeline telemetry of one parallel region.
///
/// `stats[w]` is worker `w`'s measurement; `wall` is the region's
/// wall-clock duration; `workers` is how many workers were spawned
/// (idle workers still count — their idleness *is* the signal).
fn record_region(
    obs: &crate::obs::Recorder,
    scope: &str,
    wall: u64,
    workers: usize,
    stats: &[WorkerStats],
) {
    let mut chunk_hist = crate::obs::Histogram::new();
    for (w, s) in stats.iter().enumerate() {
        if s.items > 0 {
            obs.add(&format!("{scope}.worker{w}.items"), s.items);
        }
        obs.add(&format!("{scope}.worker{w}.busy_nanos"), s.busy_nanos);
        obs.add(
            &format!("{scope}.worker{w}.wait_nanos"),
            wall.saturating_sub(s.busy_nanos),
        );
        obs.add(&format!("{scope}.worker{w}.chunks"), s.chunks);
        obs.push(&format!("{scope}.worker{w}.timeline"), s.busy_nanos as f64);
        chunk_hist.merge(&s.chunk_hist);
    }
    obs.merge_hist(&format!("{scope}.chunk_nanos"), &chunk_hist);
    obs.add(&format!("{scope}.wall_nanos"), wall);
    obs.add(
        &format!("{scope}.slot_nanos"),
        wall.saturating_mul(workers as u64),
    );
    update_balance_gauges(obs, scope);
}

/// Recomputes the `<scope>.utilization` / `<scope>.imbalance` gauges
/// from the cumulative per-worker counters, so repeated regions under
/// one scope (e.g. one PPSFP call per 64-pattern block) aggregate into
/// one run-level figure.
fn update_balance_gauges(obs: &crate::obs::Recorder, scope: &str) {
    let busy: Vec<u64> = obs
        .counters_with_prefix(&format!("{scope}.worker"))
        .into_iter()
        .filter(|(n, _)| n.ends_with(".busy_nanos"))
        .map(|(_, v)| v)
        .collect();
    let total_busy: u64 = busy.iter().sum();
    if let Some(slot) = obs
        .counter_value(&format!("{scope}.slot_nanos"))
        .filter(|&s| s > 0)
    {
        obs.gauge(
            &format!("{scope}.utilization"),
            total_busy as f64 / slot as f64,
        );
    }
    if !busy.is_empty() && total_busy > 0 {
        let mean = total_busy as f64 / busy.len() as f64;
        let max = busy.iter().max().copied().unwrap_or(0) as f64;
        obs.gauge(&format!("{scope}.imbalance"), max / mean);
    }
}

fn elapsed_nanos(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// [`map_chunks`] with per-worker observability.
///
/// Identical result semantics to [`map_chunks`] — chunk decomposition
/// and result order never depend on the worker count — but when `obs`
/// is enabled the region's scheduling becomes diagnosable from the
/// trace. Per worker `<i>` under the given `scope`:
///
/// * counters `<scope>.worker<i>.items` (processed item total, omitted
///   when zero), `.busy_nanos` (time inside `f`), `.wait_nanos`
///   (region wall-clock minus busy — queue wait plus idle tail), and
///   `.chunks`;
/// * series `<scope>.worker<i>.timeline` — one busy-nanos point per
///   region, the worker's utilization timeline across repeated calls;
///
/// and per region: counters `<scope>.wall_nanos` / `<scope>.slot_nanos`
/// (wall × workers), the histogram `<scope>.chunk_nanos` of individual
/// chunk durations (p50/p99/max expose stragglers), and the derived
/// gauges `<scope>.utilization` (Σ busy / slot, 1.0 = no idle time)
/// and `<scope>.imbalance` (max worker busy / mean worker busy, 1.0 =
/// perfectly balanced) recomputed from the cumulative counters.
///
/// Which worker wins which chunk is a scheduling race, so the
/// per-worker split and all timing telemetry may vary between runs;
/// the `.items` sum across workers always equals `items.len()`, and
/// the mapped *results* stay bit-identical regardless. With a disabled
/// recorder no clock is ever read.
pub fn map_chunks_counted<T, R, F>(
    threads: usize,
    items: &[T],
    chunks: usize,
    obs: &crate::obs::Recorder,
    scope: &str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let unlimited = crate::budget::RunBudget::unlimited();
    match map_chunks_budgeted(threads, items, chunks, obs, scope, &unlimited, f) {
        Ok(out) => out,
        Err(_) => unreachable!("an unlimited budget can never interrupt a region"),
    }
}

/// A parallel region stopped by its [`RunBudget`] at a chunk boundary.
///
/// `prefix` holds the results of the chunks that completed — always a
/// *contiguous leading run* `0..prefix.len()` of the region's chunk
/// order, so a caller can checkpoint it and later resume from chunk
/// `prefix.len()` with bit-identical results.
#[derive(Debug)]
pub struct Interrupted<R> {
    /// Results of the completed leading chunks, in chunk order.
    pub prefix: Vec<R>,
    /// What tripped, with chunk-level progress attached.
    pub budget: crate::budget::BudgetExceeded,
}

/// [`map_chunks_counted`] with cooperative budget checks at chunk
/// boundaries.
///
/// The budget is checked once before each chunk *claim* (on every
/// worker). When a check trips, no further chunks are claimed; chunks
/// already in flight complete, so the finished results always form a
/// contiguous leading prefix of the chunk order, returned inside
/// [`Interrupted`]. A trip that lands after every chunk was already
/// claimed is *not* an interruption — the region completes and returns
/// `Ok`, because there is nothing left to skip.
///
/// With the deterministic check-count fuse
/// ([`RunBudget::cancel_after_checks`]), a region interrupted with
/// `n` remaining checks completes exactly `min(n, chunks)` chunks —
/// independent of the worker count — because every successful check is
/// followed by exactly one chunk claim, and claims hand out chunk
/// indices in order. This is what makes the chaos harness's
/// kill-and-resume sweeps reproducible at any `DLP_THREADS`.
///
/// # Errors
///
/// [`Interrupted`] carrying the completed prefix and the
/// [`BudgetExceeded`] that stopped the region.
pub fn map_chunks_budgeted<T, R, F>(
    threads: usize,
    items: &[T],
    chunks: usize,
    obs: &crate::obs::Recorder,
    scope: &str,
    budget: &RunBudget,
    f: F,
) -> Result<Vec<R>, Interrupted<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    use std::time::Instant;

    let bounds = chunk_bounds(items.len(), chunks);
    let n = bounds.len();
    let recording = obs.is_enabled();
    let interrupted = |prefix: Vec<R>, reason: BudgetReason| {
        let completed = prefix.len() as u64;
        Err(Interrupted {
            prefix,
            budget: BudgetExceeded {
                reason,
                completed,
                total: n as u64,
            },
        })
    };
    if threads <= 1 || n <= 1 {
        let region_start = recording.then(Instant::now);
        let mut stats = WorkerStats::default();
        let mut out = Vec::with_capacity(n);
        let mut tripped = None;
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            if let Err(reason) = budget.check() {
                tripped = Some(reason);
                break;
            }
            let chunk_start = recording.then(Instant::now);
            let r = f(i, &items[lo..hi]);
            if let Some(start) = chunk_start {
                let nanos = elapsed_nanos(start);
                stats.busy_nanos = stats.busy_nanos.saturating_add(nanos);
                stats.chunks += 1;
                stats.items += (hi - lo) as u64;
                stats.chunk_hist.observe(nanos as f64);
            }
            out.push(r);
        }
        if let Some(start) = region_start {
            if n > 0 {
                record_region(obs, scope, elapsed_nanos(start), 1, &[stats]);
            }
        }
        return match tripped {
            None => Ok(out),
            Some(reason) => interrupted(out, reason),
        };
    }
    let workers = threads.min(n);
    let region_start = recording.then(Instant::now);
    let next = AtomicUsize::new(0);
    let trip_flag = std::sync::atomic::AtomicBool::new(false);
    let trip_reason: Mutex<Option<BudgetReason>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let stats_slots: Vec<Mutex<WorkerStats>> =
        (0..workers).map(|_| Mutex::new(WorkerStats::default())).collect();
    std::thread::scope(|thread_scope| {
        for w in 0..workers {
            let next = &next;
            let slots = &slots;
            let bounds = &bounds;
            let f = &f;
            let stats_slots = &stats_slots;
            let trip_flag = &trip_flag;
            let trip_reason = &trip_reason;
            thread_scope.spawn(move || {
                let mut stats = WorkerStats::default();
                loop {
                    // A check *must* precede every claim: the fuse
                    // determinism contract counts one successful check
                    // per claimed chunk. Once any worker trips, the
                    // rest stand down without consuming checks.
                    if trip_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Err(reason) = budget.check() {
                        trip_flag.store(true, Ordering::Relaxed);
                        lock_or_recover(trip_reason).get_or_insert(reason);
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (lo, hi) = bounds[i];
                    let chunk_start = recording.then(Instant::now);
                    let r = f(i, &items[lo..hi]);
                    if let Some(start) = chunk_start {
                        let nanos = elapsed_nanos(start);
                        stats.busy_nanos = stats.busy_nanos.saturating_add(nanos);
                        stats.chunks += 1;
                        stats.chunk_hist.observe(nanos as f64);
                    }
                    stats.items += (hi - lo) as u64;
                    *lock_or_recover(&slots[i]) = Some(r);
                }
                if recording {
                    *lock_or_recover(&stats_slots[w]) = stats;
                }
            });
        }
    });
    if let Some(start) = region_start {
        let wall = elapsed_nanos(start);
        let stats: Vec<WorkerStats> = stats_slots
            .into_iter()
            .map(|slot| std::mem::take(&mut *lock_or_recover(&slot)))
            .collect();
        record_region(obs, scope, wall, workers, &stats);
    }
    let mut results: Vec<Option<R>> = slots
        .into_iter()
        .map(|slot| lock_or_recover(&slot).take())
        .collect();
    let reason = lock_or_recover(&trip_reason).take();
    let prefix_len = results.iter().take_while(|r| r.is_some()).count();
    if prefix_len == n {
        // Every chunk completed; a trip after the last claim is moot.
        return Ok(results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| unreachable!("scoped worker exited without storing its chunk"))
            })
            .collect());
    }
    match reason {
        Some(reason) => {
            debug_assert!(
                results[prefix_len..].iter().all(Option::is_none),
                "completed chunks must form a contiguous prefix"
            );
            let prefix = results
                .drain(..prefix_len)
                .map(|r| {
                    r.unwrap_or_else(|| {
                        unreachable!("prefix scan counted a chunk that is not there")
                    })
                })
                .collect();
            interrupted(prefix, reason)
        }
        None => unreachable!("scoped worker exited without storing its chunk"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_parsing() {
        assert_eq!(ThreadCount::from_setting(None), Ok(ThreadCount::Auto));
        assert_eq!(ThreadCount::from_setting(Some("")), Ok(ThreadCount::Auto));
        assert_eq!(
            ThreadCount::from_setting(Some("  2 ")),
            ThreadCount::fixed(2)
        );
        for bad in ["0", "-1", "1.5", "four", "4x"] {
            let err = ThreadCount::from_setting(Some(bad)).unwrap_err();
            assert_eq!(err.value(), bad.trim());
            assert!(err.to_string().contains("DLP_THREADS"), "{err}");
        }
        assert!(ThreadCount::fixed(0).is_err());
        assert!(ThreadCount::Auto.get() >= 1);
        assert_eq!(ThreadCount::fixed(3).map(ThreadCount::get), Ok(3));
    }

    #[test]
    fn chunk_bounds_cover_exactly_once() {
        for len in [0usize, 1, 2, 7, 64, 70, 100] {
            for chunks in [1usize, 2, 3, 4, 8, 100] {
                let bounds = chunk_bounds(len, chunks);
                if len == 0 {
                    assert!(bounds.is_empty());
                    continue;
                }
                assert_eq!(bounds.len(), chunks.min(len));
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[bounds.len() - 1].1, len);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                    assert!(w[0].1 > w[0].0, "non-empty");
                }
                // Even split: sizes differ by at most one.
                let sizes: Vec<usize> = bounds.iter().map(|&(a, b)| b - a).collect();
                let min = sizes.iter().min().copied().unwrap_or(0);
                let max = sizes.iter().max().copied().unwrap_or(0);
                assert!(max - min <= 1, "len={len} chunks={chunks} {sizes:?}");
            }
        }
    }

    #[test]
    fn map_chunks_is_thread_count_invariant() {
        let items: Vec<u64> = (0..1000).map(|i| i * 7 + 3).collect();
        let reference = map_chunks(1, &items, 16, |ci, c| (ci, c.iter().sum::<u64>()));
        for threads in [2usize, 3, 4, 8] {
            assert_eq!(
                map_chunks(threads, &items, 16, |ci, c| (ci, c.iter().sum::<u64>())),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn map_chunks_handles_degenerate_shapes() {
        let empty: &[u8] = &[];
        assert!(map_chunks(4, empty, 8, |_, c| c.len()).is_empty());
        assert_eq!(map_chunks(4, &[42u8], 8, |_, c| c[0]), vec![42]);
        // More chunks than items: one chunk per item.
        let out = map_chunks(2, &[1u8, 2, 3], 100, |_, c| c.to_vec());
        assert_eq!(out, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn counted_map_matches_plain_and_tallies_all_items() {
        use crate::obs::Recorder;

        let items: Vec<u32> = (0..500).collect();
        let reference = map_chunks(1, &items, 8, |_, c| c.iter().sum::<u32>());
        let obs = Recorder::enabled();
        let got = map_chunks_counted(3, &items, 8, &obs, "t", |_, c| c.iter().sum::<u32>());
        assert_eq!(got, reference);
        let report = obs.report("par");
        let total: u64 = report
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("t.worker") && n.ends_with(".items"))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(total, 500, "per-worker tallies must cover every item");

        // The serial path attributes everything to worker 0.
        let serial_obs = Recorder::enabled();
        let _ = map_chunks_counted(1, &items, 8, &serial_obs, "s", |_, c| c.len());
        assert_eq!(serial_obs.report("x").counter("s.worker0.items"), Some(500));
    }

    #[test]
    fn counted_map_records_worker_timelines() {
        use crate::obs::Recorder;

        let items: Vec<u32> = (0..400).collect();
        let obs = Recorder::enabled();
        // Two regions under one scope, as the PPSFP per-block loop does.
        for _ in 0..2 {
            let _ = map_chunks_counted(4, &items, 8, &obs, "t", |_, c| {
                c.iter().map(|&x| u64::from(x) * 3).sum::<u64>()
            });
        }
        let report = obs.report("par");
        // Chunk accounting: 8 chunks per region, every chunk timed.
        let chunks: u64 = report
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("t.worker") && n.ends_with(".chunks"))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(chunks, 16);
        let hist = report.hist("t.chunk_nanos").expect("chunk duration hist");
        assert_eq!(hist.count, 16);
        assert!(hist.p50().is_some());
        // Region accounting: wall and slot totals, derived gauges.
        let wall = report.counter("t.wall_nanos").expect("wall counter");
        assert_eq!(report.counter("t.slot_nanos"), Some(wall * 4));
        let utilization = report.gauge("t.utilization").expect("utilization");
        assert!(utilization > 0.0 && utilization <= 1.0, "{utilization}");
        let imbalance = report.gauge("t.imbalance").expect("imbalance");
        assert!(imbalance >= 1.0, "{imbalance}");
        // Every spawned worker has a timeline point per region, busy or
        // idle — idleness is the signal the gauges summarise.
        for w in 0..4 {
            let timeline = report
                .series(&format!("t.worker{w}.timeline"))
                .unwrap_or_else(|| panic!("worker{w} timeline"));
            assert_eq!(timeline.len(), 2);
            assert!(report
                .counter(&format!("t.worker{w}.wait_nanos"))
                .is_some());
        }
        // The serial path reports a single fully-utilised worker.
        let serial = Recorder::enabled();
        let _ = map_chunks_counted(1, &items, 8, &serial, "s", |_, c| c.len());
        let report = serial.report("serial");
        assert_eq!(report.counter("s.slot_nanos"), report.counter("s.wall_nanos"));
        assert_eq!(report.hist("s.chunk_nanos").map(|h| h.count), Some(8));
        assert_eq!(report.gauge("s.imbalance"), Some(1.0));
        // A disabled recorder gets no telemetry at all.
        let noop = Recorder::noop();
        let _ = map_chunks_counted(4, &items, 8, noop, "n", |_, c| c.len());
        assert!(noop.report("n").counters.is_empty());
    }

    #[test]
    fn map_chunks_passes_chunk_indices_in_order() {
        let items: Vec<u8> = vec![0; 37];
        let indices = map_chunks(4, &items, 5, |ci, _| ci);
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn budgeted_map_with_unlimited_budget_matches_plain() {
        let items: Vec<u64> = (0..300).collect();
        let reference = map_chunks(1, &items, 8, |ci, c| (ci, c.iter().sum::<u64>()));
        for threads in [1usize, 2, 4] {
            let got = map_chunks_budgeted(
                threads,
                &items,
                8,
                crate::obs::Recorder::noop(),
                "b",
                &RunBudget::unlimited(),
                |ci, c| (ci, c.iter().sum::<u64>()),
            );
            assert_eq!(got.ok(), Some(reference.clone()), "threads={threads}");
        }
    }

    #[test]
    fn fuse_interrupts_with_a_thread_count_invariant_prefix() {
        let items: Vec<u64> = (0..640).collect();
        let chunks = 16;
        let full = map_chunks(1, &items, chunks, |_, c| c.iter().sum::<u64>());
        for kill in [0u64, 1, 3, 7, 15] {
            for threads in [1usize, 2, 4] {
                let budget = RunBudget::unlimited().cancel_after_checks(kill);
                let out = map_chunks_budgeted(
                    threads,
                    &items,
                    chunks,
                    crate::obs::Recorder::noop(),
                    "b",
                    &budget,
                    |_, c| c.iter().sum::<u64>(),
                );
                let interrupted = out.expect_err("fuse below chunk count must interrupt");
                assert_eq!(
                    interrupted.prefix.len(),
                    kill as usize,
                    "kill={kill} threads={threads}: prefix length is the fuse value"
                );
                assert_eq!(
                    interrupted.prefix,
                    full[..kill as usize],
                    "kill={kill} threads={threads}: prefix must match the full run"
                );
                assert_eq!(interrupted.budget.completed, kill);
                assert_eq!(interrupted.budget.total, chunks as u64);
                assert_eq!(interrupted.budget.reason, BudgetReason::Cancelled);
            }
        }
    }

    #[test]
    fn late_trips_do_not_interrupt_a_completed_region() {
        let items: Vec<u64> = (0..64).collect();
        let chunks = 4;
        // Enough checks to claim every chunk: the region completes even
        // though trailing worker checks trip on the exhausted fuse.
        for threads in [1usize, 2, 4] {
            let budget = RunBudget::unlimited().cancel_after_checks(chunks as u64);
            let out = map_chunks_budgeted(
                threads,
                &items,
                chunks,
                crate::obs::Recorder::noop(),
                "b",
                &budget,
                |_, c| c.len(),
            );
            let out = out.unwrap_or_else(|_| panic!("threads={threads}: all chunks claimed"));
            assert_eq!(out, vec![16, 16, 16, 16]);
        }
    }

    #[test]
    fn cancel_token_interrupts_before_the_first_chunk() {
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited().with_cancel(&token);
        let items: Vec<u8> = vec![1; 100];
        for threads in [1usize, 4] {
            let err = map_chunks_budgeted(
                threads,
                &items,
                8,
                crate::obs::Recorder::noop(),
                "b",
                &budget,
                |_, c| c.len(),
            )
            .expect_err("a cancelled token stops the region up front");
            assert!(err.prefix.is_empty());
            assert_eq!(err.budget.completed, 0);
            assert_eq!(err.budget.reason, BudgetReason::Cancelled);
        }
    }
}
