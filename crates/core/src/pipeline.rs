//! The unified error and diagnostics layer of the pipeline.
//!
//! Every crate in the workspace exposes a typed per-stage error
//! (`NetlistError`, `LayoutError`, `ExtractError`, `SimError`,
//! `AtpgError`, `ModelError`) and converts it into [`PipelineError`] via
//! `From`, so the bench harness and the fig/ablation binaries can
//! propagate a single error type through the whole
//! layout → extraction → ATPG → simulation → model flow with the failing
//! [`Stage`] attached.
//!
//! Recoverable anomalies — a layout with connectivity violations, a fault
//! list pruned to nothing — do not error at all: they degrade gracefully
//! into [`Diagnostics`] warnings carried alongside partial results.

use std::error::Error;
use std::fmt;

use crate::ModelError;

/// The stage of the pipeline an error or warning originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Stage {
    /// Gate-level netlist construction and parsing (`dlp-circuit`).
    Netlist,
    /// Placement, routing, and chip assembly (`dlp-layout`).
    Layout,
    /// Defect statistics and critical-area fault extraction
    /// (`dlp-extract`).
    Extraction,
    /// Test generation (`dlp-atpg`).
    Atpg,
    /// Gate- or switch-level fault simulation (`dlp-sim`).
    Simulation,
    /// Defect-level model evaluation and fitting (`dlp-core`).
    Model,
    /// Harness orchestration itself (`dlp-bench`).
    Bench,
    /// Durable artifacts: checkpoints, reports, baselines (`dlp-core`'s
    /// [`crate::ckpt`] layer).
    Artifact,
    /// The projection service: HTTP handling and the response cache
    /// (`dlp-serve`).
    Serve,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Netlist => "netlist",
            Stage::Layout => "layout",
            Stage::Extraction => "extraction",
            Stage::Atpg => "atpg",
            Stage::Simulation => "simulation",
            Stage::Model => "model",
            Stage::Bench => "bench",
            Stage::Artifact => "artifact",
            Stage::Serve => "serve",
        })
    }
}

/// A typed, stage-tagged pipeline error.
///
/// Constructed directly by harness code, or via `From` from any
/// per-crate error. The original error is retained as
/// [`Error::source`], so callers can downcast for programmatic
/// handling while `Display` gives a one-line `stage: message` rendering.
///
/// # Example
///
/// ```
/// use dlp_core::{ModelError, PipelineError, Stage};
///
/// let inner = ModelError::BadFitData("empty fault list");
/// let err = PipelineError::from(inner);
/// assert_eq!(err.stage(), Stage::Model);
/// assert!(err.to_string().contains("empty fault list"));
/// ```
#[derive(Debug)]
pub struct PipelineError {
    stage: Stage,
    message: String,
    source: Option<Box<dyn Error + Send + Sync + 'static>>,
}

impl PipelineError {
    /// A new error with no underlying source.
    pub fn new(stage: Stage, message: impl Into<String>) -> Self {
        PipelineError {
            stage,
            message: message.into(),
            source: None,
        }
    }

    /// Wraps a per-crate error, keeping it as [`Error::source`].
    pub fn with_source(
        stage: Stage,
        source: impl Error + Send + Sync + 'static,
    ) -> Self {
        PipelineError {
            stage,
            message: source.to_string(),
            source: Some(Box::new(source)),
        }
    }

    /// Prefixes the message with context, preserving stage and source.
    #[must_use]
    pub fn context(mut self, what: impl fmt::Display) -> Self {
        self.message = format!("{what}: {}", self.message);
        self
    }

    /// The pipeline stage the error arose in.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The human-readable message (without the stage prefix).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The [`crate::budget::BudgetExceeded`] behind this error, if the
    /// run was interrupted by its budget rather than genuinely failing.
    /// Walks the source chain, so per-stage wrappers (`SimError`,
    /// `NDetectError`, `ModelError`) are looked through.
    pub fn budget(&self) -> Option<&crate::budget::BudgetExceeded> {
        let mut cursor: Option<&(dyn Error + 'static)> = self.source();
        while let Some(err) = cursor {
            if let Some(b) = err.downcast_ref::<crate::budget::BudgetExceeded>() {
                return Some(b);
            }
            cursor = err.source();
        }
        None
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} stage: {}", self.stage, self.message)
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn Error + 'static))
    }
}

impl From<ModelError> for PipelineError {
    fn from(e: ModelError) -> Self {
        PipelineError::with_source(Stage::Model, e)
    }
}

impl From<crate::ckpt::CkptError> for PipelineError {
    fn from(e: crate::ckpt::CkptError) -> Self {
        PipelineError::with_source(Stage::Artifact, e)
    }
}

impl From<crate::budget::BudgetConfigError> for PipelineError {
    fn from(e: crate::budget::BudgetConfigError) -> Self {
        PipelineError::with_source(Stage::Bench, e)
    }
}

/// One collected warning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stage that degraded.
    pub stage: Stage,
    /// What happened and what the partial result means.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.message)
    }
}

/// Warnings accumulated while a pipeline run degrades gracefully.
///
/// A stage that hits a recoverable anomaly records a warning here and
/// carries on with a partial result instead of aborting. Callers decide
/// whether warnings are acceptable for their use case.
///
/// # Example
///
/// ```
/// use dlp_core::{Diagnostics, Stage};
///
/// let mut diags = Diagnostics::new();
/// assert!(diags.is_empty());
/// diags.warn(Stage::Layout, "3 connectivity violations; critical areas may be off");
/// assert_eq!(diags.len(), 1);
/// assert!(diags.to_string().contains("[layout]"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    warnings: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Records a warning.
    pub fn warn(&mut self, stage: Stage, message: impl Into<String>) {
        self.warnings.push(Diagnostic {
            stage,
            message: message.into(),
        });
    }

    /// True if no warnings were recorded.
    pub fn is_empty(&self) -> bool {
        self.warnings.is_empty()
    }

    /// Number of warnings.
    pub fn len(&self) -> usize {
        self.warnings.len()
    }

    /// The recorded warnings, in order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.warnings.iter()
    }

    /// Appends every warning of `other`.
    pub fn merge(&mut self, other: Diagnostics) {
        self.warnings.extend(other.warnings);
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        let e = PipelineError::new(Stage::Extraction, "no defect classes");
        assert_eq!(e.to_string(), "extraction stage: no defect classes");
        assert!(e.source().is_none());
    }

    #[test]
    fn from_model_error_keeps_source() {
        let e = PipelineError::from(ModelError::FitDiverged { iterations: 7 });
        assert_eq!(e.stage(), Stage::Model);
        let src = e.source().expect("source retained");
        assert!(src.downcast_ref::<ModelError>().is_some());
    }

    #[test]
    fn context_prefixes_message() {
        let e = PipelineError::new(Stage::Bench, "boom").context("extracting c17");
        assert_eq!(e.message(), "extracting c17: boom");
        assert_eq!(e.stage(), Stage::Bench);
    }

    #[test]
    fn diagnostics_accumulate_and_merge() {
        let mut a = Diagnostics::new();
        a.warn(Stage::Layout, "one");
        let mut b = Diagnostics::new();
        b.warn(Stage::Extraction, "two");
        a.merge(b);
        assert_eq!(a.len(), 2);
        let text = a.to_string();
        assert!(text.contains("[layout] one"));
        assert!(text.contains("[extraction] two"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<PipelineError>();
    }
}
