/// A defect level expressed in parts per million, for display and
/// threshold specification.
///
/// Internally every model works on fractions in `[0, 1]`; `Ppm` is the
/// human-facing unit the paper (and industry) quotes.
///
/// # Example
///
/// ```
/// use dlp_core::Ppm;
///
/// let dl = Ppm::from_fraction(0.0001);
/// assert_eq!(dl.value(), 100.0);
/// assert_eq!(dl.to_string(), "100 ppm");
/// assert_eq!(Ppm::new(250.0).to_fraction(), 0.00025);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Ppm(f64);

impl Ppm {
    /// Wraps a value already in parts per million.
    pub const fn new(ppm: f64) -> Self {
        Ppm(ppm)
    }

    /// Converts a fraction in `[0, 1]` to ppm.
    pub fn from_fraction(fraction: f64) -> Self {
        Ppm(fraction * 1e6)
    }

    /// The raw ppm value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts back to a fraction.
    pub fn to_fraction(self) -> f64 {
        self.0 / 1e6
    }
}

impl From<Ppm> for f64 {
    fn from(p: Ppm) -> f64 {
        p.0
    }
}

impl core::fmt::Display for Ppm {
    /// Formats with enough significant digits that a nonzero value
    /// never rounds to a zero string: magnitudes ≥ 10 print as
    /// integers, smaller magnitudes keep three significant digits
    /// (growing the decimal places as the value shrinks), and values
    /// below 0.0001 ppm switch to scientific notation. Only an exact
    /// zero prints `"0 ppm"`; signs are preserved for negative inputs
    /// (e.g. a defect-level *reduction*).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let magnitude = self.0.abs();
        if magnitude >= 10.0 || self.0 == 0.0 {
            write!(f, "{:.0} ppm", self.0)
        } else if magnitude >= 1e-4 {
            // Three significant digits: 1.23, 0.0456, 0.000789.
            let leading = magnitude.log10().floor() as i32;
            let decimals = (2 - leading).max(2) as usize;
            write!(f, "{:.*} ppm", decimals, self.0)
        } else if magnitude.is_nan() {
            write!(f, "NaN ppm")
        } else {
            write!(f, "{:.2e} ppm", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let p = Ppm::from_fraction(0.002279);
        assert!((p.value() - 2279.0).abs() < 1e-9);
        assert!((p.to_fraction() - 0.002279).abs() < 1e-15);
    }

    #[test]
    fn display_scales_precision() {
        assert_eq!(Ppm::new(2279.0).to_string(), "2279 ppm");
        assert_eq!(Ppm::new(1.234).to_string(), "1.23 ppm");
        assert_eq!(Ppm::new(0.0).to_string(), "0 ppm");
        assert_eq!(Ppm::new(0.456).to_string(), "0.456 ppm");
        assert_eq!(Ppm::new(0.004).to_string(), "0.00400 ppm");
        assert_eq!(Ppm::new(3.2e-5).to_string(), "3.20e-5 ppm");
    }

    #[test]
    fn nonzero_never_displays_as_zero() {
        // The old sub-10 formatting used {:.2}, so residual defect
        // levels in (0, 0.005) ppm printed as "0.00 ppm".
        for &ppm in &[0.004, 0.0049, 1e-3, 1e-6, 1e-12, 4.9e-9] {
            let shown = Ppm::from_fraction(ppm / 1e6).to_string();
            assert_ne!(shown, "0.00 ppm", "{ppm} ppm hidden");
            assert_ne!(shown, "0 ppm", "{ppm} ppm hidden");
            assert!(
                shown.chars().any(|c| ('1'..='9').contains(&c)),
                "{ppm} ppm shows no significant digit: {shown}"
            );
        }
    }

    #[test]
    fn negative_values_keep_their_sign() {
        assert_eq!(Ppm::new(-2279.0).to_string(), "-2279 ppm");
        assert_eq!(Ppm::new(-1.234).to_string(), "-1.23 ppm");
        assert_eq!(Ppm::new(-0.004).to_string(), "-0.00400 ppm");
        assert_eq!(Ppm::new(-3.2e-5).to_string(), "-3.20e-5 ppm");
    }

    #[test]
    fn non_finite_values_display_without_panicking() {
        assert_eq!(Ppm::new(f64::INFINITY).to_string(), "inf ppm");
        assert_eq!(Ppm::new(f64::NEG_INFINITY).to_string(), "-inf ppm");
        assert_eq!(Ppm::new(f64::NAN).to_string(), "NaN ppm");
    }
}
