/// A defect level expressed in parts per million, for display and
/// threshold specification.
///
/// Internally every model works on fractions in `[0, 1]`; `Ppm` is the
/// human-facing unit the paper (and industry) quotes.
///
/// # Example
///
/// ```
/// use dlp_core::Ppm;
///
/// let dl = Ppm::from_fraction(0.0001);
/// assert_eq!(dl.value(), 100.0);
/// assert_eq!(dl.to_string(), "100 ppm");
/// assert_eq!(Ppm::new(250.0).to_fraction(), 0.00025);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Ppm(f64);

impl Ppm {
    /// Wraps a value already in parts per million.
    pub const fn new(ppm: f64) -> Self {
        Ppm(ppm)
    }

    /// Converts a fraction in `[0, 1]` to ppm.
    pub fn from_fraction(fraction: f64) -> Self {
        Ppm(fraction * 1e6)
    }

    /// The raw ppm value.
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts back to a fraction.
    pub fn to_fraction(self) -> f64 {
        self.0 / 1e6
    }
}

impl From<Ppm> for f64 {
    fn from(p: Ppm) -> f64 {
        p.0
    }
}

impl core::fmt::Display for Ppm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.0 >= 10.0 || self.0 == 0.0 {
            write!(f, "{:.0} ppm", self.0)
        } else {
            write!(f, "{:.2} ppm", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let p = Ppm::from_fraction(0.002279);
        assert!((p.value() - 2279.0).abs() < 1e-9);
        assert!((p.to_fraction() - 0.002279).abs() < 1e-15);
    }

    #[test]
    fn display_scales_precision() {
        assert_eq!(Ppm::new(2279.0).to_string(), "2279 ppm");
        assert_eq!(Ppm::new(1.234).to_string(), "1.23 ppm");
        assert_eq!(Ppm::new(0.0).to_string(), "0 ppm");
    }
}
