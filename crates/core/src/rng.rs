//! Self-contained deterministic RNG (xorshift64*).
//!
//! Every stochastic component of the workspace — Monte Carlo fallout,
//! random test vectors, ATPG don't-care fill — draws from this one
//! generator so the whole pipeline is reproducible from a single `u64`
//! seed with no external dependency. The multiplier is Vigna's
//! xorshift64* constant; the low 53 bits of the scrambled state map to a
//! uniform `f64` in `[0, 1)`.

/// A deterministic xorshift64* pseudo-random generator.
///
/// # Example
///
/// ```
/// use dlp_core::rng::Xorshift64Star;
///
/// let mut a = Xorshift64Star::new(42);
/// let mut b = Xorshift64Star::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Creates a generator from a seed. Any seed is accepted; a zero
    /// state (which would be a fixed point) is avoided by forcing the
    /// low bit.
    pub fn new(seed: u64) -> Self {
        Xorshift64Star { state: seed | 1 }
    }

    /// Derives stream `stream` of a family of decorrelated generators
    /// from one master seed (SplitMix64 finalisation of the pair).
    ///
    /// Used by the sharded Monte-Carlo path: shard `s` always draws from
    /// `split(master, s)`, so the decomposition into streams — and hence
    /// every result — is independent of how many worker threads consume
    /// the shards.
    ///
    /// # Example
    ///
    /// ```
    /// use dlp_core::rng::Xorshift64Star;
    ///
    /// let mut a = Xorshift64Star::split(7, 0);
    /// let mut b = Xorshift64Star::split(7, 1);
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// assert_eq!(Xorshift64Star::split(7, 1), Xorshift64Star::split(7, 1));
    /// ```
    pub fn split(master: u64, stream: u64) -> Self {
        let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Xorshift64Star::new(z ^ (z >> 31))
    }

    /// Advances the state and returns the next scrambled 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & (1 << 32) != 0
    }

    /// A uniform integer in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        (self.next_f64() * bound as f64) as usize % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xorshift64Star::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xorshift64Star::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xorshift64Star::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn split_streams_are_decorrelated_and_deterministic() {
        let take = |mut r: Xorshift64Star| -> Vec<u64> { (0..16).map(|_| r.next_u64()).collect() };
        let s0 = take(Xorshift64Star::split(42, 0));
        let s1 = take(Xorshift64Star::split(42, 1));
        assert_ne!(s0, s1, "adjacent streams must differ");
        assert_eq!(s0, take(Xorshift64Star::split(42, 0)));
        // A different master seed moves every stream.
        assert_ne!(s0, take(Xorshift64Star::split(43, 0)));
        // No overlap in a short window (the birthday bound makes a
        // collision here astronomically unlikely for a good mix).
        assert!(s0.iter().all(|x| !s1.contains(x)));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xorshift64Star::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range_and_fill_it() {
        let mut r = Xorshift64Star::new(123);
        let xs: Vec<f64> = (0..10_000).map(|_| r.next_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bools_are_roughly_fair() {
        let mut r = Xorshift64Star::new(99);
        let trues = (0..10_000).filter(|_| r.next_bool()).count();
        assert!((4_500..5_500).contains(&trues), "{trues} / 10000");
    }

    #[test]
    fn bounded_draws_cover_the_range() {
        let mut r = Xorshift64Star::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let k = r.next_below(7);
            assert!(k < 7);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(r.next_below(0), 0);
    }
}
