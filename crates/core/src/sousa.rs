//! The paper's new defect-level model (eq. 11):
//!
//! ```text
//! DL(T) = 1 − Y^(1 − θ_max · (1 − (1−T)^R))
//! ```
//!
//! Two parameters extend Williams–Brown:
//!
//! * `R` — the susceptibility ratio (eq. 10): `R > 1` when the faults that
//!   dominate yield loss (bridges, in bridge-heavy CMOS lines) are easier
//!   to detect than stuck-at faults;
//! * `θ_max` — the maximum realistic coverage the test set + detection
//!   technique can reach: steady-state voltage testing cannot see some
//!   opens, so `θ_max < 1` and a *residual defect level*
//!   `1 − Y^(1−θ_max)` remains even at `T = 100 %`.
//!
//! With `R = 1, θ_max = 1` the model reduces exactly to Williams–Brown.

use crate::coverage::theta_of_t;
use crate::error::{check_open_unit, check_positive, check_unit};
use crate::ModelError;

/// The Sousa–Gonçalves–Teixeira–Williams defect-level model.
///
/// # Example: the paper's Example 2
///
/// 100 % stuck-at coverage does *not* mean zero defect level when the test
/// set is incomplete for the real fault population:
///
/// ```
/// use dlp_core::sousa::SousaModel;
///
/// let m = SousaModel::new(0.75, 1.0, 0.99)?;
/// let dl = m.defect_level(1.0)?;
/// assert!(dl > 2000e-6); // thousands of ppm despite T = 100 %
/// assert_eq!(dl, m.residual_defect_level());
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SousaModel {
    y: f64,
    r: f64,
    theta_max: f64,
}

impl SousaModel {
    /// Creates the model for yield `y ∈ (0,1)`, susceptibility ratio
    /// `r > 0` and maximum realistic coverage `theta_max ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] for parameters outside those ranges.
    pub fn new(y: f64, r: f64, theta_max: f64) -> Result<Self, ModelError> {
        let y = check_open_unit("yield", y)?;
        let r = check_positive("susceptibility ratio", r)?;
        let theta_max = check_unit("theta_max", theta_max)?;
        if theta_max == 0.0 {
            return Err(ModelError::OutOfDomain {
                parameter: "theta_max",
                value: theta_max,
                range: "(0, 1]",
            });
        }
        Ok(SousaModel { y, r, theta_max })
    }

    /// The Williams–Brown special case `R = 1, θ_max = 1`.
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] unless `y ∈ (0, 1)`.
    pub fn williams_brown(y: f64) -> Result<Self, ModelError> {
        SousaModel::new(y, 1.0, 1.0)
    }

    /// The yield parameter.
    pub fn yield_value(&self) -> f64 {
        self.y
    }

    /// The susceptibility ratio `R`.
    pub fn susceptibility_ratio(&self) -> f64 {
        self.r
    }

    /// The maximum realistic coverage `θ_max`.
    pub fn theta_max(&self) -> f64 {
        self.theta_max
    }

    /// Defect level at stuck-at coverage `t` (eq. 11).
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] unless `t ∈ [0, 1]`.
    pub fn defect_level(&self, t: f64) -> Result<f64, ModelError> {
        let theta = theta_of_t(t, self.r, self.theta_max)?;
        Ok(1.0 - self.y.powf(1.0 - theta))
    }

    /// The residual defect level `1 − Y^(1−θ_max)`: the floor no amount of
    /// stuck-at coverage can cross with this detection technique
    /// (0 when `θ_max = 1`).
    pub fn residual_defect_level(&self) -> f64 {
        1.0 - self.y.powf(1.0 - self.theta_max)
    }

    /// The stuck-at coverage required to reach defect level `dl` — the
    /// inverse of [`defect_level`](Self::defect_level) (the paper's
    /// Example 1 computation).
    ///
    /// # Guarantee
    ///
    /// The returned coverage is *sufficient*:
    /// `defect_level(required_coverage(dl)?)? <= dl` holds exactly, for
    /// every reachable `dl` — including values barely above
    /// [`residual_defect_level`](Self::residual_defect_level), where
    /// the algebraic inversion alone can come back a few ulps short
    /// (the `powf(1/R)`/`powf(R)` round trip loses precision exactly
    /// where `DL(T)` is flattest, so a tiny coverage deficit used to
    /// turn into a defect-level excess well above f64 noise). A bounded
    /// upward correction absorbs that error; the result overshoots the
    /// minimal coverage by at most a few ulps.
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] unless `dl ∈ [0, 1]`;
    /// [`ModelError::Unreachable`] if `dl` is below the residual defect
    /// level or above the zero-coverage fallout `1 − Y`.
    pub fn required_coverage(&self, dl: f64) -> Result<f64, ModelError> {
        let dl = check_unit("defect level", dl)?;
        let residual = self.residual_defect_level();
        if dl < residual {
            return Err(ModelError::Unreachable {
                target: "defect level",
                requested: dl,
                limit: residual,
            });
        }
        let max_dl = 1.0 - self.y;
        if dl > max_dl {
            return Err(ModelError::Unreachable {
                target: "defect level",
                requested: dl,
                limit: max_dl,
            });
        }
        // Invert eq. 11:
        //   1 - theta = ln(1-DL)/ln(Y)
        //   (1-T)^R = 1 - theta/theta_max
        // `inner` is clamped to the same [0, 1] range the forward
        // direction produces, so rounding in theta cannot leak a
        // negative base into powf.
        let theta = 1.0 - (1.0 - dl).ln() / self.y.ln();
        let inner = (1.0 - theta / self.theta_max).clamp(0.0, 1.0);
        if inner == 0.0 {
            // Exactly at (or numerically below) the residual floor.
            return Ok(1.0);
        }
        let mut t = (1.0 - inner.powf(1.0 / self.r)).clamp(0.0, 1.0);
        // Enforce the sufficiency guarantee: walk the coverage up
        // through the few ulps the powf round trip can leave short.
        let mut step = f64::EPSILON;
        for _ in 0..64 {
            if self.defect_level(t)? <= dl {
                return Ok(t);
            }
            t = (t + step).min(1.0);
            step *= 2.0;
        }
        // T = 1 always satisfies the guarantee (DL(1) = residual <= dl).
        Ok(1.0)
    }

    /// Samples `DL(T)` on `points + 1` evenly spaced coverages in
    /// `[0, 1]`, for plotting (Fig. 2 / Fig. 5 model curves).
    ///
    /// Degenerate inputs degrade instead of panicking: `points == 0`
    /// yields the single sample at `T = 1`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        (0..=points)
            .map(|i| {
                let t = if points == 0 {
                    1.0
                } else {
                    i as f64 / points as f64
                };
                // t ∈ [0, 1] by construction, so evaluation cannot fail;
                // fall back to the zero-coverage fallout if it ever did.
                let dl = self.defect_level(t).unwrap_or(1.0 - self.y);
                (t, dl)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::williams_brown;

    #[test]
    fn reduces_to_williams_brown() {
        let m = SousaModel::williams_brown(0.75).unwrap();
        for &t in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            let a = m.defect_level(t).unwrap();
            let b = williams_brown::defect_level(0.75, t).unwrap();
            assert!((a - b).abs() < 1e-12, "t={t}");
        }
        assert_eq!(m.residual_defect_level(), 0.0);
    }

    #[test]
    fn paper_example_1() {
        // Y = 0.75, θ_max = 1, R = 2.1, target DL = 100 ppm -> T = 97.7 %.
        let m = SousaModel::new(0.75, 2.1, 1.0).unwrap();
        let t = m.required_coverage(100e-6).unwrap();
        assert!((t - 0.977).abs() < 5e-4, "T = {t}");
        // Round trip.
        let dl = m.defect_level(t).unwrap();
        assert!((dl - 100e-6).abs() < 1e-9);
        // Williams–Brown demands far more coverage for the same DL.
        let wb = williams_brown::required_coverage(0.75, 100e-6).unwrap();
        assert!(wb > 0.9995);
    }

    #[test]
    fn paper_example_2_residual_floor() {
        // Y = 0.75, θ_max = 0.99, R = 1, T = 100 %. Eq. 11 gives
        // 1 − 0.75^0.01 ≈ 2873 ppm (the paper prints 2279 ppm; see
        // EXPERIMENTS.md). Williams–Brown would predict exactly zero.
        let m = SousaModel::new(0.75, 1.0, 0.99).unwrap();
        let dl = m.defect_level(1.0).unwrap();
        assert!((dl - 0.0028727).abs() < 1e-6, "dl = {dl}");
        assert!((dl - m.residual_defect_level()).abs() < 1e-15);
        assert_eq!(williams_brown::defect_level(0.75, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn fig2_shape_concavity() {
        // Fig. 2: with R = 2, θ_max = 0.96 the curve dips below WB at
        // moderate coverage and crosses above it near T = 1.
        let m = SousaModel::new(0.75, 2.0, 0.96).unwrap();
        let wb = SousaModel::williams_brown(0.75).unwrap();
        let mid_m = m.defect_level(0.5).unwrap();
        let mid_wb = wb.defect_level(0.5).unwrap();
        assert!(
            mid_m < mid_wb,
            "faster-detected realistic faults drop DL sooner"
        );
        let hi_m = m.defect_level(1.0).unwrap();
        let hi_wb = wb.defect_level(1.0).unwrap();
        assert!(
            hi_m > hi_wb,
            "residual floor keeps DL above WB at full coverage"
        );
    }

    #[test]
    fn required_coverage_below_residual_is_unreachable() {
        let m = SousaModel::new(0.75, 1.9, 0.96).unwrap();
        let res = m.residual_defect_level();
        assert!(matches!(
            m.required_coverage(res / 2.0),
            Err(ModelError::Unreachable { .. })
        ));
        // At the floor itself, full coverage is the answer.
        let t = m.required_coverage(res).unwrap();
        assert!((t - 1.0).abs() < 1e-6);
    }

    #[test]
    fn round_trip_near_the_residual_floor_never_overshoots() {
        // The regression: for dl barely above the residual floor the
        // powf(1/R)/powf(R) round trip used to return a coverage whose
        // forward defect level *exceeded* dl by far more than f64
        // noise. The guarantee is now DL(required_coverage(dl)) <= dl.
        for (y, r, theta_max) in [
            (0.75, 1.9, 0.96),
            (0.75, 0.37, 0.96),
            (0.31, 3.4, 0.83),
            (0.9, 0.5, 0.999),
        ] {
            let m = SousaModel::new(y, r, theta_max).unwrap();
            let residual = m.residual_defect_level();
            let fallout = 1.0 - y;
            for exp in 1..=15 {
                let dl = residual + (fallout - residual) * 10f64.powi(-exp);
                let t = m.required_coverage(dl).unwrap();
                assert!((0.0..=1.0).contains(&t), "y={y} r={r} exp={exp}");
                let back = m.defect_level(t).unwrap();
                assert!(
                    back <= dl,
                    "y={y} r={r} tm={theta_max} exp={exp}: DL({t}) = {back} > {dl}"
                );
            }
            // The next representable value above the floor itself.
            let dl = f64::from_bits(residual.to_bits() + 1);
            if dl <= fallout {
                let t = m.required_coverage(dl).unwrap();
                assert!(m.defect_level(t).unwrap() <= dl);
            }
        }
    }

    #[test]
    fn curve_sampling() {
        let m = SousaModel::new(0.75, 1.9, 0.96).unwrap();
        let pts = m.curve(100);
        assert_eq!(pts.len(), 101);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[100].0, 1.0);
        assert!((pts[0].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(SousaModel::new(0.0, 2.0, 0.96).is_err());
        assert!(SousaModel::new(0.75, 0.0, 0.96).is_err());
        assert!(SousaModel::new(0.75, 2.0, 0.0).is_err());
        assert!(SousaModel::new(0.75, 2.0, 1.5).is_err());
    }

    /// Deterministic (y, r, theta_max, t) sample stream for the former
    /// property tests.
    fn param_stream(seed: u64, count: usize) -> Vec<(f64, f64, f64, f64)> {
        let mut rng = crate::rng::Xorshift64Star::new(seed);
        (0..count)
            .map(|_| {
                (
                    0.1 + rng.next_f64() * 0.85,
                    0.3 + rng.next_f64() * 3.7,
                    0.5 + rng.next_f64() * 0.5,
                    rng.next_f64(),
                )
            })
            .collect()
    }

    #[test]
    fn dl_monotone_nonincreasing_in_t() {
        for (y, r, theta_max, _) in param_stream(31, 100) {
            let m = SousaModel::new(y, r, theta_max).unwrap();
            let mut prev = f64::INFINITY;
            for i in 0..=50 {
                let dl = m.defect_level(i as f64 / 50.0).unwrap();
                assert!(dl <= prev + 1e-12, "y={y} r={r} tm={theta_max} i={i}");
                prev = dl;
            }
        }
    }

    #[test]
    fn required_coverage_round_trips() {
        for (y, r, theta_max, t) in param_stream(32, 200) {
            let m = SousaModel::new(y, r, theta_max).unwrap();
            let dl = m.defect_level(t).unwrap();
            let back = m.required_coverage(dl).unwrap();
            let dl_back = m.defect_level(back).unwrap();
            // DL round-trips even where T is numerically flat near the floor.
            assert!((dl_back - dl).abs() < 1e-9, "y={y} r={r} tm={theta_max} t={t}");
        }
    }

    #[test]
    fn dl_bracketed_by_residual_and_fallout() {
        for (y, r, theta_max, t) in param_stream(33, 200) {
            let m = SousaModel::new(y, r, theta_max).unwrap();
            let dl = m.defect_level(t).unwrap();
            assert!(dl >= m.residual_defect_level() - 1e-12);
            assert!(dl <= 1.0 - y + 1e-12);
        }
    }
}

#[cfg(test)]
mod shape_property_tests {
    use super::*;

    /// Monotonicity in each parameter: more detectable faults (higher
    /// theta_max) and easier faults (higher R) never increase DL.
    #[test]
    fn dl_monotone_in_parameters() {
        let mut rng = crate::rng::Xorshift64Star::new(34);
        for _ in 0..150 {
            let y = 0.2 + rng.next_f64() * 0.7;
            let t = 0.05 + rng.next_f64() * 0.9;
            let r = 0.5 + rng.next_f64() * 2.5;
            let theta_max = 0.6 + rng.next_f64() * 0.39;
            let base = SousaModel::new(y, r, theta_max)
                .unwrap()
                .defect_level(t)
                .unwrap();
            let more_r = SousaModel::new(y, r + 0.5, theta_max)
                .unwrap()
                .defect_level(t)
                .unwrap();
            let more_tm = SousaModel::new(y, r, (theta_max + 0.01).min(1.0))
                .unwrap()
                .defect_level(t)
                .unwrap();
            assert!(more_r <= base + 1e-12, "y={y} r={r} tm={theta_max} t={t}");
            assert!(more_tm <= base + 1e-12, "y={y} r={r} tm={theta_max} t={t}");
        }
    }

    /// The Williams–Brown special case is an upper bound at T = 0 and
    /// the same fallout there regardless of (R, theta_max).
    #[test]
    fn zero_coverage_is_parameter_free() {
        let mut rng = crate::rng::Xorshift64Star::new(35);
        for _ in 0..150 {
            let y = 0.2 + rng.next_f64() * 0.7;
            let r = 0.5 + rng.next_f64() * 2.5;
            let theta_max = 0.6 + rng.next_f64() * 0.4;
            let m = SousaModel::new(y, r, theta_max).unwrap();
            assert!((m.defect_level(0.0).unwrap() - (1.0 - y)).abs() < 1e-12);
        }
    }
}
