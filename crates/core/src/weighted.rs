//! Yield, coverage and defect level over *weighted realistic faults*
//! (eqs. 3–6 of the paper).
//!
//! Each layout-extracted fault `j` carries a weight
//! `w_j = −ln(1 − p_j) = A_j · D_j` — the expected number of defects
//! inducing it (critical area × defect density). Then
//!
//! * `Y = exp(−Σ w_j)` (eq. 5),
//! * `θ = Σ_detected w_j / Σ_all w_j` (eq. 6) — the weighted realistic
//!   fault coverage,
//! * `DL = 1 − Y^(1−θ)` (eq. 3).
//!
//! [`FaultWeights`] owns the weight vector and answers all three, plus the
//! unweighted coverage `Γ` used in the paper's Fig. 6 contrast and the
//! log-histogram of Fig. 3.

use crate::error::check_unit;
use crate::ModelError;

/// The weight vector of an extracted realistic fault set.
///
/// # Example
///
/// ```
/// use dlp_core::weighted::FaultWeights;
///
/// let w = FaultWeights::new(vec![1e-3, 2e-3, 4e-3])?;
/// assert!((w.yield_value() - (-7e-3f64).exp()).abs() < 1e-12);
/// // Detecting the heaviest fault alone gives θ = 4/7.
/// let theta = w.theta(&[false, false, true])?;
/// assert!((theta - 4.0 / 7.0).abs() < 1e-12);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWeights {
    weights: Vec<f64>,
    total: f64,
}

impl FaultWeights {
    /// Wraps a weight vector. Weights must be non-negative and finite, and
    /// at least one must be positive.
    ///
    /// # Errors
    ///
    /// [`ModelError::BadFitData`] for an empty vector,
    /// [`ModelError::OutOfDomain`] for a negative/NaN weight or an all-zero
    /// vector.
    pub fn new(weights: Vec<f64>) -> Result<Self, ModelError> {
        if weights.is_empty() {
            return Err(ModelError::BadFitData("empty fault set"));
        }
        let mut total = 0.0;
        for &w in &weights {
            #[allow(clippy::neg_cmp_op_on_partial_ord)] // rejects NaN too
            if !(w >= 0.0) || !w.is_finite() {
                return Err(ModelError::OutOfDomain {
                    parameter: "fault weight",
                    value: w,
                    range: "[0, ∞)",
                });
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ModelError::OutOfDomain {
                parameter: "total fault weight",
                value: total,
                range: "(0, ∞)",
            });
        }
        Ok(FaultWeights { weights, total })
    }

    /// Builds weights from per-fault occurrence probabilities
    /// `p_j ∈ [0, 1)` via `w_j = −ln(1 − p_j)` (eq. 4).
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] if any `p_j ∉ [0, 1)`.
    pub fn from_probabilities(probabilities: &[f64]) -> Result<Self, ModelError> {
        let mut weights = Vec::with_capacity(probabilities.len());
        for &p in probabilities {
            if !(0.0..1.0).contains(&p) {
                return Err(ModelError::OutOfDomain {
                    parameter: "fault probability",
                    value: p,
                    range: "[0, 1)",
                });
            }
            weights.push(-(1.0 - p).ln());
        }
        FaultWeights::new(weights)
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the fault set is empty (unreachable through the
    /// constructors, but kept for `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The raw weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `Σ w_j`, the expected number of fault-inducing defects per die.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Yield predicted from the weights: `Y = exp(−Σ w_j)` (eq. 5).
    pub fn yield_value(&self) -> f64 {
        (-self.total).exp()
    }

    /// Occurrence probability of fault `j`: `p_j = 1 − e^(−w_j)` (inverse
    /// of eq. 4).
    pub fn probability(&self, j: usize) -> f64 {
        1.0 - (-self.weights[j]).exp()
    }

    /// Returns a copy scaled so that `yield_value()` equals `target_yield`
    /// — the paper's device for comparing a small benchmark layout against
    /// a realistic chip-scale yield ("scaling the yield value can be
    /// interpreted as if the circuit has a different size but maintains the
    /// same testability features").
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] unless `target_yield ∈ (0, 1)`.
    pub fn scaled_to_yield(&self, target_yield: f64) -> Result<FaultWeights, ModelError> {
        if !(target_yield > 0.0 && target_yield < 1.0) {
            return Err(ModelError::OutOfDomain {
                parameter: "target yield",
                value: target_yield,
                range: "(0, 1)",
            });
        }
        let factor = -target_yield.ln() / self.total;
        let weights = self.weights.iter().map(|w| w * factor).collect();
        FaultWeights::new(weights)
    }

    /// Weighted realistic fault coverage `θ` (eq. 6) for a detection mask
    /// (`detected[j]` true if fault `j` is detected).
    ///
    /// # Errors
    ///
    /// [`ModelError::BadFitData`] if the mask length mismatches.
    pub fn theta(&self, detected: &[bool]) -> Result<f64, ModelError> {
        if detected.len() != self.weights.len() {
            return Err(ModelError::BadFitData("detection mask length mismatch"));
        }
        let covered: f64 = self
            .weights
            .iter()
            .zip(detected)
            .filter(|(_, &d)| d)
            .map(|(w, _)| w)
            .sum();
        Ok(covered / self.total)
    }

    /// Unweighted realistic fault coverage `Γ`: detected count over total
    /// count, treating all faults as equally likely (the paper's Fig. 6
    /// foil).
    ///
    /// # Errors
    ///
    /// [`ModelError::BadFitData`] if the mask length mismatches.
    pub fn gamma(&self, detected: &[bool]) -> Result<f64, ModelError> {
        if detected.len() != self.weights.len() {
            return Err(ModelError::BadFitData("detection mask length mismatch"));
        }
        Ok(detected.iter().filter(|&&d| d).count() as f64 / self.weights.len() as f64)
    }

    /// Defect level for a weighted coverage `θ` (eq. 3): `1 − Y^(1−θ)`
    /// with `Y` from the weights themselves.
    ///
    /// # Errors
    ///
    /// [`ModelError::OutOfDomain`] unless `theta ∈ [0, 1]`.
    pub fn defect_level(&self, theta: f64) -> Result<f64, ModelError> {
        let theta = check_unit("weighted coverage", theta)?;
        Ok(1.0 - self.yield_value().powf(1.0 - theta))
    }

    /// Histogram of `log10(w_j)` over `bins` equal-width bins spanning the
    /// weight range — the paper's Fig. 3. Returns `(bin_edges, counts)`
    /// where `bin_edges.len() == counts.len() + 1`. Zero weights are
    /// skipped (they cannot occur on a log axis).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn log_weight_histogram(&self, bins: usize) -> (Vec<f64>, Vec<usize>) {
        assert!(bins > 0, "histogram needs at least one bin");
        let logs: Vec<f64> = self
            .weights
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|w| w.log10())
            .collect();
        let (min, max) = logs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
        let span = (max - min).max(1e-9);
        let mut counts = vec![0usize; bins];
        for &x in &logs {
            let mut b = ((x - min) / span * bins as f64) as usize;
            if b >= bins {
                b = bins - 1;
            }
            counts[b] += 1;
        }
        let edges: Vec<f64> = (0..=bins)
            .map(|i| min + span * i as f64 / bins as f64)
            .collect();
        (edges, counts)
    }

    /// The dispersion of the weights in decades:
    /// `log10(max_w / min_positive_w)`. The paper's Fig. 3 shows ≈ 3
    /// decades for the c432 layout, which is what invalidates the
    /// equal-probability assumption.
    pub fn weight_dispersion_decades(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for &w in &self.weights {
            if w > 0.0 {
                min = min.min(w);
                max = max.max(w);
            }
        }
        if max <= 0.0 || !min.is_finite() {
            0.0
        } else {
            (max / min).log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultWeights {
        FaultWeights::new(vec![0.01, 0.02, 0.03, 0.04]).unwrap()
    }

    #[test]
    fn yield_from_weights() {
        let w = sample();
        assert!((w.total_weight() - 0.1).abs() < 1e-12);
        assert!((w.yield_value() - (-0.1f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn theta_and_gamma_differ_under_skew() {
        let w = sample();
        // Detect only the heaviest fault: Γ = 1/4, θ = 0.4.
        let mask = [false, false, false, true];
        assert!((w.gamma(&mask).unwrap() - 0.25).abs() < 1e-12);
        assert!((w.theta(&mask).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn full_detection_gives_unity_coverage_and_zero_dl() {
        let w = sample();
        let mask = [true; 4];
        assert!((w.theta(&mask).unwrap() - 1.0).abs() < 1e-12);
        assert!(w.defect_level(1.0).unwrap().abs() < 1e-12);
    }

    #[test]
    fn defect_level_matches_williams_brown_form() {
        let w = sample();
        let dl = w.defect_level(0.5).unwrap();
        let wb = crate::williams_brown::defect_level(w.yield_value(), 0.5).unwrap();
        assert!((dl - wb).abs() < 1e-12);
    }

    #[test]
    fn probability_weight_round_trip() {
        let probs = [0.1, 0.001, 0.25];
        let w = FaultWeights::from_probabilities(&probs).unwrap();
        for (j, &p) in probs.iter().enumerate() {
            assert!((w.probability(j) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn yield_scaling_preserves_relative_weights() {
        let w = sample();
        let s = w.scaled_to_yield(0.75).unwrap();
        assert!((s.yield_value() - 0.75).abs() < 1e-12);
        let r0 = w.weights()[1] / w.weights()[0];
        let r1 = s.weights()[1] / s.weights()[0];
        assert!((r0 - r1).abs() < 1e-12);
        // θ of any mask is invariant under scaling.
        let mask = [true, false, true, false];
        assert!((w.theta(&mask).unwrap() - s.theta(&mask).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn histogram_covers_all_positive_weights() {
        let w = FaultWeights::new(vec![1e-9, 1e-8, 1e-7, 1e-7, 1e-6, 0.0]).unwrap();
        let (edges, counts) = w.log_weight_histogram(6);
        assert_eq!(edges.len(), 7);
        assert_eq!(counts.iter().sum::<usize>(), 5); // the zero weight is skipped
        assert!((w.weight_dispersion_decades() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(FaultWeights::new(vec![]).is_err());
        assert!(FaultWeights::new(vec![0.0, 0.0]).is_err());
        assert!(FaultWeights::new(vec![-1.0]).is_err());
        assert!(FaultWeights::from_probabilities(&[1.0]).is_err());
        assert!(sample().theta(&[true]).is_err());
        assert!(sample().scaled_to_yield(1.5).is_err());
        // The open-unit boundary and NaN: Y = 0 diverges the log, Y = 1
        // leaves nothing to weight, NaN is never in domain.
        assert!(sample().scaled_to_yield(0.0).is_err());
        assert!(sample().scaled_to_yield(1.0).is_err());
        assert!(sample().scaled_to_yield(f64::NAN).is_err());
        assert!(sample().defect_level(f64::NAN).is_err());
    }

    #[test]
    fn defect_level_monotone_nonincreasing_in_theta() {
        let w = sample().scaled_to_yield(0.75).unwrap();
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let theta = i as f64 / 100.0;
            let dl = w.defect_level(theta).unwrap();
            assert!(dl.is_finite() && (0.0..=1.0).contains(&dl));
            assert!(dl <= prev + 1e-12, "DL must not rise with theta = {theta}");
            prev = dl;
        }
        assert!(w.defect_level(1.0).unwrap().abs() < 1e-12);
    }

    #[test]
    fn theta_gamma_bounds() {
        let mut rng = crate::rng::Xorshift64Star::new(17);
        for _ in 0..100 {
            let n = 1 + rng.next_below(49);
            let weights: Vec<f64> = (0..n).map(|_| 1e-9 + rng.next_f64() * 1e-3).collect();
            let mask_seed = rng.next_u64();
            let w = FaultWeights::new(weights).unwrap();
            let mask: Vec<bool> = (0..n).map(|i| mask_seed >> (i % 64) & 1 == 1).collect();
            let theta = w.theta(&mask).unwrap();
            let gamma = w.gamma(&mask).unwrap();
            assert!((0.0..=1.0 + 1e-12).contains(&theta));
            assert!((0.0..=1.0).contains(&gamma));
            // Adding detections never lowers θ.
            let all = w.theta(&vec![true; n]).unwrap();
            assert!(theta <= all + 1e-12);
        }
    }
}
