//! The Williams–Brown defect-level model (eq. 1 of the paper).
//!
//! `DL = 1 − Y^(1−T)`: with equally probable single stuck-at faults, a part
//! that escapes a test set covering fraction `T` of the faults is defective
//! with this probability. The 1994 paper's whole point is that measured
//! fallout curves *deviate* from this law; see [`crate::sousa`].

use crate::error::{check_open_unit, check_unit};
use crate::ModelError;

/// Defect level as a function of yield and stuck-at fault coverage.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] unless `y ∈ (0, 1)` and `t ∈ [0, 1]`.
///
/// # Example
///
/// ```
/// use dlp_core::williams_brown::defect_level;
///
/// // A 75 %-yield part tested to 90 % coverage ships ~2.8 % defective.
/// let dl = defect_level(0.75, 0.9)?;
/// assert!((dl - 0.0284).abs() < 1e-3);
/// // Full coverage ships zero defects under this model.
/// assert_eq!(defect_level(0.75, 1.0)?, 0.0);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
pub fn defect_level(y: f64, t: f64) -> Result<f64, ModelError> {
    let y = check_open_unit("yield", y)?;
    let t = check_unit("fault coverage", t)?;
    Ok(1.0 - y.powf(1.0 - t))
}

/// The coverage required to reach a target defect level: the inverse of
/// [`defect_level`] in `T`.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] for parameters outside their ranges;
/// [`ModelError::Unreachable`] if `dl` is not achievable for this yield
/// (i.e. `dl ≥ 1 − Y`, which needs negative coverage).
///
/// # Example
///
/// ```
/// use dlp_core::williams_brown::required_coverage;
///
/// // The paper's Example 1, Williams–Brown variant: T = 99.97 %.
/// let t = required_coverage(0.75, 100e-6)?;
/// assert!((t - 0.9997).abs() < 5e-5);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
pub fn required_coverage(y: f64, dl: f64) -> Result<f64, ModelError> {
    let y = check_open_unit("yield", y)?;
    let dl = check_unit("defect level", dl)?;
    let max_dl = 1.0 - y;
    if dl > max_dl {
        return Err(ModelError::Unreachable {
            target: "defect level",
            requested: dl,
            limit: max_dl,
        });
    }
    // 1 - Y^(1-T) = DL  =>  1 - T = ln(1-DL)/ln(Y). Clamp: at the
    // fallout limit the quotient can round to just above 1, which
    // would return a (domain-invalid) negative coverage.
    Ok((1.0 - (1.0 - dl).ln() / y.ln()).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_coverage_ships_all_defects() {
        // With T = 0 the defect level equals the fraction of bad parts
        // among all parts shipped untested: 1 - Y.
        let dl = defect_level(0.75, 0.0).unwrap();
        assert!((dl - 0.25).abs() < 1e-12);
    }

    #[test]
    fn full_coverage_ships_none() {
        assert_eq!(defect_level(0.3, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn monotone_decreasing_in_coverage() {
        let mut prev = 1.0;
        for i in 0..=100 {
            let t = i as f64 / 100.0;
            let dl = defect_level(0.6, t).unwrap();
            assert!(dl <= prev);
            prev = dl;
        }
    }

    #[test]
    fn paper_example_1_wb_number() {
        let t = required_coverage(0.75, 100e-6).unwrap();
        assert!((t - 0.99965).abs() < 5e-5, "T = {t}");
    }

    #[test]
    fn inverse_round_trips() {
        for &t in &[0.0, 0.3, 0.77, 0.999, 1.0] {
            let dl = defect_level(0.82, t).unwrap();
            let back = required_coverage(0.82, dl).unwrap();
            assert!((back - t).abs() < 1e-9, "t={t} back={back}");
        }
    }

    #[test]
    fn domain_checks() {
        assert!(defect_level(0.0, 0.5).is_err());
        assert!(defect_level(1.0, 0.5).is_err());
        assert!(defect_level(0.5, 1.1).is_err());
        assert!(matches!(
            required_coverage(0.9, 0.5),
            Err(ModelError::Unreachable { .. })
        ));
    }

    #[test]
    fn dl_bounded_by_fallout() {
        let mut rng = crate::rng::Xorshift64Star::new(41);
        for _ in 0..200 {
            let y = 0.01 + rng.next_f64() * 0.98;
            let t = rng.next_f64();
            let dl = defect_level(y, t).unwrap();
            assert!(dl >= -1e-12, "y={y} t={t}");
            assert!(dl <= 1.0 - y + 1e-12, "y={y} t={t}");
        }
    }

    #[test]
    fn inverse_is_right_inverse() {
        let mut rng = crate::rng::Xorshift64Star::new(42);
        for _ in 0..200 {
            let y = 0.05 + rng.next_f64() * 0.9;
            let t = rng.next_f64();
            let dl = defect_level(y, t).unwrap();
            let back = required_coverage(y, dl).unwrap();
            assert!((back - t).abs() < 1e-6, "y={y} t={t}");
        }
    }
}
