//! Classical IC yield models (Stapper, eq. 5's Poisson form and the
//! negative-binomial generalisation).
//!
//! The paper takes yield as an input (predicted "using some existing
//! methods" — its refs [2,3]); this module supplies those methods so the
//! toolkit can go from defect densities straight to `Y` without external
//! data. The Poisson model is exactly what eq. 5 produces from fault
//! weights (`Y = e^(−Σ AD)`); the negative binomial adds defect clustering.

use crate::error::check_positive;
use crate::ModelError;

/// Poisson yield: `Y = exp(−λ)` for `λ` expected killer defects per die.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] if `lambda` is negative or non-finite.
///
/// # Example
///
/// ```
/// use dlp_core::yield_model::poisson;
///
/// // 0.29 expected killer defects per die -> ~75 % yield.
/// assert!((poisson(0.2877)? - 0.75).abs() < 1e-3);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
pub fn poisson(lambda: f64) -> Result<f64, ModelError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // rejects NaN too
    if !(lambda >= 0.0) || !lambda.is_finite() {
        return Err(ModelError::OutOfDomain {
            parameter: "expected defects",
            value: lambda,
            range: "[0, ∞)",
        });
    }
    Ok((-lambda).exp())
}

/// Negative-binomial (Stapper) yield: `Y = (1 + λ/α)^(−α)` with clustering
/// parameter `α` (α → ∞ recovers Poisson; small α models clustered
/// defects and predicts *higher* yield for the same λ).
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] if `lambda < 0` or `alpha ≤ 0`.
pub fn negative_binomial(lambda: f64, alpha: f64) -> Result<f64, ModelError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // rejects NaN too
    if !(lambda >= 0.0) || !lambda.is_finite() {
        return Err(ModelError::OutOfDomain {
            parameter: "expected defects",
            value: lambda,
            range: "[0, ∞)",
        });
    }
    let alpha = check_positive("clustering parameter", alpha)?;
    Ok((1.0 + lambda / alpha).powf(-alpha))
}

/// Expected killer defects from per-layer `(critical area, defect
/// density)` pairs: `λ = Σ A_l · D_l`. Units must agree (area in cm²
/// with density in defects/cm², or λ-units consistently).
pub fn lambda_from_layers<I: IntoIterator<Item = (f64, f64)>>(layers: I) -> f64 {
    layers.into_iter().map(|(a, d)| a * d).sum()
}

/// The λ that produces a target Poisson yield: `λ = −ln Y`.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] unless `y ∈ (0, 1]`.
pub fn lambda_for_yield(y: f64) -> Result<f64, ModelError> {
    if !(y > 0.0 && y <= 1.0) {
        return Err(ModelError::OutOfDomain {
            parameter: "yield",
            value: y,
            range: "(0, 1]",
        });
    }
    Ok(-y.ln())
}

/// The λ that produces a target negative-binomial yield:
/// `λ = α (Y^(−1/α) − 1)`, the closed-form inverse of
/// [`negative_binomial`]. As α → ∞ this converges to `−ln Y`.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] unless `y ∈ (0, 1]` and `alpha > 0`.
pub fn nb_lambda_for_yield(y: f64, alpha: f64) -> Result<f64, ModelError> {
    if !(y > 0.0 && y <= 1.0) {
        return Err(ModelError::OutOfDomain {
            parameter: "yield",
            value: y,
            range: "(0, 1]",
        });
    }
    let alpha = check_positive("clustering parameter", alpha)?;
    Ok(alpha * (y.powf(-1.0 / alpha) - 1.0))
}

/// Defect level under negative-binomial fallout, generalising the
/// paper's eq. 3. For any mixed-Poisson model the shipped-part defect
/// level is `DL = 1 − Y(λ) / Y(θλ)` — the fraction of dies that pass a
/// test screening the θ-weighted share of the defect exposure but still
/// carry a defect. With Poisson statistics this collapses to eq. 3,
/// `1 − Y^(1−θ)`; with clustering it is strictly smaller, because bad
/// dies concentrate their defects and are easier to catch.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] if `lambda < 0`, `alpha ≤ 0`, or
/// `theta ∉ [0, 1]`.
pub fn nb_defect_level(lambda: f64, theta: f64, alpha: f64) -> Result<f64, ModelError> {
    if !(0.0..=1.0).contains(&theta) {
        return Err(ModelError::OutOfDomain {
            parameter: "theta",
            value: theta,
            range: "[0, 1]",
        });
    }
    let full = negative_binomial(lambda, alpha)?;
    let tested = negative_binomial(theta * lambda, alpha)?;
    // tested >= full > 0 for finite lambda, so the ratio is in (0, 1].
    Ok(1.0 - full / tested)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_boundaries() {
        assert_eq!(poisson(0.0).unwrap(), 1.0);
        assert!(poisson(-1.0).is_err());
        assert!(poisson(f64::NAN).is_err());
    }

    #[test]
    fn negative_binomial_approaches_poisson_for_large_alpha() {
        let lambda = 0.5;
        let p = poisson(lambda).unwrap();
        let nb = negative_binomial(lambda, 1e6).unwrap();
        assert!((p - nb).abs() < 1e-6);
    }

    #[test]
    fn clustering_raises_yield() {
        let lambda = 1.0;
        let clustered = negative_binomial(lambda, 0.5).unwrap();
        let spread = negative_binomial(lambda, 100.0).unwrap();
        assert!(clustered > spread);
    }

    #[test]
    fn lambda_round_trips_through_yield() {
        let lambda = lambda_for_yield(0.75).unwrap();
        assert!((poisson(lambda).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lambda_from_layer_table() {
        let l = lambda_from_layers([(1.0, 0.1), (2.0, 0.05), (0.5, 0.2)]);
        assert!((l - 0.3).abs() < 1e-12);
        assert_eq!(lambda_from_layers(std::iter::empty()), 0.0);
    }

    #[test]
    fn nb_lambda_round_trips_and_limits_to_poisson() {
        for alpha in [0.3, 1.0, 4.0, 50.0] {
            let lambda = nb_lambda_for_yield(0.75, alpha).unwrap();
            assert!(
                (negative_binomial(lambda, alpha).unwrap() - 0.75).abs() < 1e-12,
                "alpha={alpha}"
            );
        }
        let poisson_lambda = lambda_for_yield(0.75).unwrap();
        let nb_lambda = nb_lambda_for_yield(0.75, 1e8).unwrap();
        assert!((poisson_lambda - nb_lambda).abs() < 1e-6);
        assert!(nb_lambda_for_yield(0.75, 0.0).is_err());
        assert!(nb_lambda_for_yield(0.0, 1.0).is_err());
    }

    #[test]
    fn nb_defect_level_limits_and_ordering() {
        // alpha -> infinity recovers eq. 3: DL = 1 - Y^(1-theta).
        let y = 0.75;
        let theta = 0.9;
        let lambda = lambda_for_yield(y).unwrap();
        let eq3 = 1.0 - y.powf(1.0 - theta);
        let nb = nb_defect_level(lambda, theta, 1e8).unwrap();
        assert!((nb - eq3).abs() < 1e-6);
        // At a fixed *yield* (lambda recalibrated per alpha), clustering
        // lowers the shipped defect level.
        let mut last = eq3;
        for alpha in [50.0, 4.0, 1.0, 0.3] {
            let lambda = nb_lambda_for_yield(y, alpha).unwrap();
            let dl = nb_defect_level(lambda, theta, alpha).unwrap();
            assert!(dl < last, "alpha={alpha}: {dl} !< {last}");
            last = dl;
        }
        // Boundaries: perfect test -> DL 0; no test -> DL = 1 - Y.
        assert_eq!(nb_defect_level(0.5, 1.0, 2.0).unwrap(), 0.0);
        let dl0 = nb_defect_level(0.5, 0.0, 2.0).unwrap();
        assert!((dl0 - (1.0 - negative_binomial(0.5, 2.0).unwrap())).abs() < 1e-12);
        assert!(nb_defect_level(0.5, 1.5, 2.0).is_err());
        assert!(nb_defect_level(0.5, f64::NAN, 2.0).is_err());
    }

    #[test]
    fn yields_in_unit_interval() {
        let mut rng = crate::rng::Xorshift64Star::new(51);
        for _ in 0..300 {
            let lambda = rng.next_f64() * 20.0;
            let alpha = 0.01 + rng.next_f64() * 99.99;
            let p = poisson(lambda).unwrap();
            let nb = negative_binomial(lambda, alpha).unwrap();
            assert!((0.0..=1.0).contains(&p));
            assert!((0.0..=1.0).contains(&nb));
            assert!(nb >= p - 1e-12, "clustering never hurts yield");
        }
    }
}
