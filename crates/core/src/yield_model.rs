//! Classical IC yield models (Stapper, eq. 5's Poisson form and the
//! negative-binomial generalisation).
//!
//! The paper takes yield as an input (predicted "using some existing
//! methods" — its refs [2,3]); this module supplies those methods so the
//! toolkit can go from defect densities straight to `Y` without external
//! data. The Poisson model is exactly what eq. 5 produces from fault
//! weights (`Y = e^(−Σ AD)`); the negative binomial adds defect clustering.

use crate::error::check_positive;
use crate::ModelError;

/// Poisson yield: `Y = exp(−λ)` for `λ` expected killer defects per die.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] if `lambda` is negative or non-finite.
///
/// # Example
///
/// ```
/// use dlp_core::yield_model::poisson;
///
/// // 0.29 expected killer defects per die -> ~75 % yield.
/// assert!((poisson(0.2877)? - 0.75).abs() < 1e-3);
/// # Ok::<(), dlp_core::ModelError>(())
/// ```
pub fn poisson(lambda: f64) -> Result<f64, ModelError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // rejects NaN too
    if !(lambda >= 0.0) || !lambda.is_finite() {
        return Err(ModelError::OutOfDomain {
            parameter: "expected defects",
            value: lambda,
            range: "[0, ∞)",
        });
    }
    Ok((-lambda).exp())
}

/// Negative-binomial (Stapper) yield: `Y = (1 + λ/α)^(−α)` with clustering
/// parameter `α` (α → ∞ recovers Poisson; small α models clustered
/// defects and predicts *higher* yield for the same λ).
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] if `lambda < 0` or `alpha ≤ 0`.
pub fn negative_binomial(lambda: f64, alpha: f64) -> Result<f64, ModelError> {
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // rejects NaN too
    if !(lambda >= 0.0) || !lambda.is_finite() {
        return Err(ModelError::OutOfDomain {
            parameter: "expected defects",
            value: lambda,
            range: "[0, ∞)",
        });
    }
    let alpha = check_positive("clustering parameter", alpha)?;
    Ok((1.0 + lambda / alpha).powf(-alpha))
}

/// Expected killer defects from per-layer `(critical area, defect
/// density)` pairs: `λ = Σ A_l · D_l`. Units must agree (area in cm²
/// with density in defects/cm², or λ-units consistently).
pub fn lambda_from_layers<I: IntoIterator<Item = (f64, f64)>>(layers: I) -> f64 {
    layers.into_iter().map(|(a, d)| a * d).sum()
}

/// The λ that produces a target Poisson yield: `λ = −ln Y`.
///
/// # Errors
///
/// [`ModelError::OutOfDomain`] unless `y ∈ (0, 1]`.
pub fn lambda_for_yield(y: f64) -> Result<f64, ModelError> {
    if !(y > 0.0 && y <= 1.0) {
        return Err(ModelError::OutOfDomain {
            parameter: "yield",
            value: y,
            range: "(0, 1]",
        });
    }
    Ok(-y.ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_boundaries() {
        assert_eq!(poisson(0.0).unwrap(), 1.0);
        assert!(poisson(-1.0).is_err());
        assert!(poisson(f64::NAN).is_err());
    }

    #[test]
    fn negative_binomial_approaches_poisson_for_large_alpha() {
        let lambda = 0.5;
        let p = poisson(lambda).unwrap();
        let nb = negative_binomial(lambda, 1e6).unwrap();
        assert!((p - nb).abs() < 1e-6);
    }

    #[test]
    fn clustering_raises_yield() {
        let lambda = 1.0;
        let clustered = negative_binomial(lambda, 0.5).unwrap();
        let spread = negative_binomial(lambda, 100.0).unwrap();
        assert!(clustered > spread);
    }

    #[test]
    fn lambda_round_trips_through_yield() {
        let lambda = lambda_for_yield(0.75).unwrap();
        assert!((poisson(lambda).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lambda_from_layer_table() {
        let l = lambda_from_layers([(1.0, 0.1), (2.0, 0.05), (0.5, 0.2)]);
        assert!((l - 0.3).abs() < 1e-12);
        assert_eq!(lambda_from_layers(std::iter::empty()), 0.0);
    }

    #[test]
    fn yields_in_unit_interval() {
        let mut rng = crate::rng::Xorshift64Star::new(51);
        for _ in 0..300 {
            let lambda = rng.next_f64() * 20.0;
            let alpha = 0.01 + rng.next_f64() * 99.99;
            let p = poisson(lambda).unwrap();
            let nb = negative_binomial(lambda, alpha).unwrap();
            assert!((0.0..=1.0).contains(&p));
            assert!((0.0..=1.0).contains(&nb));
            assert!(nb >= p - 1e-12, "clustering never hurts yield");
        }
    }
}
