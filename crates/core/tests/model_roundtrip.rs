//! Property-style round-trip tests for the model inversions:
//!
//! * `defect_level ∘ required_coverage ≈ id` for the Sousa model and
//!   its Williams–Brown special case — with the sufficiency guarantee
//!   `defect_level(required_coverage(dl)) <= dl` holding *exactly*;
//! * `at(vectors_for(c)) >= c` for the coverage growth laws;
//! * the typed error paths those inversions were given for unreachable
//!   targets and `u64`-overflowing vector counts.
//!
//! The parameter grid is seeded (xorshift64*), so failures reproduce.

use dlp_core::coverage::CoverageGrowth;
use dlp_core::rng::Xorshift64Star;
use dlp_core::sousa::SousaModel;
use dlp_core::{williams_brown, ModelError};

/// Seeded `(y, r, theta_max, tau)` grid spanning the models' domains.
fn param_grid(seed: u64, count: usize) -> Vec<(f64, f64, f64, f64)> {
    let mut rng = Xorshift64Star::new(seed);
    (0..count)
        .map(|_| {
            (
                0.05 + rng.next_f64() * 0.9,  // yield in (0, 1)
                0.25 + rng.next_f64() * 4.0,  // susceptibility ratio R
                0.5 + rng.next_f64() * 0.5,   // theta_max in (0.5, 1]
                (1.0 + rng.next_f64() * 9.0).exp(), // tau = e^(1..10)
            )
        })
        .collect()
}

#[test]
fn sousa_inversion_is_identity_and_sufficient() {
    for (i, (y, r, theta_max, _)) in param_grid(101, 250).into_iter().enumerate() {
        let m = SousaModel::new(y, r, theta_max).expect("grid parameters are valid");
        let residual = m.residual_defect_level();
        let fallout = 1.0 - y;
        // Sample dl across the reachable band, biased toward the
        // residual floor where the inversion used to lose precision.
        for exp in 0..=14 {
            let dl = residual + (fallout - residual) * 10f64.powi(-exp);
            let t = m.required_coverage(dl).expect("reachable dl");
            assert!((0.0..=1.0).contains(&t), "case {i} exp={exp}: T = {t}");
            let back = m.defect_level(t).expect("t in [0, 1]");
            // The documented guarantee: never overshoot the target…
            assert!(
                back <= dl,
                "case {i} (y={y} r={r} tm={theta_max}) exp={exp}: \
                 DL({t}) = {back} > {dl}"
            );
            // …and, never undershoot the floor.
            assert!(back >= residual - 1e-15, "case {i} exp={exp}");
            // Tightness is only claimable well above the residual
            // floor: at the floor one ulp of T spans the entire
            // remaining DL range, so the sufficiency clamp may land on
            // the residual itself. Away from it the inversion must be
            // an inverse, not merely an upper bound.
            if dl - residual > 1e-3 * dl {
                assert!(
                    dl - back <= 1e-6 * dl + 1e-3 * (dl - residual),
                    "case {i} exp={exp}: inversion too conservative \
                     (dl={dl}, back={back}, residual={residual})"
                );
            }
        }
    }
}

#[test]
fn sousa_coverage_round_trips_through_dl() {
    // T -> DL -> T' must reproduce the defect level (T itself is
    // numerically flat near the residual floor, so compare in DL).
    for (y, r, theta_max, _) in param_grid(102, 250) {
        let m = SousaModel::new(y, r, theta_max).expect("valid");
        for i in 1..=9 {
            let t = i as f64 / 10.0;
            let dl = m.defect_level(t).expect("t in range");
            let t_back = m.required_coverage(dl).expect("dl reachable");
            let dl_back = m.defect_level(t_back).expect("t_back in range");
            assert!(
                (dl_back - dl).abs() <= 1e-9,
                "y={y} r={r} tm={theta_max} t={t}: {dl} vs {dl_back}"
            );
        }
    }
}

#[test]
fn williams_brown_inversion_is_identity() {
    for (y, _, _, _) in param_grid(103, 250) {
        for i in 0..=10 {
            let t = i as f64 / 10.0;
            let dl = williams_brown::defect_level(y, t).expect("valid");
            let back = williams_brown::required_coverage(y, dl).expect("reachable");
            assert!((back - t).abs() < 1e-6, "y={y} t={t}: back={back}");
            let dl_back = williams_brown::defect_level(y, back).expect("valid");
            assert!((dl_back - dl).abs() < 1e-12, "y={y} t={t}");
        }
    }
}

#[test]
fn coverage_growth_vector_counts_are_sufficient() {
    for (_, _, theta_max, tau) in param_grid(104, 250) {
        let g = CoverageGrowth::new(tau, theta_max).expect("tau > 1");
        for i in 1..=19 {
            let c = theta_max * i as f64 / 20.0;
            match g.vectors_for(c) {
                Ok(k) => {
                    assert!(k >= 1, "tau={tau} max={theta_max} c={c}");
                    assert!(
                        g.at(k) >= c,
                        "tau={tau} max={theta_max} c={c}: at({k}) = {} < c",
                        g.at(k)
                    );
                }
                Err(ModelError::VectorCountOverflow { coverage, .. }) => {
                    // Legal for steep laws near saturation; the error
                    // must carry the offending coverage.
                    assert_eq!(coverage, c);
                }
                Err(other) => panic!("tau={tau} c={c}: unexpected error {other:?}"),
            }
        }
    }
}

#[test]
fn inversion_error_paths_are_typed() {
    let m = SousaModel::new(0.75, 1.9, 0.96).expect("valid");
    // Below the residual floor and above the zero-coverage fallout.
    assert!(matches!(
        m.required_coverage(m.residual_defect_level() / 2.0),
        Err(ModelError::Unreachable { .. })
    ));
    assert!(matches!(
        m.required_coverage(0.5),
        Err(ModelError::Unreachable { .. })
    ));
    assert!(matches!(
        m.required_coverage(-0.1),
        Err(ModelError::OutOfDomain { .. })
    ));

    // Coverage growth: target at/above saturation vs. u64 overflow are
    // distinct typed errors.
    let g = CoverageGrowth::new(3.0f64.exp(), 0.9).expect("valid");
    assert!(matches!(
        g.vectors_for(0.9),
        Err(ModelError::Unreachable { .. })
    ));
    let steep = CoverageGrowth::new(500.0f64.exp(), 1.0).expect("valid");
    match steep.vectors_for(0.75) {
        Err(ModelError::VectorCountOverflow { ln_vectors, .. }) => {
            assert!(ln_vectors > 100.0);
        }
        other => panic!("expected overflow, got {other:?}"),
    }

    // Williams–Brown keeps its Unreachable contract.
    assert!(matches!(
        williams_brown::required_coverage(0.9, 0.5),
        Err(ModelError::Unreachable { .. })
    ));
}
