//! Critical-area computations (Stapper).
//!
//! The square-defect model is used throughout: a defect of "size" `x` is an
//! `x × x` square of extra or missing material. Then
//!
//! * a **short** between shape sets A and B occurs iff the defect centre
//!   lies in `dilate(A, x/2) ∩ dilate(B, x/2)` — computed exactly with the
//!   scanline union machinery of `dlp-geometry`;
//! * an **open** on a wire rectangle of width `w` and length `l` needs the
//!   defect to sever the full width: centre area `(x − w)·l` for `x > w`
//!   (end effects ignored — a slight underestimate, documented);
//! * a **missing cut** of size `c` requires the defect to cover the whole
//!   cut: centre area `(x − c)²` for `x > c`.

use dlp_geometry::{Coord, Rect, Region};

/// Critical area (λ²) for a short between two shape sets at defect size
/// `x`, under the square-defect model.
///
/// # Example
///
/// ```
/// use dlp_geometry::{Layer, Rect, Region};
/// use dlp_extract::critical_area::short_area;
///
/// // Two 100-long wires, 6 apart: defects of size 8 bridge them over a
/// // band of height 2.
/// let a = Region::from_rects(Layer::Metal1, [Rect::new(0, 0, 100, 4)]);
/// let b = Region::from_rects(Layer::Metal1, [Rect::new(0, 10, 100, 14)]);
/// assert_eq!(short_area(&a, &b, 6), 0); // just touches: zero area
/// assert!(short_area(&a, &b, 8) > 0);
/// ```
pub fn short_area(a: &Region, b: &Region, x: Coord) -> i64 {
    if x <= 0 {
        return 0;
    }
    // Dilation by x/2 on each side: use halves that sum to x so odd sizes
    // don't lose a λ.
    let ha = x / 2;
    let hb = x - ha;
    a.dilated(ha).overlap_area(&b.dilated(hb))
}

/// Critical area (λ²) for an open severing a single wire rectangle at
/// defect size `x`.
pub fn open_area(wire: &Rect, x: Coord) -> i64 {
    let w = wire.short_side();
    let l = wire.long_side();
    if x <= w {
        0
    } else {
        (x - w) * l
    }
}

/// Critical area (λ²) for a missing cut (contact/via) of the given drawn
/// rectangle at defect size `x`.
pub fn missing_cut_area(cut: &Rect, x: Coord) -> i64 {
    let c = cut.long_side();
    if x <= c {
        0
    } else {
        (x - c) * (x - c)
    }
}

/// Weighted critical area: folds a per-size geometry function over the
/// discretised defect size distribution (`(size, density)` pairs from
/// [`DefectClass::size_samples`]), returning the expected defect count per
/// 10⁶ λ² — i.e. the fault weight contribution before global scaling.
///
/// [`DefectClass::size_samples`]: crate::defects::DefectClass::size_samples
pub fn weighted<F: FnMut(Coord) -> i64>(samples: &[(Coord, f64)], mut area_at: F) -> f64 {
    samples
        .iter()
        .map(|&(x, density)| area_at(x) as f64 * density / 1e6)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_geometry::Layer;

    fn wire(y0: Coord, y1: Coord) -> Region {
        Region::from_rects(Layer::Metal1, [Rect::new(0, y0, 100, y1)])
    }

    #[test]
    fn short_area_grows_with_defect_size() {
        let a = wire(0, 4);
        let b = wire(10, 14);
        let mut prev = 0;
        for x in [6, 8, 10, 14] {
            let area = short_area(&a, &b, x);
            assert!(area >= prev, "x={x}");
            prev = area;
        }
        assert_eq!(short_area(&a, &b, 0), 0);
    }

    #[test]
    fn short_area_matches_parallel_wire_formula() {
        // Parallel wires, separation s, length l: A(x) ≈ (x − s)(l + x).
        let s = 6;
        let a = wire(0, 4);
        let b = wire(4 + s, 8 + s);
        for x in [8, 10, 12] {
            let expect = (x - s) * (100 + x);
            assert_eq!(short_area(&a, &b, x), expect, "x={x}");
        }
    }

    #[test]
    fn open_area_formula() {
        let w = Rect::new(0, 0, 50, 3);
        assert_eq!(open_area(&w, 3), 0);
        assert_eq!(open_area(&w, 5), 2 * 50);
        // Orientation-independent.
        let v = Rect::new(0, 0, 3, 50);
        assert_eq!(open_area(&v, 5), 2 * 50);
    }

    #[test]
    fn missing_cut_formula() {
        let c = Rect::new(0, 0, 2, 2);
        assert_eq!(missing_cut_area(&c, 2), 0);
        assert_eq!(missing_cut_area(&c, 5), 9);
    }

    #[test]
    fn weighted_folds_distribution() {
        let samples = [(4i64, 2.0), (8, 1.0)];
        // area_at(x) = x: w = (4*2 + 8*1)/1e6.
        let w = weighted(&samples, |x| x);
        assert!((w - 16.0 / 1e6).abs() < 1e-15);
    }

    #[test]
    fn short_area_symmetric() {
        for sep in 1i64..20 {
            for x in 1i64..30 {
                let a = wire(0, 4);
                let b = wire(4 + sep, 8 + sep);
                assert_eq!(short_area(&a, &b, x), short_area(&b, &a, x), "sep={sep} x={x}");
            }
        }
    }

    #[test]
    fn open_area_monotone() {
        for w in 1i64..6 {
            for l in (1i64..100).step_by(7) {
                let r = Rect::with_size(0, 0, l.max(w), w.min(l));
                let mut prev = 0;
                for x in 1..20 {
                    let area = open_area(&r, x);
                    assert!(area >= prev, "w={w} l={l} x={x}");
                    prev = area;
                }
            }
        }
    }
}
