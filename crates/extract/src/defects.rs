//! Process defect statistics: mechanisms, densities, and the size law.
//!
//! Spot defects follow the classic `d(x) ∝ 1/x³` size distribution between
//! `x_min` and `x_max` (Stapper; the paper's refs [2, 21, 23]). Densities
//! are per defect class and are deliberately *relative*: the paper scales
//! total weight to a target yield anyway ("scaling the yield value can be
//! interpreted as if the circuit has a different size").

use dlp_geometry::{Coord, Layer};

use crate::ExtractError;

/// The physical mechanism of a defect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mechanism {
    /// Extra conducting material: shorts neighbouring shapes on `layer`.
    ExtraMaterial,
    /// Missing conducting material: opens a wire on `layer`.
    MissingMaterial,
    /// A missing contact or via cut.
    MissingCut,
    /// A gate-oxide pinhole (gate-to-channel short).
    OxidePinhole,
}

/// One defect class: a mechanism on a layer with a density and size range.
#[derive(Debug, Clone, PartialEq)]
pub struct DefectClass {
    /// Affected mask layer.
    pub layer: Layer,
    /// Physical mechanism.
    pub mechanism: Mechanism,
    /// Relative density: expected defects of this class per 10⁶ λ² of
    /// chip area (before yield scaling).
    pub density: f64,
    /// Smallest defect diameter (λ). Ignored for pinholes.
    pub x_min: Coord,
    /// Largest defect diameter (λ). Ignored for pinholes.
    pub x_max: Coord,
}

impl DefectClass {
    /// Checks the class is usable: a finite, positive density and a
    /// non-degenerate size range.
    ///
    /// # Errors
    ///
    /// [`ExtractError::BadDefectStatistics`] with the failing reason.
    pub fn validate(&self) -> Result<(), ExtractError> {
        let bad = |reason| ExtractError::BadDefectStatistics {
            layer: self.layer,
            reason,
        };
        if self.density.is_nan() {
            return Err(bad("density is NaN"));
        }
        if !self.density.is_finite() {
            return Err(bad("density is infinite"));
        }
        if self.density <= 0.0 {
            return Err(bad("density must be positive"));
        }
        if self.x_min < 1 {
            return Err(bad("x_min must be at least 1"));
        }
        if self.x_max < self.x_min {
            return Err(bad("x_max must be >= x_min"));
        }
        Ok(())
    }

    /// Discretises the `1/x³` size law into `samples` sizes with their
    /// per-size densities (defects per 10⁶ λ², summing to
    /// [`density`](Self::density)).
    ///
    /// # Errors
    ///
    /// [`ExtractError::NoSizeSamples`] for `samples == 0`;
    /// [`ExtractError::BadDefectStatistics`] if the class itself is
    /// unusable (see [`validate`](Self::validate)).
    pub fn size_samples(&self, samples: usize) -> Result<Vec<(Coord, f64)>, ExtractError> {
        if samples == 0 {
            return Err(ExtractError::NoSizeSamples);
        }
        self.validate()?;
        if self.x_min == self.x_max {
            return Ok(vec![(self.x_min, self.density)]);
        }
        // Integrate 1/x^3 over each bin: ∫ x^-3 dx = -x^-2 / 2.
        let cdf = |x: f64| -> f64 { -1.0 / (2.0 * x * x) };
        let total = cdf(self.x_max as f64) - cdf(self.x_min as f64);
        let mut out = Vec::with_capacity(samples);
        for i in 0..samples {
            let lo =
                self.x_min as f64 + (self.x_max - self.x_min) as f64 * i as f64 / samples as f64;
            let hi = self.x_min as f64
                + (self.x_max - self.x_min) as f64 * (i + 1) as f64 / samples as f64;
            let mass = (cdf(hi) - cdf(lo)) / total;
            let x = ((lo + hi) / 2.0).round() as Coord;
            out.push((x.max(1), self.density * mass));
        }
        Ok(out)
    }
}

/// The full defect menu of a process line.
#[derive(Debug, Clone, PartialEq)]
pub struct DefectStatistics {
    classes: Vec<DefectClass>,
}

impl DefectStatistics {
    /// Builds statistics from explicit classes.
    pub fn new(classes: Vec<DefectClass>) -> Self {
        DefectStatistics { classes }
    }

    /// The defect classes.
    pub fn classes(&self) -> &[DefectClass] {
        &self.classes
    }

    /// Checks every class is usable (finite positive densities, sane size
    /// ranges). The extractor runs this before touching any geometry.
    ///
    /// # Errors
    ///
    /// The first class's [`ExtractError::BadDefectStatistics`].
    pub fn validate(&self) -> Result<(), ExtractError> {
        self.classes.iter().try_for_each(DefectClass::validate)
    }

    /// The largest defect diameter across all classes (bounds the bridge
    /// candidate search).
    pub fn max_defect_size(&self) -> Coord {
        self.classes.iter().map(|c| c.x_max).max().unwrap_or(0)
    }

    /// A bridge-heavy CMOS line in the spirit of Maly's relative-density
    /// estimates for a positive-photoresist process (the paper's refs
    /// [21, 23]): extra-material (short) densities dominate missing
    /// material, metals carry most defects, and contacts/vias contribute
    /// opens. Absolute values are relative weights only.
    pub fn maly_cmos() -> Self {
        use Layer::*;
        use Mechanism::*;
        let c = |layer, mechanism, density, x_min, x_max| DefectClass {
            layer,
            mechanism,
            density,
            x_min,
            x_max,
        };
        DefectStatistics::new(vec![
            // Shorts (extra material) — dominant, especially on metal.
            c(Metal1, ExtraMaterial, 10.0, 2, 24),
            c(Metal2, ExtraMaterial, 8.0, 2, 24),
            c(Poly, ExtraMaterial, 5.0, 2, 16),
            c(Ndiff, ExtraMaterial, 2.0, 2, 12),
            c(Pdiff, ExtraMaterial, 2.0, 2, 12),
            // Opens (missing material) — a few times rarer.
            c(Metal1, MissingMaterial, 2.5, 2, 16),
            c(Metal2, MissingMaterial, 2.0, 2, 16),
            c(Poly, MissingMaterial, 1.2, 2, 12),
            c(Ndiff, MissingMaterial, 0.6, 2, 10),
            c(Pdiff, MissingMaterial, 0.6, 2, 10),
            // Missing cuts.
            c(Contact, MissingCut, 0.8, 2, 6),
            c(Via, MissingCut, 0.8, 2, 6),
            // Oxide pinholes (size-independent).
            c(GateOxide, OxidePinhole, 0.4, 1, 1),
        ])
    }

    /// An open-heavy variant (e.g. a negative-photoresist line) for the
    /// ablation study: the same classes with shorts and opens swapped in
    /// magnitude, which should drive the susceptibility ratio `R` toward
    /// (or below) 1.
    pub fn open_heavy() -> Self {
        let mut classes = Self::maly_cmos().classes.clone();
        for c in &mut classes {
            match c.mechanism {
                Mechanism::ExtraMaterial => c.density /= 5.0,
                Mechanism::MissingMaterial => c.density *= 5.0,
                Mechanism::MissingCut => c.density *= 3.0,
                Mechanism::OxidePinhole => {}
            }
        }
        DefectStatistics::new(classes)
    }
}

impl Default for DefectStatistics {
    fn default() -> Self {
        DefectStatistics::maly_cmos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_samples_conserve_density() {
        let c = DefectClass {
            layer: Layer::Metal1,
            mechanism: Mechanism::ExtraMaterial,
            density: 10.0,
            x_min: 2,
            x_max: 24,
        };
        for samples in [1, 4, 11] {
            let total: f64 = c
                .size_samples(samples)
                .unwrap()
                .iter()
                .map(|&(_, d)| d)
                .sum();
            assert!(
                (total - 10.0).abs() < 1e-9,
                "samples={samples} total={total}"
            );
        }
    }

    #[test]
    fn small_defects_dominate() {
        let c = DefectClass {
            layer: Layer::Metal1,
            mechanism: Mechanism::ExtraMaterial,
            density: 1.0,
            x_min: 2,
            x_max: 20,
        };
        let s = c.size_samples(9).unwrap();
        assert!(s[0].1 > s[1].1);
        assert!(s[1].1 > s.last().unwrap().1);
        // The 1/x³ law concentrates most mass near x_min.
        assert!(s[0].1 > 0.5);
    }

    #[test]
    fn degenerate_range_is_single_sample() {
        let c = DefectClass {
            layer: Layer::GateOxide,
            mechanism: Mechanism::OxidePinhole,
            density: 0.4,
            x_min: 1,
            x_max: 1,
        };
        assert_eq!(c.size_samples(5).unwrap(), vec![(1, 0.4)]);
    }

    #[test]
    fn degenerate_statistics_are_typed_errors() {
        let good = DefectClass {
            layer: Layer::Metal1,
            mechanism: Mechanism::ExtraMaterial,
            density: 1.0,
            x_min: 2,
            x_max: 8,
        };
        assert!(good.validate().is_ok());
        for (bad, reason) in [
            (DefectClass { density: f64::NAN, ..good.clone() }, "NaN"),
            (DefectClass { density: f64::INFINITY, ..good.clone() }, "infinite"),
            (DefectClass { density: 0.0, ..good.clone() }, "positive"),
            (DefectClass { density: -2.0, ..good.clone() }, "positive"),
            (DefectClass { x_min: 0, ..good.clone() }, "x_min"),
            (DefectClass { x_max: 1, ..good.clone() }, "x_max"),
        ] {
            let err = bad.validate().unwrap_err();
            assert!(err.to_string().contains(reason), "{err}");
            assert!(bad.size_samples(4).is_err());
        }
        assert!(matches!(
            good.size_samples(0),
            Err(crate::ExtractError::NoSizeSamples)
        ));
        let stats = DefectStatistics::new(vec![
            good.clone(),
            DefectClass { density: f64::NAN, ..good },
        ]);
        assert!(stats.validate().is_err());
        assert!(DefectStatistics::maly_cmos().validate().is_ok());
        assert!(DefectStatistics::open_heavy().validate().is_ok());
    }

    #[test]
    fn maly_line_is_bridge_heavy() {
        let s = DefectStatistics::maly_cmos();
        let shorts: f64 = s
            .classes()
            .iter()
            .filter(|c| c.mechanism == Mechanism::ExtraMaterial)
            .map(|c| c.density)
            .sum();
        let opens: f64 = s
            .classes()
            .iter()
            .filter(|c| c.mechanism != Mechanism::ExtraMaterial)
            .map(|c| c.density)
            .sum();
        assert!(shorts > 2.0 * opens, "shorts {shorts} opens {opens}");
        assert_eq!(s.max_defect_size(), 24);
        // The ablation variant flips the balance.
        let o = DefectStatistics::open_heavy();
        let o_shorts: f64 = o
            .classes()
            .iter()
            .filter(|c| c.mechanism == Mechanism::ExtraMaterial)
            .map(|c| c.density)
            .sum();
        let o_opens: f64 = o
            .classes()
            .iter()
            .filter(|c| c.mechanism != Mechanism::ExtraMaterial)
            .map(|c| c.density)
            .sum();
        assert!(o_opens > o_shorts);
    }
}
