use std::error::Error;
use std::fmt;

use dlp_core::{PipelineError, Stage};
use dlp_geometry::Layer;

/// Errors raised during fault extraction and lowering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExtractError {
    /// A defect class carries an unusable density or size range
    /// (NaN/infinite/non-positive density, `x_min < 1`, `x_max < x_min`).
    BadDefectStatistics {
        /// The offending class's layer.
        layer: Layer,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// The extraction config asked for zero size-integration samples.
    NoSizeSamples,
    /// An output-pad shape references a net that is not a primary output.
    MissingOutputNet(String),
    /// A stage-internal net has no node in the switch netlist (the switch
    /// netlist does not correspond to the chip's gate-level netlist).
    MissingStageNode(String),
    /// A transistor fault references a device the switch netlist does not
    /// have.
    UnknownTransistor {
        /// The owning gate's name.
        owner: String,
        /// The device ordinal within the owner.
        ordinal: usize,
    },
    /// A rail bridge carries no rail level.
    RailBridgeWithoutLevel(String),
    /// Defect sampling was asked for a layer with no extra-material class.
    NoExtraMaterialClass(Layer),
    /// A stuck-at site references a node or input pin outside the
    /// netlist handed to the weight distribution.
    StuckAtSiteOutOfRange {
        /// Index of the out-of-range node/gate.
        gate: usize,
    },
    /// Tiled weight replication needs a non-empty template site list.
    EmptyTemplate,
    /// The `DLP_THREADS` override is not a positive thread count.
    BadThreadCount(dlp_core::par::ParError),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::BadDefectStatistics { layer, reason } => {
                write!(f, "defect class on layer {layer}: {reason}")
            }
            ExtractError::NoSizeSamples => {
                write!(f, "extraction config requests zero size samples")
            }
            ExtractError::MissingOutputNet(n) => {
                write!(f, "output pad net `{n}` is not a primary output")
            }
            ExtractError::MissingStageNode(n) => {
                write!(f, "switch netlist has no node for stage net `{n}`")
            }
            ExtractError::UnknownTransistor { owner, ordinal } => {
                write!(
                    f,
                    "switch netlist has no transistor {ordinal} of gate `{owner}`"
                )
            }
            ExtractError::RailBridgeWithoutLevel(label) => {
                write!(f, "rail bridge `{label}` carries no rail level")
            }
            ExtractError::NoExtraMaterialClass(layer) => {
                write!(f, "no extra-material defect class on layer {layer}")
            }
            ExtractError::StuckAtSiteOutOfRange { gate } => {
                write!(f, "stuck-at site references node {gate} outside the netlist")
            }
            ExtractError::EmptyTemplate => {
                write!(f, "tiled weights need a non-empty template stuck-at list")
            }
            ExtractError::BadThreadCount(e) => e.fmt(f),
        }
    }
}

impl Error for ExtractError {}

impl From<dlp_core::par::ParError> for ExtractError {
    fn from(e: dlp_core::par::ParError) -> Self {
        ExtractError::BadThreadCount(e)
    }
}

impl From<ExtractError> for PipelineError {
    fn from(e: ExtractError) -> Self {
        PipelineError::with_source(Stage::Extraction, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = ExtractError::BadDefectStatistics {
            layer: Layer::Metal1,
            reason: "density is NaN",
        };
        assert!(e.to_string().contains("m1"));
        assert!(e.to_string().contains("NaN"));
    }

    #[test]
    fn converts_into_pipeline_error_with_stage() {
        let e = PipelineError::from(ExtractError::NoSizeSamples);
        assert_eq!(e.stage(), Stage::Extraction);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ExtractError>();
    }
}
