//! The end-to-end extraction pass: tagged chip geometry in, weighted
//! realistic fault list out.
//!
//! Mapping of defect mechanisms onto faults (approximations are the
//! documented substitutions of `DESIGN.md` §2):
//!
//! | defect                        | fault                                        |
//! |-------------------------------|----------------------------------------------|
//! | extra material, two nets      | [`FaultKind::Bridge`] between the nets        |
//! | extra material, net + rail    | bridge to VDD/GND                             |
//! | extra material, diffusion     | device [`FaultKind::StuckOn`] (S/D short), or a bridge between the stage outputs for inter-strip shorts |
//! | missing material, routed wire | [`FaultKind::Break`] of that branch           |
//! | missing material, poly column | device [`FaultKind::StuckOpen`] (floating gate drifts off) |
//! | missing material, diffusion   | device stuck-open, weight split across the strip's devices |
//! | missing cut (pin contact/via) | break of that pin branch                      |
//! | missing cut (strap contact)   | device stuck-open on the starved side         |
//! | gate-oxide pinhole            | device stuck-on                               |

use std::collections::HashMap;

use dlp_circuit::switch::TransKind;
use dlp_core::obs::Recorder;
use dlp_core::par::{self, ThreadCount};
use dlp_geometry::{Coord, Layer, Rect, Region};
use dlp_layout::chip::{ChipLayout, ElecNet, ElecRole, ShapeOrigin, TerminalKind};

use crate::critical_area::{missing_cut_area, open_area, short_area, weighted};
use crate::defects::{DefectStatistics, Mechanism};
use crate::faults::{Detached, FaultKind, FaultSet, RealisticFault};
use crate::ExtractError;

/// Extraction tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractionConfig {
    /// Defect-size integration samples per class.
    pub size_samples: usize,
    /// Spatial bin size (λ) for bridge-candidate search.
    pub bin: Coord,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            size_samples: 6,
            bin: 64,
        }
    }
}

/// Identity of a shape for bridge extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum BridgeId {
    Net(ElecNet),
    Rail(bool),
    Diff {
        gate: dlp_circuit::NodeId,
        stage: usize,
        kind: TransKind,
    },
}

/// Runs extraction with default tuning.
///
/// # Errors
///
/// See [`extract_with`].
pub fn extract(chip: &ChipLayout, stats: &DefectStatistics) -> Result<FaultSet, ExtractError> {
    extract_with(chip, stats, &ExtractionConfig::default())
}

/// Runs extraction.
///
/// Inputs are validated before any geometry is touched, so adversarial
/// defect statistics (NaN/infinite/zero densities, inverted size ranges)
/// and degenerate configs are rejected up front with a typed error rather
/// than contaminating fault weights.
///
/// The bridge critical-area integration — the extraction hot path — is
/// spread across the workers resolved from `DLP_THREADS` (default:
/// available parallelism); the extracted fault set is bit-identical for
/// every thread count. See [`extract_with_threads`] for explicit control.
///
/// # Errors
///
/// * [`ExtractError::BadDefectStatistics`] — a class has a non-finite or
///   non-positive density, `x_min < 1`, or `x_max < x_min`;
/// * [`ExtractError::NoSizeSamples`] — `config.size_samples == 0`;
/// * [`ExtractError::MissingOutputNet`] — the chip's tagged geometry is
///   inconsistent with its netlist (cannot happen for layouts produced by
///   `ChipLayout::generate`);
/// * [`ExtractError::BadThreadCount`] — the `DLP_THREADS` environment
///   variable is set to `0` or garbage.
pub fn extract_with(
    chip: &ChipLayout,
    stats: &DefectStatistics,
    config: &ExtractionConfig,
) -> Result<FaultSet, ExtractError> {
    extract_with_threads(chip, stats, config, ThreadCount::from_env()?)
}

/// [`extract_with`] with an explicit worker count.
///
/// # Errors
///
/// See [`extract_with`] (minus the environment lookup).
pub fn extract_with_threads(
    chip: &ChipLayout,
    stats: &DefectStatistics,
    config: &ExtractionConfig,
    threads: ThreadCount,
) -> Result<FaultSet, ExtractError> {
    extract_obs(chip, stats, config, threads, Recorder::noop())
}

/// [`extract_with_threads`] with an observability [`Recorder`].
///
/// When the recorder is enabled, the run is traced under the `extract`
/// scope: a span over the whole pass (plus sub-spans for the bridge,
/// open, and cut/device sweeps), counters for defect classes / candidate
/// bridge pairs / extracted faults, gauges for the bridge / open /
/// total critical-area weight, the bridge pair-weight histogram
/// (`extract.pair_weight` — deterministic percentiles at any thread
/// count), and per-worker timeline telemetry from the parallel bridge
/// integration. Tracing never changes the fault set.
///
/// # Errors
///
/// See [`extract_with`] (minus the environment lookup).
pub fn extract_obs(
    chip: &ChipLayout,
    stats: &DefectStatistics,
    config: &ExtractionConfig,
    threads: ThreadCount,
    obs: &Recorder,
) -> Result<FaultSet, ExtractError> {
    let _span = obs.span("extract");
    if config.size_samples == 0 {
        return Err(ExtractError::NoSizeSamples);
    }
    stats.validate()?;
    obs.add("extract.defect_classes", stats.classes().len() as u64);
    obs.add("extract.shapes", chip.shapes().len() as u64);

    let mut acc: HashMap<FaultKind, (f64, String)> = HashMap::new();
    let mut add = |kind: FaultKind, weight: f64, label: String| {
        if weight <= 0.0 {
            return;
        }
        let entry = acc.entry(kind).or_insert((0.0, label));
        entry.0 += weight;
    };

    {
        let _s = obs.span("extract.bridges");
        extract_bridges(chip, stats, config, threads.get(), obs, &mut add)?;
    }
    {
        let _s = obs.span("extract.opens");
        extract_opens(chip, stats, config, &mut add)?;
    }
    {
        let _s = obs.span("extract.cuts");
        extract_cut_and_device_defects(chip, stats, config, &mut add)?;
    }

    let mut faults: Vec<RealisticFault> = acc
        .into_iter()
        .map(|(kind, (weight, label))| RealisticFault {
            kind,
            weight,
            label,
        })
        .collect();
    faults.sort_by(|a, b| a.label.cmp(&b.label));
    let set = FaultSet::new(faults);
    obs.add("extract.faults", set.len() as u64);
    obs.gauge("extract.bridge_weight", set.bridge_weight());
    obs.gauge("extract.open_weight", set.open_weight());
    obs.gauge("extract.total_weight", set.weights().iter().sum());
    Ok(set)
}

/// Stage-output net of `(gate, stage)` (the last stage is the gate's own
/// signal).
fn stage_net(chip: &ChipLayout, gate: dlp_circuit::NodeId, stage: usize) -> ElecNet {
    let stages = FaultSet::stage_count(chip.netlist(), gate);
    if stage + 1 == stages {
        ElecNet::Signal(gate)
    } else {
        ElecNet::Stage(gate, stage)
    }
}

fn bridge_identity(role: &ElecRole) -> Option<BridgeId> {
    match role {
        ElecRole::Net(n) => Some(BridgeId::Net(*n)),
        ElecRole::Vdd => Some(BridgeId::Rail(true)),
        ElecRole::Gnd => Some(BridgeId::Rail(false)),
        ElecRole::StageDiff { gate, stage, kind } => Some(BridgeId::Diff {
            gate: *gate,
            stage: *stage,
            kind: *kind,
        }),
    }
}

fn net_label(chip: &ChipLayout, net: &ElecNet) -> String {
    match net {
        ElecNet::Signal(n) => chip.netlist().node_name(*n).to_string(),
        ElecNet::Stage(g, s) => format!("{}#s{s}", chip.netlist().node_name(*g)),
    }
}

fn extract_bridges(
    chip: &ChipLayout,
    stats: &DefectStatistics,
    config: &ExtractionConfig,
    workers: usize,
    obs: &Recorder,
    add: &mut dyn FnMut(FaultKind, f64, String),
) -> Result<(), ExtractError> {
    let max_x = stats.max_defect_size();
    for class in stats.classes() {
        if class.mechanism != Mechanism::ExtraMaterial {
            continue;
        }
        let samples = class.size_samples(config.size_samples)?;
        // Gather shapes of this layer grouped by identity.
        let mut regions: HashMap<BridgeId, Vec<Rect>> = HashMap::new();
        for s in chip.shapes() {
            if s.layer != class.layer {
                continue;
            }
            if let Some(id) = bridge_identity(&s.role) {
                regions.entry(id).or_default().push(s.rect);
            }
        }
        // Spatial bins over identities' rects.
        let mut bins: HashMap<(Coord, Coord), Vec<BridgeId>> = HashMap::new();
        for (&id, rects) in &regions {
            for r in rects {
                let grown = r.dilated(max_x);
                for bx in grown.x0() / config.bin..=grown.x1() / config.bin {
                    for by in grown.y0() / config.bin..=grown.y1() / config.bin {
                        let v = bins.entry((bx, by)).or_default();
                        if !v.contains(&id) {
                            v.push(id);
                        }
                    }
                }
            }
        }
        let mut pairs: std::collections::HashSet<(BridgeId, BridgeId)> =
            std::collections::HashSet::new();
        for ids in bins.values() {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    let (x, y) = if a < b { (a, b) } else { (b, a) };
                    pairs.insert((x, y));
                }
            }
        }
        // Sorted pair list: the work decomposition and the accumulation
        // order stay a function of the geometry alone, never of hash or
        // thread scheduling.
        let mut pairs: Vec<(BridgeId, BridgeId)> = pairs.into_iter().collect();
        pairs.sort_unstable();
        obs.add("extract.bridge_pairs", pairs.len() as u64);

        // Per-pair critical-area integration — the extraction hot path —
        // is pure, so fanning pairs across workers cannot change weights.
        let pair_fault = |a: BridgeId, b: BridgeId| -> Option<(FaultKind, f64, String)> {
            if matches!((a, b), (BridgeId::Rail(_), BridgeId::Rail(_))) {
                return None;
            }
            let ra = Region::from_rects(class.layer, regions[&a].iter().copied());
            let rb = Region::from_rects(class.layer, regions[&b].iter().copied());
            let w = weighted(&samples, |x| short_area(&ra, &rb, x));
            if w <= 0.0 {
                return None;
            }
            let (kind, label) = match (a, b) {
                (BridgeId::Net(x), BridgeId::Net(y)) => (
                    FaultKind::Bridge {
                        a: x,
                        b: Some(y),
                        rail: None,
                    },
                    format!(
                        "br:{}:{}:{}",
                        class.layer,
                        net_label(chip, &x),
                        net_label(chip, &y)
                    ),
                ),
                (BridgeId::Net(x), BridgeId::Rail(v)) | (BridgeId::Rail(v), BridgeId::Net(x)) => (
                    FaultKind::Bridge {
                        a: x,
                        b: None,
                        rail: Some(v),
                    },
                    format!(
                        "br:{}:{}:{}",
                        class.layer,
                        net_label(chip, &x),
                        if v { "vdd" } else { "gnd" }
                    ),
                ),
                (
                    BridgeId::Diff {
                        gate: g1,
                        stage: s1,
                        ..
                    },
                    BridgeId::Diff {
                        gate: g2,
                        stage: s2,
                        ..
                    },
                ) => {
                    // Inter-strip diffusion short: approximate as a bridge
                    // between the stage outputs.
                    let na = stage_net(chip, g1, s1);
                    let nb = stage_net(chip, g2, s2);
                    if na == nb {
                        return None;
                    }
                    (
                        FaultKind::Bridge {
                            a: na,
                            b: Some(nb),
                            rail: None,
                        },
                        format!(
                            "br:{}:{}:{}",
                            class.layer,
                            net_label(chip, &na),
                            net_label(chip, &nb)
                        ),
                    )
                }
                // Diffusion strips never share a layer with nets or rails.
                _ => return None,
            };
            Some((kind, w, label))
        };
        let found = par::map_chunks_counted(workers, &pairs, workers, obs, "extract", |_, chunk| {
            chunk
                .iter()
                .filter_map(|&(a, b)| pair_fault(a, b))
                .collect::<Vec<_>>()
        });
        for (kind, w, label) in found.into_iter().flatten() {
            // Chunk order is deterministic, so the weight distribution's
            // percentiles are thread-count invariant.
            obs.observe("extract.pair_weight", w);
            add(kind, w, label);
        }
    }
    Ok(())
}

fn extract_opens(
    chip: &ChipLayout,
    stats: &DefectStatistics,
    config: &ExtractionConfig,
    add: &mut dyn FnMut(FaultKind, f64, String),
) -> Result<(), ExtractError> {
    let poly_w = chip.tech().poly_width;
    for class in stats.classes() {
        if class.mechanism != Mechanism::MissingMaterial {
            continue;
        }
        let samples = class.size_samples(config.size_samples)?;
        for s in chip.shapes() {
            if s.layer != class.layer {
                continue;
            }
            match (&s.role, &s.origin) {
                // Routed branches: break semantics by terminal.
                (
                    ElecRole::Net(net),
                    ShapeOrigin::Route {
                        net_index,
                        terminal,
                    },
                ) => {
                    let w = weighted(&samples, |x| open_area(&s.rect, x));
                    let info = &chip.nets()[*net_index];
                    let detached = match info.terminals[*terminal] {
                        TerminalKind::Driver => Detached::All,
                        TerminalKind::SinkGate(g) => Detached::Sink(g),
                        TerminalKind::OutputPad => {
                            let ElecNet::Signal(n) = net else { continue };
                            let oi = chip
                                .netlist()
                                .outputs()
                                .iter()
                                .position(|o| o == n)
                                .ok_or_else(|| {
                                    ExtractError::MissingOutputNet(
                                        chip.netlist().node_name(*n).to_string(),
                                    )
                                })?;
                            Detached::Observation(oi)
                        }
                    };
                    add(
                        FaultKind::Break {
                            net: *net,
                            detached,
                        },
                        w,
                        format!("op:{}:{}:t{}", class.layer, net_label(chip, net), terminal),
                    );
                }
                // Cell-internal conductor shapes.
                (ElecRole::Net(net), ShapeOrigin::Cell { gate }) => {
                    let w = weighted(&samples, |x| open_area(&s.rect, x));
                    if s.layer == Layer::Poly {
                        // Floating-gate column: drifts off — model as the
                        // column's NMOS stuck open.
                        if let Some(t) = chip.transistors().iter().find(|t| {
                            t.owner == *gate
                                && t.kind == TransKind::Nmos
                                && t.channel.x0() >= s.rect.x0()
                                && t.channel.x1() <= s.rect.x1()
                        }) {
                            add(
                                FaultKind::StuckOpen {
                                    owner: *gate,
                                    ordinal: t.ordinal,
                                },
                                w,
                                format!("op:po:{}:{}", chip.netlist().node_name(*gate), t.ordinal),
                            );
                        }
                    } else {
                        // Pin pad or strap m1: pad (input net ≠ gate's own
                        // nets) detaches the sink; strap detaches all.
                        let own = matches!(net, ElecNet::Signal(n) if n == gate)
                            || matches!(net, ElecNet::Stage(g, _) if g == gate);
                        let detached = if own {
                            Detached::All
                        } else {
                            Detached::Sink(*gate)
                        };
                        add(
                            FaultKind::Break {
                                net: *net,
                                detached,
                            },
                            w,
                            format!(
                                "op:{}:{}:cell{}",
                                class.layer,
                                net_label(chip, net),
                                chip.netlist().node_name(*gate)
                            ),
                        );
                    }
                }
                // Diffusion strips: split the open weight across devices.
                (ElecRole::StageDiff { gate, stage, kind }, _) => {
                    let w = weighted(&samples, |x| open_area(&s.rect, x));
                    let devices: Vec<_> = chip
                        .transistors()
                        .iter()
                        .filter(|t| t.owner == *gate && t.stage == *stage && t.kind == *kind)
                        .collect();
                    if devices.is_empty() {
                        continue;
                    }
                    let each = w / devices.len() as f64;
                    for t in devices {
                        add(
                            FaultKind::StuckOpen {
                                owner: *gate,
                                ordinal: t.ordinal,
                            },
                            each,
                            format!("op:df:{}:{}", chip.netlist().node_name(*gate), t.ordinal),
                        );
                    }
                }
                _ => {}
            }
        }
    }
    let _ = poly_w;
    Ok(())
}

fn extract_cut_and_device_defects(
    chip: &ChipLayout,
    stats: &DefectStatistics,
    config: &ExtractionConfig,
    add: &mut dyn FnMut(FaultKind, f64, String),
) -> Result<(), ExtractError> {
    let poly_w = chip.tech().poly_width;
    for class in stats.classes() {
        match class.mechanism {
            Mechanism::MissingCut => {
                let samples = class.size_samples(config.size_samples)?;
                for s in chip.shapes() {
                    if s.layer != class.layer {
                        continue;
                    }
                    let ElecRole::Net(net) = &s.role else {
                        continue;
                    };
                    let w = weighted(&samples, |x| missing_cut_area(&s.rect, x));
                    match &s.origin {
                        ShapeOrigin::Route {
                            net_index,
                            terminal,
                        } => {
                            let info = &chip.nets()[*net_index];
                            let detached = match info.terminals[*terminal] {
                                TerminalKind::Driver => Detached::All,
                                TerminalKind::SinkGate(g) => Detached::Sink(g),
                                TerminalKind::OutputPad => {
                                    let ElecNet::Signal(n) = net else { continue };
                                    let oi = chip
                                        .netlist()
                                        .outputs()
                                        .iter()
                                        .position(|o| o == n)
                                        .ok_or_else(|| {
                                            ExtractError::MissingOutputNet(
                                                chip.netlist().node_name(*n).to_string(),
                                            )
                                        })?;
                                    Detached::Observation(oi)
                                }
                            };
                            add(
                                FaultKind::Break {
                                    net: *net,
                                    detached,
                                },
                                w,
                                format!("cut:{}:t{}", net_label(chip, net), terminal),
                            );
                        }
                        ShapeOrigin::Cell { gate } => {
                            let own = matches!(net, ElecNet::Signal(n) if n == gate)
                                || matches!(net, ElecNet::Stage(g, _) if g == gate);
                            if own {
                                // Strap contact: starves one device row of
                                // the stage — nearest-device stuck-open.
                                let stage = match net {
                                    ElecNet::Stage(_, s) => *s,
                                    ElecNet::Signal(g) => {
                                        FaultSet::stage_count(chip.netlist(), *g) - 1
                                    }
                                };
                                // Which device row the contact feeds: its
                                // y within the cell decides N vs P side.
                                let local_y = (s.rect.center().y - chip.tech().channel_height())
                                    .rem_euclid(chip.tech().row_pitch());
                                let kind = if local_y < chip.tech().cell_height / 2 {
                                    TransKind::Nmos
                                } else {
                                    TransKind::Pmos
                                };
                                if let Some(t) = chip
                                    .transistors()
                                    .iter()
                                    .filter(|t| {
                                        t.owner == *gate && t.stage == stage && t.kind == kind
                                    })
                                    .min_by_key(|t| {
                                        (t.channel.center().x - s.rect.center().x).abs()
                                    })
                                {
                                    add(
                                        FaultKind::StuckOpen {
                                            owner: *gate,
                                            ordinal: t.ordinal,
                                        },
                                        w,
                                        format!(
                                            "cut:st:{}:{}",
                                            chip.netlist().node_name(*gate),
                                            t.ordinal
                                        ),
                                    );
                                }
                            } else {
                                add(
                                    FaultKind::Break {
                                        net: *net,
                                        detached: Detached::Sink(*gate),
                                    },
                                    w,
                                    format!(
                                        "cut:pin:{}:{}",
                                        net_label(chip, net),
                                        chip.netlist().node_name(*gate)
                                    ),
                                );
                            }
                        }
                        ShapeOrigin::Supply => {}
                    }
                }
            }
            Mechanism::OxidePinhole => {
                for s in chip.shapes() {
                    if s.layer != Layer::GateOxide {
                        continue;
                    }
                    let ElecRole::StageDiff { gate, stage, kind } = &s.role else {
                        continue;
                    };
                    // Pinhole anywhere in the channel: gate-to-channel
                    // short -> device stuck on.
                    let w = class.density * s.rect.area() as f64 / 1e6;
                    if let Some(t) = chip.transistors().iter().find(|t| {
                        t.owner == *gate
                            && t.stage == *stage
                            && t.kind == *kind
                            && t.channel == s.rect
                    }) {
                        add(
                            FaultKind::StuckOn {
                                owner: *gate,
                                ordinal: t.ordinal,
                            },
                            w,
                            format!("ox:{}:{}", chip.netlist().node_name(*gate), t.ordinal),
                        );
                    }
                }
            }
            Mechanism::ExtraMaterial if class.layer.is_conductor() => {
                // Intra-strip diffusion shorts: extra material across a
                // channel shorts the device's source/drain -> stuck-on.
                if !matches!(class.layer, Layer::Ndiff | Layer::Pdiff) {
                    continue;
                }
                let samples = class.size_samples(config.size_samples)?;
                let want = if class.layer == Layer::Ndiff {
                    TransKind::Nmos
                } else {
                    TransKind::Pmos
                };
                for t in chip.transistors() {
                    if t.kind != want {
                        continue;
                    }
                    let h = t.channel.height().max(t.channel.width());
                    let w = weighted(&samples, |x| {
                        if x <= poly_w {
                            0
                        } else {
                            (x - poly_w) * (x + h)
                        }
                    });
                    add(
                        FaultKind::StuckOn {
                            owner: t.owner,
                            ordinal: t.ordinal,
                        },
                        w,
                        format!(
                            "sd:{}:{}:{}",
                            class.layer,
                            chip.netlist().node_name(t.owner),
                            t.ordinal
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::OpenLevelModel;
    use dlp_circuit::{generators, switch};
    use dlp_layout::chip::ChipLayout;

    fn c17_faults() -> (dlp_circuit::Netlist, ChipLayout, FaultSet) {
        let nl = generators::c17();
        let chip = ChipLayout::generate(&nl, &Default::default()).unwrap();
        let faults = extract(&chip, &DefectStatistics::maly_cmos()).unwrap();
        (nl, chip, faults)
    }

    #[test]
    fn extracts_all_fault_families() {
        let (_, _, faults) = c17_faults();
        let mut bridges = 0;
        let mut breaks = 0;
        let mut opens = 0;
        let mut ons = 0;
        for f in faults.faults() {
            match f.kind {
                FaultKind::Bridge { .. } => bridges += 1,
                FaultKind::Break { .. } => breaks += 1,
                FaultKind::StuckOpen { .. } => opens += 1,
                FaultKind::StuckOn { .. } => ons += 1,
            }
        }
        assert!(bridges > 10, "bridges {bridges}");
        assert!(breaks > 10, "breaks {breaks}");
        assert!(opens >= 6, "stuck-opens {opens}");
        assert!(ons >= 12, "stuck-ons {ons}");
    }

    #[test]
    fn weights_are_positive_and_dispersed() {
        let (_, _, faults) = c17_faults();
        let weights = faults.weights();
        assert!(weights.iter().all(|&w| w > 0.0));
        let max = weights.iter().cloned().fold(0.0, f64::max);
        let min = weights.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min > 10.0,
            "weight dispersion too small: {min}..{max}"
        );
    }

    #[test]
    fn bridge_weight_dominates_in_maly_line() {
        // c17 is too sparse for meaningful channel adjacency; use a denser
        // block (the effect is stronger still on the c432-class chip).
        let nl = generators::ripple_adder(4);
        let chip = ChipLayout::generate(&nl, &Default::default()).unwrap();
        let faults = extract(&chip, &DefectStatistics::maly_cmos()).unwrap();
        assert!(
            faults.bridge_weight() > faults.open_weight(),
            "bridge {} vs open {}",
            faults.bridge_weight(),
            faults.open_weight()
        );
        // And the open-heavy ablation line flips it.
        let open_faults = extract(&chip, &DefectStatistics::open_heavy()).unwrap();
        assert!(open_faults.open_weight() > open_faults.bridge_weight());
    }

    #[test]
    fn all_faults_lower_onto_switch_netlist() {
        let (nl, _, faults) = c17_faults();
        let sw = switch::expand(&nl).unwrap();
        let lowered = faults
            .to_switch_faults(&nl, &sw, &OpenLevelModel::default())
            .unwrap();
        assert_eq!(lowered.len(), faults.len());
    }

    #[test]
    fn no_self_bridges() {
        let (_, _, faults) = c17_faults();
        for f in faults.faults() {
            if let FaultKind::Bridge { a, b: Some(b), .. } = &f.kind {
                assert_ne!(a, b, "self-bridge {}", f.label);
            }
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let nl = generators::c17();
        let chip = ChipLayout::generate(&nl, &Default::default()).unwrap();
        let a = extract(&chip, &DefectStatistics::maly_cmos()).unwrap();
        let b = extract(&chip, &DefectStatistics::maly_cmos()).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.faults().iter().zip(b.faults()) {
            assert_eq!(x.label, y.label);
            assert!((x.weight - y.weight).abs() < 1e-18);
        }
    }

    #[test]
    fn extraction_is_thread_count_invariant() {
        let nl = generators::c17();
        let chip = ChipLayout::generate(&nl, &Default::default()).unwrap();
        let stats = DefectStatistics::maly_cmos();
        let cfg = ExtractionConfig::default();
        let reference =
            extract_with_threads(&chip, &stats, &cfg, ThreadCount::fixed(1).unwrap()).unwrap();
        for t in [2usize, 4] {
            let got =
                extract_with_threads(&chip, &stats, &cfg, ThreadCount::fixed(t).unwrap()).unwrap();
            assert_eq!(got.len(), reference.len(), "threads={t}");
            for (x, y) in got.faults().iter().zip(reference.faults()) {
                assert_eq!(x.label, y.label, "threads={t}");
                assert_eq!(x.kind, y.kind, "threads={t}");
                assert!(
                    x.weight.to_bits() == y.weight.to_bits(),
                    "threads={t}: weight {} vs {}",
                    x.weight,
                    y.weight
                );
            }
        }
    }
}
