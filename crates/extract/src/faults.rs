//! The realistic fault taxonomy and its mapping onto simulator faults.
//!
//! Extraction produces faults in *layout terms* ([`RealisticFault`]);
//! [`FaultSet::to_switch_faults`] lowers them onto a
//! [`SwitchNetlist`](dlp_circuit::switch::SwitchNetlist) for simulation.
//! Floating levels of interconnect breaks are sampled deterministically
//! per fault (an open leaves the detached input at a level set by local
//! coupling; the [`OpenLevelModel`] gives the population fractions —
//! the `X` fraction is what voltage testing can never see).

use dlp_circuit::switch::SwitchNetlist;
use dlp_circuit::{Netlist, NodeId};
use dlp_layout::chip::ElecNet;
use dlp_sim::switchlevel::{Logic, SwitchFault};

use crate::ExtractError;

/// What an interconnect break detaches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Detached {
    /// A single sink gate's input branch.
    Sink(NodeId),
    /// The whole net (break at the driver).
    All,
    /// A primary output's observation pad branch.
    Observation(usize),
}

/// A layout-extracted fault.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Short between two nets (or a net and a rail: `rail` is `Some(level)`).
    Bridge {
        /// First net.
        a: ElecNet,
        /// Second net, or `None` when bridged to a rail.
        b: Option<ElecNet>,
        /// The rail level when `b` is `None` (`true` = VDD).
        rail: Option<bool>,
    },
    /// An interconnect break on a net.
    Break {
        /// The broken net.
        net: ElecNet,
        /// What comes loose.
        detached: Detached,
    },
    /// A transistor that can no longer conduct.
    StuckOpen {
        /// Owning gate.
        owner: NodeId,
        /// Device ordinal within the owner (expansion order).
        ordinal: usize,
    },
    /// A transistor that always conducts.
    StuckOn {
        /// Owning gate.
        owner: NodeId,
        /// Device ordinal within the owner (expansion order).
        ordinal: usize,
    },
}

impl FaultKind {
    /// True for shorts (bridges), false for the open family.
    pub fn is_bridge(&self) -> bool {
        matches!(self, FaultKind::Bridge { .. } | FaultKind::StuckOn { .. })
    }
}

/// A fault with its occurrence weight (`w = Σ A·D`, eq. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct RealisticFault {
    /// What the defect does.
    pub kind: FaultKind,
    /// Expected inducing defects per die (before yield scaling).
    pub weight: f64,
    /// A stable human-readable identity for reports.
    pub label: String,
}

/// Population fractions for the level a floating (broken) input assumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLevelModel {
    /// Fraction coupling to ground (behaves as stuck-at-0).
    pub p_zero: f64,
    /// Fraction coupling to VDD (behaves as stuck-at-1).
    pub p_one: f64,
    /// Fraction at an intermediate level — invisible to steady-state
    /// voltage tests (drives `θ_max < 1`).
    pub p_x: f64,
}

impl Default for OpenLevelModel {
    fn default() -> Self {
        OpenLevelModel {
            p_zero: 0.4,
            p_one: 0.4,
            p_x: 0.2,
        }
    }
}

impl OpenLevelModel {
    /// Deterministically samples a level from the fault's label hash.
    pub fn sample(&self, label: &str) -> Logic {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let total = self.p_zero + self.p_one + self.p_x;
        if u < self.p_zero / total {
            Logic::Zero
        } else if u < (self.p_zero + self.p_one) / total {
            Logic::One
        } else {
            Logic::X
        }
    }
}

/// The extracted fault list of a chip.
#[derive(Debug, Clone)]
pub struct FaultSet {
    faults: Vec<RealisticFault>,
}

impl FaultSet {
    /// Wraps a fault vector.
    pub fn new(faults: Vec<RealisticFault>) -> Self {
        FaultSet { faults }
    }

    /// The faults.
    pub fn faults(&self) -> &[RealisticFault] {
        &self.faults
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True if no faults were extracted.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The weight vector, parallel to [`faults`](Self::faults).
    pub fn weights(&self) -> Vec<f64> {
        self.faults.iter().map(|f| f.weight).collect()
    }

    /// Total weight of bridge-family faults.
    pub fn bridge_weight(&self) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.kind.is_bridge())
            .map(|f| f.weight)
            .sum()
    }

    /// Total weight of open-family faults.
    pub fn open_weight(&self) -> f64 {
        self.faults
            .iter()
            .filter(|f| !f.kind.is_bridge())
            .map(|f| f.weight)
            .sum()
    }

    /// Scales all weights by a common factor (yield scaling is done by the
    /// caller through `dlp-core`'s `FaultWeights::scaled_to_yield`; this
    /// is the raw mechanism).
    pub fn scale_weights(&mut self, factor: f64) {
        for f in &mut self.faults {
            f.weight *= factor;
        }
    }

    /// Lowers every fault onto the switch netlist for simulation.
    ///
    /// The returned vector is parallel to [`faults`](Self::faults).
    ///
    /// # Errors
    ///
    /// [`ExtractError::MissingStageNode`],
    /// [`ExtractError::RailBridgeWithoutLevel`] or
    /// [`ExtractError::UnknownTransistor`] when the switch netlist does
    /// not correspond to the gate-level netlist the chip was generated
    /// from (or the fault set was built against a different design).
    pub fn to_switch_faults(
        &self,
        netlist: &Netlist,
        sw: &SwitchNetlist,
        open_model: &OpenLevelModel,
    ) -> Result<Vec<SwitchFault>, ExtractError> {
        // Per-owner transistor index base: expansion order is per-gate
        // contiguous, so (owner, ordinal) -> global index is base + ordinal.
        let mut base: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
        let mut counts: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();
        for (i, t) in sw.transistors().iter().enumerate() {
            base.entry(t.owner).or_insert(i);
            *counts.entry(t.owner).or_insert(0) += 1;
        }
        let node_of = |net: &ElecNet| match net {
            ElecNet::Signal(n) => Ok(sw.node_of_net(*n)),
            ElecNet::Stage(g, s) => {
                let name = format!("{}#s{}", netlist.node_name(*g), s);
                sw.node_by_name(&name)
                    .ok_or(ExtractError::MissingStageNode(name))
            }
        };
        let device_of = |owner: &NodeId, ordinal: usize| {
            match (base.get(owner), counts.get(owner)) {
                (Some(&b), Some(&n)) if ordinal < n => Ok(b + ordinal),
                _ => Err(ExtractError::UnknownTransistor {
                    owner: netlist.node_name(*owner).to_string(),
                    ordinal,
                }),
            }
        };
        self.faults
            .iter()
            .map(|f| {
                Ok(match &f.kind {
                    FaultKind::Bridge { a, b: Some(b), .. } => SwitchFault::Bridge {
                        a: node_of(a)?,
                        b: node_of(b)?,
                    },
                    FaultKind::Bridge { a, b: None, rail } => SwitchFault::Bridge {
                        a: node_of(a)?,
                        b: match rail {
                            Some(true) => dlp_circuit::switch::SwitchNodeId::VDD,
                            Some(false) => dlp_circuit::switch::SwitchNodeId::GND,
                            None => {
                                return Err(ExtractError::RailBridgeWithoutLevel(
                                    f.label.clone(),
                                ))
                            }
                        },
                    },
                    FaultKind::Break { net, detached } => match detached {
                        Detached::Observation(oi) => SwitchFault::OutputRead {
                            output: *oi,
                            level: open_model.sample(&f.label),
                        },
                        Detached::Sink(g) => SwitchFault::FloatingInput {
                            net: node_of(net)?,
                            owners: vec![*g],
                            level: open_model.sample(&f.label),
                        },
                        Detached::All => {
                            let owners: Vec<NodeId> = match net {
                                ElecNet::Signal(n) => netlist.fanout(*n).to_vec(),
                                ElecNet::Stage(g, _) => vec![*g],
                            };
                            SwitchFault::FloatingInput {
                                net: node_of(net)?,
                                owners,
                                level: open_model.sample(&f.label),
                            }
                        }
                    },
                    FaultKind::StuckOpen { owner, ordinal } => SwitchFault::StuckOpen {
                        transistor: device_of(owner, *ordinal)?,
                    },
                    FaultKind::StuckOn { owner, ordinal } => SwitchFault::StuckOn {
                        transistor: device_of(owner, *ordinal)?,
                    },
                })
            })
            .collect()
    }

    /// The stage count of a gate's cell — a helper for resolving the last
    /// stage's net during extraction.
    ///
    /// # Panics
    ///
    /// Panics on an unmappable gate. Extraction only sees gates that were
    /// already placed by `ChipLayout::generate`, which propagates the
    /// mapping failure as a typed `LayoutError` first.
    pub fn stage_count(netlist: &Netlist, gate: NodeId) -> usize {
        match dlp_circuit::cells::template_for(netlist.kind(gate), netlist.fanin(gate).len()) {
            Ok(t) => t.stages().len(),
            Err(e) => panic!("placed gate lost its cell template: {e}"),
        }
    }

    /// Drops faults with negligible weight (below `threshold` of the total
    /// weight) — used to keep switch-level simulation affordable without
    /// visibly changing θ. Returns the number of faults dropped.
    pub fn prune_below(&mut self, threshold: f64) -> usize {
        let total: f64 = self.faults.iter().map(|f| f.weight).sum();
        let cut = total * threshold;
        let before = self.faults.len();
        self.faults.retain(|f| f.weight >= cut);
        before - self.faults.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlp_circuit::generators;
    use dlp_circuit::switch;

    #[test]
    fn open_level_sampling_is_deterministic_and_distributed() {
        let m = OpenLevelModel::default();
        assert_eq!(m.sample("abc"), m.sample("abc"));
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            match m.sample(&format!("fault{i}")) {
                Logic::Zero => counts[0] += 1,
                Logic::One => counts[1] += 1,
                Logic::X => counts[2] += 1,
            }
        }
        // Roughly 40/40/20.
        assert!((counts[0] as f64 / 3000.0 - 0.4).abs() < 0.05, "{counts:?}");
        assert!((counts[2] as f64 / 3000.0 - 0.2).abs() < 0.05, "{counts:?}");
    }

    #[test]
    fn lowering_bridges_and_breaks() {
        let nl = generators::c17();
        let sw = switch::expand(&nl).unwrap();
        let n10 = nl.find("10").unwrap();
        let n16 = nl.find("16").unwrap();
        let g22 = nl.find("22").unwrap();
        let set = FaultSet::new(vec![
            RealisticFault {
                kind: FaultKind::Bridge {
                    a: ElecNet::Signal(n10),
                    b: Some(ElecNet::Signal(n16)),
                    rail: None,
                },
                weight: 1e-3,
                label: "br:10:16".into(),
            },
            RealisticFault {
                kind: FaultKind::Break {
                    net: ElecNet::Signal(n10),
                    detached: Detached::Sink(g22),
                },
                weight: 1e-4,
                label: "op:10:22".into(),
            },
            RealisticFault {
                kind: FaultKind::Bridge {
                    a: ElecNet::Signal(n10),
                    b: None,
                    rail: Some(true),
                },
                weight: 1e-5,
                label: "br:10:vdd".into(),
            },
            RealisticFault {
                kind: FaultKind::Break {
                    net: ElecNet::Signal(n10),
                    detached: Detached::All,
                },
                weight: 2e-5,
                label: "op:10:all".into(),
            },
        ]);
        let lowered = set.to_switch_faults(&nl, &sw, &OpenLevelModel::default()).unwrap();
        assert_eq!(lowered.len(), 4);
        assert!(matches!(lowered[0], SwitchFault::Bridge { .. }));
        match &lowered[1] {
            SwitchFault::FloatingInput { owners, .. } => assert_eq!(owners, &vec![g22]),
            other => panic!("{other:?}"),
        }
        match &lowered[2] {
            SwitchFault::Bridge { b, .. } => {
                assert_eq!(*b, dlp_circuit::switch::SwitchNodeId::VDD)
            }
            other => panic!("{other:?}"),
        }
        match &lowered[3] {
            SwitchFault::FloatingInput { owners, .. } => {
                assert_eq!(owners.len(), nl.fanout(n10).len())
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lowering_transistor_faults_uses_expansion_order() {
        let nl = generators::c17();
        let sw = switch::expand(&nl).unwrap();
        let g = nl.find("16").unwrap();
        let set = FaultSet::new(vec![RealisticFault {
            kind: FaultKind::StuckOpen {
                owner: g,
                ordinal: 1,
            },
            weight: 1e-6,
            label: "so:16:1".into(),
        }]);
        let lowered = set.to_switch_faults(&nl, &sw, &OpenLevelModel::default()).unwrap();
        match lowered[0] {
            SwitchFault::StuckOpen { transistor } => {
                assert_eq!(sw.transistors()[transistor].owner, g);
                // Ordinal 1 of a NAND2 is the second NMOS.
                assert_eq!(
                    sw.transistors()[transistor].kind,
                    dlp_circuit::switch::TransKind::Nmos
                );
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lowering_mismatched_netlists_is_a_typed_error() {
        let nl = generators::c17();
        let sw = switch::expand(&nl).unwrap();
        let g = nl.find("16").unwrap();
        // Device ordinal past the owner's expansion.
        let set = FaultSet::new(vec![RealisticFault {
            kind: FaultKind::StuckOpen {
                owner: g,
                ordinal: 999,
            },
            weight: 1e-6,
            label: "so:16:999".into(),
        }]);
        let err = set
            .to_switch_faults(&nl, &sw, &OpenLevelModel::default())
            .unwrap_err();
        assert!(matches!(err, ExtractError::UnknownTransistor { .. }), "{err}");
        // Rail bridge missing its level.
        let set = FaultSet::new(vec![RealisticFault {
            kind: FaultKind::Bridge {
                a: ElecNet::Signal(g),
                b: None,
                rail: None,
            },
            weight: 1e-6,
            label: "br:bad".into(),
        }]);
        let err = set
            .to_switch_faults(&nl, &sw, &OpenLevelModel::default())
            .unwrap_err();
        assert!(matches!(err, ExtractError::RailBridgeWithoutLevel(_)), "{err}");
        // Stage net that the switch netlist does not know.
        let set = FaultSet::new(vec![RealisticFault {
            kind: FaultKind::Break {
                net: ElecNet::Stage(g, 7),
                detached: Detached::All,
            },
            weight: 1e-6,
            label: "op:bad".into(),
        }]);
        let err = set
            .to_switch_faults(&nl, &sw, &OpenLevelModel::default())
            .unwrap_err();
        assert!(matches!(err, ExtractError::MissingStageNode(_)), "{err}");
    }

    #[test]
    fn bookkeeping() {
        let mut set = FaultSet::new(vec![
            RealisticFault {
                kind: FaultKind::StuckOn {
                    owner: NodeId::from_index(0),
                    ordinal: 0,
                },
                weight: 0.9,
                label: "a".into(),
            },
            RealisticFault {
                kind: FaultKind::Break {
                    net: ElecNet::Signal(NodeId::from_index(0)),
                    detached: Detached::All,
                },
                weight: 0.1,
                label: "b".into(),
            },
            RealisticFault {
                kind: FaultKind::Break {
                    net: ElecNet::Signal(NodeId::from_index(0)),
                    detached: Detached::All,
                },
                weight: 1e-9,
                label: "c".into(),
            },
        ]);
        assert_eq!(set.len(), 3);
        assert!((set.bridge_weight() - 0.9).abs() < 1e-12);
        assert!((set.open_weight() - 0.1).abs() < 1e-7);
        assert_eq!(set.prune_below(1e-6), 1);
        assert_eq!(set.len(), 2);
        set.scale_weights(2.0);
        assert!((set.weights()[0] - 1.8).abs() < 1e-12);
    }
}
