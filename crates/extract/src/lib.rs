//! Layout fault extraction — the reproduction's stand-in for the paper's
//! `lift` tool.
//!
//! Given a tagged [`ChipLayout`](dlp_layout::chip::ChipLayout) and a
//! process [`DefectStatistics`](defects::DefectStatistics), the extractor
//! produces a **weighted realistic fault list**: every fault is caused by a
//! likely physical defect, and its weight `w = Σ_x A_crit(x)·D(x)` is the
//! expected number of defects inducing it (critical area × defect density,
//! eq. 4 of the paper).
//!
//! * [`defects`] — defect classes, densities and the `1/x³` size law,
//! * [`critical_area`] — geometric critical-area computations,
//! * [`faults`] — the realistic fault taxonomy (bridges, breaks,
//!   transistor stuck-opens/ons) and mapping onto simulator faults,
//! * [`extractor`] — the end-to-end extraction pass,
//! * [`report`] — weight breakdowns per family and layer,
//! * [`sampling`] — Monte Carlo defect injection cross-checking the
//!   critical-area analysis,
//! * [`sharded`] — critical-area weight distribution onto stuck-at
//!   universes and tiled template replication (the million-fault scale
//!   path; see `DESIGN.md` §13).
//!
//! # Example
//!
//! ```
//! use dlp_circuit::generators;
//! use dlp_extract::{defects::DefectStatistics, extractor};
//! use dlp_layout::chip::ChipLayout;
//!
//! let c17 = generators::c17();
//! let chip = ChipLayout::generate(&c17, &Default::default())?;
//! let faults = extractor::extract(&chip, &DefectStatistics::maly_cmos())?;
//! assert!(faults.len() > 50);
//! assert!(faults.weights().iter().all(|&w| w > 0.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical_area;
pub mod defects;
mod error;
pub mod extractor;
pub mod faults;
pub mod report;
pub mod sampling;
pub mod sharded;

pub use error::ExtractError;
