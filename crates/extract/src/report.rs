//! Extraction reports: weight breakdowns by fault family and by layer —
//! the summary a process engineer reads before trusting the fault list
//! (and the hook the paper suggests for *tuning* assumed defect statistics
//! against measured DL(T) curves).

use std::collections::BTreeMap;
use std::fmt;

use crate::faults::{FaultKind, FaultSet};

/// Aggregated weight statistics of a fault set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionReport {
    /// `(family name, count, total weight)` per fault family.
    pub by_family: Vec<(String, usize, f64)>,
    /// `(layer mnemonic, count, total weight)` per originating layer, as
    /// recorded in the fault labels.
    pub by_layer: Vec<(String, usize, f64)>,
    /// Total weight of the set.
    pub total_weight: f64,
    /// Bridge-family share of the weight, in `[0, 1]`.
    pub bridge_share: f64,
}

impl ExtractionReport {
    /// Builds the report for a fault set.
    pub fn new(faults: &FaultSet) -> Self {
        let mut by_family: BTreeMap<&'static str, (usize, f64)> = BTreeMap::new();
        let mut by_layer: BTreeMap<String, (usize, f64)> = BTreeMap::new();
        let mut total = 0.0;
        for f in faults.faults() {
            let family = match f.kind {
                FaultKind::Bridge { .. } => "bridge",
                FaultKind::Break { .. } => "break",
                FaultKind::StuckOpen { .. } => "stuck-open",
                FaultKind::StuckOn { .. } => "stuck-on",
            };
            let e = by_family.entry(family).or_default();
            e.0 += 1;
            e.1 += f.weight;
            // Labels are "<kind>:<layer-or-site>:..."; the second field is
            // the layer mnemonic for geometric faults.
            let layer = f.label.split(':').nth(1).unwrap_or("?").to_string();
            let e = by_layer.entry(layer).or_default();
            e.0 += 1;
            e.1 += f.weight;
            total += f.weight;
        }
        let bridge_total = faults.bridge_weight();
        ExtractionReport {
            by_family: by_family
                .into_iter()
                .map(|(k, (n, w))| (k.to_string(), n, w))
                .collect(),
            by_layer: by_layer.into_iter().map(|(k, (n, w))| (k, n, w)).collect(),
            total_weight: total,
            bridge_share: if total > 0.0 {
                bridge_total / (faults.bridge_weight() + faults.open_weight())
            } else {
                0.0
            },
        }
    }
}

impl fmt::Display for ExtractionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "extraction report (total weight {:.4e})",
            self.total_weight
        )?;
        writeln!(f, "  by family:")?;
        for (name, n, w) in &self.by_family {
            writeln!(
                f,
                "    {name:11} n={n:6}  w={w:.4e}  ({:5.1} %)",
                100.0 * w / self.total_weight.max(1e-300)
            )?;
        }
        writeln!(f, "  by layer/site:")?;
        for (name, n, w) in &self.by_layer {
            writeln!(
                f,
                "    {name:11} n={n:6}  w={w:.4e}  ({:5.1} %)",
                100.0 * w / self.total_weight.max(1e-300)
            )?;
        }
        write!(
            f,
            "  bridge share of weight: {:.1} %",
            100.0 * self.bridge_share
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defects::DefectStatistics;
    use crate::extractor;
    use dlp_circuit::generators;
    use dlp_layout::chip::ChipLayout;

    #[test]
    fn report_sums_match_fault_set() {
        let chip = ChipLayout::generate(&generators::c17(), &Default::default()).unwrap();
        let faults = extractor::extract(&chip, &DefectStatistics::maly_cmos()).unwrap();
        let report = ExtractionReport::new(&faults);
        let family_total: f64 = report.by_family.iter().map(|(_, _, w)| w).sum();
        let layer_total: f64 = report.by_layer.iter().map(|(_, _, w)| w).sum();
        let direct: f64 = faults.weights().iter().sum();
        assert!((family_total - direct).abs() < 1e-12);
        assert!((layer_total - direct).abs() < 1e-12);
        let family_count: usize = report.by_family.iter().map(|(_, n, _)| n).sum();
        assert_eq!(family_count, faults.len());
    }

    #[test]
    fn display_is_complete() {
        let chip = ChipLayout::generate(&generators::c17(), &Default::default()).unwrap();
        let faults = extractor::extract(&chip, &DefectStatistics::maly_cmos()).unwrap();
        let text = ExtractionReport::new(&faults).to_string();
        for needle in ["bridge", "break", "by layer", "bridge share"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn empty_set_is_safe() {
        let report = ExtractionReport::new(&FaultSet::new(Vec::new()));
        assert_eq!(report.total_weight, 0.0);
        assert_eq!(report.bridge_share, 0.0);
        let _ = report.to_string();
    }
}
