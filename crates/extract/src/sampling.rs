//! Monte Carlo defect injection — a statistical cross-check of the
//! critical-area analysis.
//!
//! The analytic extractor computes each fault's weight as
//! `w = Σ_x A_crit(x)·D(x)`. This module goes the other way: it throws
//! physical defects at the layout (class by density, position uniform over
//! the die, size from the `1/x³` law) and asks the *geometry* which fault
//! each one causes. Empirical fault frequencies must converge to the
//! analytic weights — if they do not, one of the two engines is wrong.
//!
//! Only bridge-class defects are sampled (extra material on conductor
//! layers): they dominate the weight, and their geometry test (a square
//! touching two identities) is exact, making them the sharpest
//! cross-check.
//!
//! What the comparison shows — and the tests assert — is the *relationship*
//! between the two engines, not equality: pairwise critical areas (here as
//! in Stapper's classic formulation and the paper's `lift`) ignore
//! **third-conductor shadowing**, so a pair's analytic weight is an upper
//! bound on its physical bridge rate; a defect wide enough to span two
//! distant nets in reality lands on whatever lies between them first
//! (usually a rail). Sampling therefore (a) never produces a two-net
//! bridge the extractor missed, and (b) concentrates large-defect mass on
//! net-to-rail pairs.

use std::collections::HashMap;

use dlp_geometry::{Coord, Layer, Rect};
use dlp_layout::chip::{ChipLayout, ElecNet, ElecRole};

use crate::defects::{DefectStatistics, Mechanism};
use crate::ExtractError;

/// A sampled extra-material defect and its electrical consequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampledOutcome {
    /// The defect touched fewer than two distinct identities: harmless.
    Benign,
    /// The defect bridged exactly these two nets (rails count as nets for
    /// the purpose of the comparison key).
    Bridge(String, String),
    /// The defect touched three or more identities at once (a multi-net
    /// short — rare, counted separately).
    MultiBridge(usize),
}

/// Aggregate of a sampling run.
#[derive(Debug, Clone)]
pub struct SamplingReport {
    /// Defects thrown.
    pub thrown: usize,
    /// Defects that caused any bridge.
    pub bridging: usize,
    /// Two-net bridge counts keyed by a canonical `a|b` label.
    pub pair_counts: HashMap<String, usize>,
    /// Defects shorting three or more identities.
    pub multi: usize,
}

fn identity_label(chip: &ChipLayout, role: &ElecRole) -> Option<String> {
    match role {
        ElecRole::Net(ElecNet::Signal(n)) => Some(chip.netlist().node_name(*n).to_string()),
        ElecRole::Net(ElecNet::Stage(g, s)) => {
            Some(format!("{}#s{s}", chip.netlist().node_name(*g)))
        }
        ElecRole::Vdd => Some("vdd".to_string()),
        ElecRole::Gnd => Some("gnd".to_string()),
        ElecRole::StageDiff { .. } => None, // different layers anyway
    }
}

/// Throws `count` extra-material defects on `layer` and classifies each by
/// exact geometry. Deterministic in `seed`.
///
/// # Errors
///
/// [`ExtractError::NoExtraMaterialClass`] if the statistics have no
/// extra-material class for `layer`;
/// [`ExtractError::BadDefectStatistics`] if that class is unusable.
///
/// # Example
///
/// ```
/// use dlp_circuit::generators;
/// use dlp_extract::{defects::DefectStatistics, sampling};
/// use dlp_geometry::Layer;
/// use dlp_layout::chip::ChipLayout;
///
/// let chip = ChipLayout::generate(&generators::c17(), &Default::default())?;
/// let report = sampling::throw_defects(
///     &chip, &DefectStatistics::maly_cmos(), Layer::Metal1, 2_000, 7,
/// )?;
/// assert_eq!(report.thrown, 2_000);
/// assert!(report.bridging > 0, "some defects must land between nets");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn throw_defects(
    chip: &ChipLayout,
    stats: &DefectStatistics,
    layer: Layer,
    count: usize,
    seed: u64,
) -> Result<SamplingReport, ExtractError> {
    let class = stats
        .classes()
        .iter()
        .find(|c| c.layer == layer && c.mechanism == Mechanism::ExtraMaterial)
        .ok_or(ExtractError::NoExtraMaterialClass(layer))?;
    class.validate()?;

    // Inverse-CDF sampling of the 1/x^3 law on [x_min, x_max]:
    // F(x) = (1/x_min^2 - 1/x^2) / (1/x_min^2 - 1/x_max^2).
    let (a, b) = (class.x_min as f64, class.x_max as f64);
    let inv_cdf = |u: f64| -> f64 {
        let ia = 1.0 / (a * a);
        let ib = 1.0 / (b * b);
        let inv = ia - u * (ia - ib);
        (1.0 / inv).sqrt()
    };

    let mut state = seed | 1;
    let mut unit = move || -> f64 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };

    let shapes: Vec<(&Rect, String)> = chip
        .shapes()
        .iter()
        .filter(|s| s.layer == layer)
        .filter_map(|s| identity_label(chip, &s.role).map(|l| (&s.rect, l)))
        .collect();
    let bbox = chip.bbox();

    let mut pair_counts: HashMap<String, usize> = HashMap::new();
    let mut bridging = 0usize;
    let mut multi = 0usize;
    for _ in 0..count {
        let x = inv_cdf(unit()).round().max(1.0) as Coord;
        let cx = bbox.x0() + (unit() * bbox.width() as f64) as Coord;
        let cy = bbox.y0() + (unit() * bbox.height() as f64) as Coord;
        let defect = Rect::new(cx - x / 2, cy - x / 2, cx + (x - x / 2), cy + (x - x / 2));

        let mut touched: Vec<&str> = Vec::new();
        for (rect, label) in &shapes {
            if rect.touches(&defect) && !touched.contains(&label.as_str()) {
                touched.push(label.as_str());
            }
        }
        match touched.len() {
            0 | 1 => {}
            2 => {
                bridging += 1;
                let (p, q) = if touched[0] <= touched[1] {
                    (touched[0], touched[1])
                } else {
                    (touched[1], touched[0])
                };
                *pair_counts.entry(format!("{p}|{q}")).or_default() += 1;
            }
            n => {
                bridging += 1;
                multi += 1;
                let _ = n;
            }
        }
    }
    Ok(SamplingReport {
        thrown: count,
        bridging,
        pair_counts,
        multi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extractor;
    use crate::faults::FaultKind;
    use dlp_circuit::generators;

    #[test]
    fn missing_class_is_a_typed_error() {
        let chip = ChipLayout::generate(&generators::c17(), &Default::default()).unwrap();
        let err = throw_defects(
            &chip,
            &DefectStatistics::new(vec![]),
            Layer::Metal1,
            100,
            3,
        )
        .unwrap_err();
        assert!(matches!(err, ExtractError::NoExtraMaterialClass(_)), "{err}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let chip = ChipLayout::generate(&generators::c17(), &Default::default()).unwrap();
        let stats = DefectStatistics::maly_cmos();
        let a = throw_defects(&chip, &stats, Layer::Metal1, 500, 3).unwrap();
        let b = throw_defects(&chip, &stats, Layer::Metal1, 500, 3).unwrap();
        assert_eq!(a.pair_counts, b.pair_counts);
        assert_eq!(a.bridging, b.bridging);
    }

    #[test]
    fn most_defects_are_benign() {
        // Real dies are mostly empty space between nets — the defect
        // subsumption rate must be well below 50 %.
        let chip = ChipLayout::generate(&generators::c17(), &Default::default()).unwrap();
        let report = throw_defects(
            &chip,
            &DefectStatistics::maly_cmos(),
            Layer::Metal1,
            4_000,
            11,
        )
        .unwrap();
        assert!(
            report.bridging * 2 < report.thrown,
            "{} bridge",
            report.bridging
        );
        assert!(report.bridging > 0);
    }

    #[test]
    fn extraction_is_complete_and_conservative() {
        // (a) Completeness: every sampled two-net bridge exists in the
        //     analytic fault list. (b) Conservatism: per pair, the
        //     analytic weight predicts at least as many hits as sampled
        //     (pairwise critical area ignores shadowing, so it can only
        //     overestimate), within Poisson slack.
        let chip = ChipLayout::generate(&generators::c17(), &Default::default()).unwrap();
        let stats = DefectStatistics::maly_cmos();
        let faults = extractor::extract(&chip, &stats).unwrap();
        let mut analytic: HashMap<String, f64> = HashMap::new();
        for f in faults.faults() {
            if let FaultKind::Bridge { .. } = f.kind {
                if let Some(rest) = f.label.strip_prefix("br:m1:") {
                    let mut parts: Vec<&str> = rest.split(':').collect();
                    if parts.len() == 2 {
                        parts.sort();
                        *analytic
                            .entry(format!("{}|{}", parts[0], parts[1]))
                            .or_default() += f.weight;
                    }
                }
            }
        }
        let thrown = 60_000usize;
        let report = throw_defects(&chip, &stats, Layer::Metal1, thrown, 1994).unwrap();

        // Expected-hit conversion: analytic weight w (defects/die at
        // density D per 1e6 λ²) over the m1 ExtraMaterial density and die
        // area gives the per-throw probability.
        let density = stats
            .classes()
            .iter()
            .find(|c| {
                c.layer == Layer::Metal1 && c.mechanism == crate::defects::Mechanism::ExtraMaterial
            })
            .unwrap()
            .density;
        let area = chip.bbox().area() as f64;
        for (pair, hits) in &report.pair_counts {
            let w = analytic
                .get(pair)
                .copied()
                .unwrap_or_else(|| panic!("sampler found pair {pair} the extractor missed"));
            let expected = w * 1e6 / density * thrown as f64 / area;
            // Conservatism with 5-sigma Poisson slack.
            assert!(
                (*hits as f64) <= expected + 5.0 * expected.sqrt() + 5.0,
                "pair {pair}: sampled {hits} exceeds analytic expectation {expected:.1}"
            );
        }
        assert!(
            report.bridging > 20,
            "need statistics: {} bridges",
            report.bridging
        );
    }
}
