//! Critical-area weight distribution onto stuck-at fault universes —
//! the scale path from one extracted layout to millions of weighted
//! gate-level faults.
//!
//! The figure pipeline carries realistic faults end to end: extraction
//! produces a [`FaultSet`] and the switch-level simulator measures
//! `θ(k)` directly on it. That representation is monolithic — every
//! fault owns a heap label and the switch netlist must hold the whole
//! circuit — and stops scaling long before 10^6 faults. This module
//! provides the streaming alternative used by the `scale_sweep` bench:
//!
//! * [`stuck_at_weights`] projects an extracted fault set onto the
//!   circuit's collapsed stuck-at list, giving each gate-level fault
//!   the critical-area weight of the net it lives on. `θ(k)` then
//!   comes from the PPSFP record alone — no switch-level pass, no
//!   per-fault labels.
//! * [`TiledWeights`] replicates one laid-out template tile's weight
//!   profile across `n` identical instances: extraction runs once on
//!   the template, and each instance fault inherits its structural
//!   counterpart's weight through a caller-supplied site map. Peak
//!   memory is the template's, independent of `n`.
//!
//! Both are documented approximations (see `DESIGN.md` §13): a bridge
//! between two nets becomes weight on *both* nets' stuck-at faults
//! rather than a dedicated bridge fault, and a tiled chip's routing
//! context is assumed tile-local. What is preserved is the paper's
//! load-bearing structure — a heavy-tailed, layout-derived weight
//! distribution over a simulable fault universe.

use dlp_circuit::{Netlist, NodeId};
use dlp_layout::chip::ElecNet;
use dlp_sim::stuck_at::{FaultSite, StuckAtFault};

use crate::faults::{FaultKind, FaultSet};
use crate::ExtractError;

/// The node that owns an electrical net's signal: the driving gate.
fn net_node(net: &ElecNet) -> NodeId {
    match net {
        ElecNet::Signal(n) => *n,
        // Stage-internal nets belong to their cell; their defects land
        // on the owning gate's signal for weighting purposes.
        ElecNet::Stage(g, _) => *g,
    }
}

/// Attributes every extracted fault's weight to the netlist nodes whose
/// signals the defect touches: a two-net bridge splits evenly, a rail
/// bridge / break / device fault lands on its single net.
fn node_weights(netlist: &Netlist, set: &FaultSet) -> Vec<f64> {
    let mut w = vec![0.0f64; netlist.node_count()];
    let mut add = |n: NodeId, v: f64| {
        if let Some(slot) = w.get_mut(n.index()) {
            *slot += v;
        }
    };
    for f in set.faults() {
        match &f.kind {
            FaultKind::Bridge { a, b: Some(b), .. } => {
                add(net_node(a), f.weight / 2.0);
                add(net_node(b), f.weight / 2.0);
            }
            FaultKind::Bridge { a, b: None, .. } => add(net_node(a), f.weight),
            FaultKind::Break { net, .. } => add(net_node(net), f.weight),
            FaultKind::StuckOpen { owner, .. } | FaultKind::StuckOn { owner, .. } => {
                add(*owner, f.weight)
            }
        }
    }
    w
}

/// The net a stuck-at fault lives on: a stem fault is on its own node's
/// output net; a branch fault is on the *source* net feeding that pin.
fn site_node(netlist: &Netlist, site: &StuckAtFault) -> Result<NodeId, ExtractError> {
    match site.site {
        FaultSite::Stem(n) if n.index() < netlist.node_count() => Ok(n),
        FaultSite::Branch { gate, pin } if gate.index() < netlist.node_count() => netlist
            .fanin(gate)
            .get(pin)
            .copied()
            .ok_or(ExtractError::StuckAtSiteOutOfRange { gate: gate.index() }),
        FaultSite::Stem(n) => Err(ExtractError::StuckAtSiteOutOfRange { gate: n.index() }),
        FaultSite::Branch { gate, .. } => {
            Err(ExtractError::StuckAtSiteOutOfRange { gate: gate.index() })
        }
    }
}

/// Projects an extracted fault set onto a stuck-at fault list: each
/// stuck-at fault's weight is its net's attributed critical-area
/// weight, split evenly among the stuck-at faults sharing that net.
///
/// Nets the extractor saw no defect on yield zero-weight faults (they
/// dilute nothing: `θ` is weight-normalised). The returned vector is
/// index-aligned with `sites` and sums to the fault set's total weight
/// (up to rounding) whenever every net with weight carries at least one
/// site.
///
/// # Errors
///
/// [`ExtractError::StuckAtSiteOutOfRange`] if a site references a node
/// or pin outside `netlist` — the site list must come from this
/// netlist's own enumeration.
pub fn stuck_at_weights(
    netlist: &Netlist,
    set: &FaultSet,
    sites: &[StuckAtFault],
) -> Result<Vec<f64>, ExtractError> {
    let node_w = node_weights(netlist, set);
    let mut sites_on = vec![0usize; netlist.node_count()];
    let mut nodes = Vec::with_capacity(sites.len());
    for s in sites {
        let n = site_node(netlist, s)?;
        sites_on[n.index()] += 1;
        nodes.push(n);
    }
    Ok(nodes
        .into_iter()
        .map(|n| node_w[n.index()] / sites_on[n.index()] as f64)
        .collect())
}

/// One template tile's weight profile, replicable across any number of
/// structurally identical instances.
///
/// Built from a *template* netlist (one tile laid out and extracted on
/// its own) and the template's collapsed stuck-at list; expanded onto a
/// full tiled circuit through a site map taking each full-circuit node
/// to its template counterpart. Sites outside every tile (shared
/// primary inputs, fold logic) take the template's average per-fault
/// weight — the documented approximation for logic the template cannot
/// see.
#[derive(Debug, Clone)]
pub struct TiledWeights {
    node_weight: Vec<f64>,
    node_sites: Vec<usize>,
    default_per_fault: f64,
}

impl TiledWeights {
    /// Builds the profile from the template's extraction and its own
    /// collapsed stuck-at enumeration.
    ///
    /// # Errors
    ///
    /// [`ExtractError::StuckAtSiteOutOfRange`] if a template site falls
    /// outside the template netlist; [`ExtractError::EmptyTemplate`] if
    /// `template_sites` is empty (an average weight would be undefined).
    pub fn new(
        template: &Netlist,
        extracted: &FaultSet,
        template_sites: &[StuckAtFault],
    ) -> Result<TiledWeights, ExtractError> {
        if template_sites.is_empty() {
            return Err(ExtractError::EmptyTemplate);
        }
        let node_weight = node_weights(template, extracted);
        let mut node_sites = vec![0usize; template.node_count()];
        for s in template_sites {
            node_sites[site_node(template, s)?.index()] += 1;
        }
        let total: f64 = node_weight.iter().sum();
        Ok(TiledWeights {
            node_weight,
            node_sites,
            default_per_fault: total / template_sites.len() as f64,
        })
    }

    /// Per-fault weight for a site mapping to `template_node` (`None`
    /// for out-of-tile sites).
    pub fn weight_for(&self, template_node: Option<NodeId>) -> f64 {
        match template_node {
            Some(n) if self.node_sites.get(n.index()).copied().unwrap_or(0) > 0 => {
                self.node_weight[n.index()] / self.node_sites[n.index()] as f64
            }
            _ => self.default_per_fault,
        }
    }

    /// Expands the profile onto a full circuit's stuck-at list: each
    /// site's net node goes through `map` and inherits its template
    /// counterpart's per-fault weight.
    ///
    /// Expanding the template onto itself with the identity map
    /// reproduces [`stuck_at_weights`] for every net the extractor
    /// weighted (the invariant `tiled_weights_match_direct_distribution`
    /// tests).
    ///
    /// # Errors
    ///
    /// [`ExtractError::StuckAtSiteOutOfRange`] if a site falls outside
    /// `netlist`.
    pub fn expand(
        &self,
        netlist: &Netlist,
        sites: &[StuckAtFault],
        map: impl Fn(NodeId) -> Option<NodeId>,
    ) -> Result<Vec<f64>, ExtractError> {
        sites
            .iter()
            .map(|s| Ok(self.weight_for(map(site_node(netlist, s)?))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defects::DefectStatistics;
    use crate::extractor;
    use dlp_circuit::generators;
    use dlp_layout::chip::ChipLayout;
    use dlp_sim::stuck_at;

    fn c17_setup() -> (Netlist, FaultSet, Vec<StuckAtFault>) {
        let nl = generators::c17();
        let chip = ChipLayout::generate(&nl, &Default::default()).unwrap();
        let set = extractor::extract(&chip, &DefectStatistics::maly_cmos()).unwrap();
        let sites = stuck_at::enumerate(&nl).collapse().faults().to_vec();
        (nl, set, sites)
    }

    #[test]
    fn weights_are_conserved_and_nonnegative() {
        let (nl, set, sites) = c17_setup();
        let w = stuck_at_weights(&nl, &set, &sites).unwrap();
        assert_eq!(w.len(), sites.len());
        assert!(w.iter().all(|&x| x >= 0.0 && x.is_finite()));
        // c17 is tiny and fully enumerated: every node carries at least
        // one collapsed site, so distribution conserves total weight.
        let total: f64 = set.weights().iter().sum();
        let distributed: f64 = w.iter().sum();
        assert!(
            (total - distributed).abs() < 1e-9 * total.max(1.0),
            "total {total} vs distributed {distributed}"
        );
        assert!(distributed > 0.0);
    }

    #[test]
    fn branch_faults_inherit_their_source_net() {
        let (nl, set, _) = c17_setup();
        // A stem fault and a branch fault on the same net, alone on it,
        // split that net's weight evenly.
        let node = nl.node_ids().find(|&n| !nl.fanout(n).is_empty()).unwrap();
        let sink = nl.fanout(node)[0];
        let pin = nl.fanin(sink).iter().position(|&f| f == node).unwrap();
        let sites = [
            StuckAtFault {
                site: FaultSite::Stem(node),
                stuck_at_one: false,
            },
            StuckAtFault {
                site: FaultSite::Branch { gate: sink, pin },
                stuck_at_one: true,
            },
        ];
        let w = stuck_at_weights(&nl, &set, &sites).unwrap();
        assert_eq!(w[0], w[1], "same net, even split");
    }

    #[test]
    fn out_of_range_sites_are_typed_errors() {
        let (nl, set, _) = c17_setup();
        let beyond = NodeId::from_index(nl.node_count());
        for site in [
            FaultSite::Stem(beyond),
            FaultSite::Branch {
                gate: beyond,
                pin: 0,
            },
            FaultSite::Branch {
                gate: NodeId::from_index(nl.node_count() - 1),
                pin: 99,
            },
        ] {
            let bad = [StuckAtFault {
                site,
                stuck_at_one: false,
            }];
            assert!(matches!(
                stuck_at_weights(&nl, &set, &bad),
                Err(ExtractError::StuckAtSiteOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn tiled_weights_match_direct_distribution() {
        // Expanding the template profile onto the template itself with
        // the identity map must reproduce the direct distribution.
        let (nl, set, sites) = c17_setup();
        let direct = stuck_at_weights(&nl, &set, &sites).unwrap();
        let tiled = TiledWeights::new(&nl, &set, &sites).unwrap();
        let expanded = tiled.expand(&nl, &sites, Some).unwrap();
        for (i, (a, b)) in direct.iter().zip(&expanded).enumerate() {
            assert!(
                (a - b).abs() < 1e-12,
                "site {i}: direct {a} vs expanded {b}"
            );
        }
    }

    #[test]
    fn unmapped_sites_take_the_average_weight() {
        let (nl, set, sites) = c17_setup();
        let tiled = TiledWeights::new(&nl, &set, &sites).unwrap();
        let everything_unmapped = tiled.expand(&nl, &sites, |_| None).unwrap();
        let total: f64 = set.weights().iter().sum();
        let avg = total / sites.len() as f64;
        assert!(everything_unmapped.iter().all(|&w| (w - avg).abs() < 1e-12));
    }

    #[test]
    fn empty_template_site_list_is_rejected() {
        let (nl, set, _) = c17_setup();
        assert!(matches!(
            TiledWeights::new(&nl, &set, &[]),
            Err(ExtractError::EmptyTemplate)
        ));
    }
}
