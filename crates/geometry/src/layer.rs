/// Mask layers of a generic 2-metal CMOS process.
///
/// The set mirrors what the paper's experimental vehicle used: a 2-metal
/// CMOS standard-cell layout. Conductor layers carry signal nets and are the
/// ones the fault extractor analyses for bridges and opens; the remaining
/// layers shape devices.
///
/// # Example
///
/// ```
/// use dlp_geometry::Layer;
///
/// assert!(Layer::Metal1.is_conductor());
/// assert!(!Layer::Nwell.is_conductor());
/// assert_eq!(Layer::ALL.len(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// N-well (PMOS bulk).
    Nwell,
    /// Active (diffusion) area, N-type.
    Ndiff,
    /// Active (diffusion) area, P-type.
    Pdiff,
    /// Polysilicon (gates and short local interconnect).
    Poly,
    /// Contact cut between metal1 and poly/diffusion.
    Contact,
    /// First-level metal.
    Metal1,
    /// Via cut between metal1 and metal2.
    Via,
    /// Second-level metal.
    Metal2,
    /// Gate oxide marker (thin oxide under poly over active); used only for
    /// pinhole-defect extraction.
    GateOxide,
}

/// Broad electrical role of a layer, used to pick defect mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LayerClass {
    /// Routes signal nets: poly, diffusion, metal1, metal2.
    Conductor,
    /// Vertical connection cut: contact, via.
    Cut,
    /// Device-forming layer: wells, gate oxide.
    Device,
}

impl Layer {
    /// All layers in a fixed, deterministic order.
    pub const ALL: [Layer; 9] = [
        Layer::Nwell,
        Layer::Ndiff,
        Layer::Pdiff,
        Layer::Poly,
        Layer::Contact,
        Layer::Metal1,
        Layer::Via,
        Layer::Metal2,
        Layer::GateOxide,
    ];

    /// The conductor layers, on which shorts and opens are extracted.
    pub const CONDUCTORS: [Layer; 4] = [Layer::Ndiff, Layer::Poly, Layer::Metal1, Layer::Metal2];

    /// Broad electrical role of this layer.
    pub const fn class(self) -> LayerClass {
        match self {
            Layer::Ndiff | Layer::Pdiff | Layer::Poly | Layer::Metal1 | Layer::Metal2 => {
                LayerClass::Conductor
            }
            Layer::Contact | Layer::Via => LayerClass::Cut,
            Layer::Nwell | Layer::GateOxide => LayerClass::Device,
        }
    }

    /// True if the layer routes signal nets.
    pub const fn is_conductor(self) -> bool {
        matches!(self.class(), LayerClass::Conductor)
    }

    /// True if the layer is a contact/via cut.
    pub const fn is_cut(self) -> bool {
        matches!(self.class(), LayerClass::Cut)
    }

    /// Short lowercase mnemonic, stable across versions (used in fault
    /// identifiers and reports).
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Layer::Nwell => "nw",
            Layer::Ndiff => "nd",
            Layer::Pdiff => "pd",
            Layer::Poly => "po",
            Layer::Contact => "co",
            Layer::Metal1 => "m1",
            Layer::Via => "vi",
            Layer::Metal2 => "m2",
            Layer::GateOxide => "ox",
        }
    }

    /// Index of this layer within [`Layer::ALL`] (dense, for table lookups).
    pub const fn index(self) -> usize {
        match self {
            Layer::Nwell => 0,
            Layer::Ndiff => 1,
            Layer::Pdiff => 2,
            Layer::Poly => 3,
            Layer::Contact => 4,
            Layer::Metal1 => 5,
            Layer::Via => 6,
            Layer::Metal2 => 7,
            Layer::GateOxide => 8,
        }
    }
}

impl core::fmt::Display for Layer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_layers_have_unique_mnemonics() {
        let mut seen = std::collections::BTreeSet::new();
        for l in Layer::ALL {
            assert!(seen.insert(l.mnemonic()), "duplicate mnemonic {}", l);
        }
    }

    #[test]
    fn index_round_trips() {
        for (i, l) in Layer::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn conductor_classification() {
        for l in Layer::CONDUCTORS {
            assert!(l.is_conductor());
        }
        assert!(Layer::Pdiff.is_conductor());
        assert!(Layer::Contact.is_cut());
        assert!(Layer::Via.is_cut());
        assert_eq!(Layer::Nwell.class(), LayerClass::Device);
        assert_eq!(Layer::GateOxide.class(), LayerClass::Device);
    }

    #[test]
    fn display_uses_mnemonic() {
        assert_eq!(Layer::Metal2.to_string(), "m2");
    }
}
