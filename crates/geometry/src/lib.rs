//! Manhattan geometry substrate for IC layout processing.
//!
//! This crate provides the low-level geometric machinery used by the layout
//! generator ([`dlp-layout`]) and the layout fault extractor ([`dlp-extract`]):
//!
//! * [`Point`] and [`Rect`] — integer-coordinate primitives in database
//!   units (a technology decides how many database units make one λ),
//! * [`Layer`] — the mask layers of a generic 2-metal CMOS process,
//! * [`Region`] — a bag of rectangles on a single layer with Boolean-ish
//!   operations (dilation, union area, pairwise interaction area),
//! * [`sweep`] — scanline algorithms for exact union area of rectangle sets.
//!
//! All coordinates are `i64` database units; areas are returned as `i64`
//! (square database units) or `f64` where integration demands it. Integer
//! coordinates keep the geometry exactly representable and hashable, which
//! the extractor relies on for deterministic fault identities.
//!
//! # Example
//!
//! ```
//! use dlp_geometry::{Rect, Region, Layer};
//!
//! let mut m1 = Region::new(Layer::Metal1);
//! m1.push(Rect::new(0, 0, 100, 4));   // a horizontal wire, 4 units wide
//! m1.push(Rect::new(0, 10, 100, 14)); // a parallel wire 6 units away
//! assert_eq!(m1.area(), 2 * 100 * 4);
//! ```
//!
//! [`dlp-layout`]: https://example.invalid/dlp
//! [`dlp-extract`]: https://example.invalid/dlp

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layer;
mod point;
mod rect;
mod region;
pub mod sweep;
#[cfg(test)]
pub(crate) mod test_rng;

pub use layer::{Layer, LayerClass};
pub use point::Point;
pub use rect::Rect;
pub use region::Region;

/// Coordinate type used throughout the geometry crate: database units.
///
/// A [`Technology`](https://example.invalid) in `dlp-layout` maps database
/// units to λ (typically 2 database units per λ so half-λ rules stay
/// integral).
pub type Coord = i64;
