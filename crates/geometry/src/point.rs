use crate::Coord;

/// A point in the layout plane, in database units.
///
/// `Point` is a plain value type: cheap to copy, ordered lexicographically
/// (`x` first, then `y`) so collections of points sort deterministically.
///
/// # Example
///
/// ```
/// use dlp_geometry::Point;
///
/// let a = Point::new(3, 4);
/// let b = a.translated(1, -2);
/// assert_eq!(b, Point::new(4, 2));
/// assert_eq!(a.manhattan_distance(b), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Horizontal coordinate in database units.
    pub x: Coord,
    /// Vertical coordinate in database units.
    pub y: Coord,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Returns this point moved by `(dx, dy)`.
    #[inline]
    #[must_use]
    pub const fn translated(self, dx: Coord, dy: Coord) -> Self {
        Point::new(self.x + dx, self.y + dy)
    }

    /// L1 (Manhattan) distance to `other`.
    #[inline]
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

impl core::fmt::Display for Point {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_zero() {
        assert_eq!(Point::ORIGIN, Point::new(0, 0));
        assert_eq!(Point::default(), Point::ORIGIN);
    }

    #[test]
    fn translation_composes() {
        let p = Point::new(5, -7).translated(2, 3).translated(-2, -3);
        assert_eq!(p, Point::new(5, -7));
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(1, 2);
        let b = Point::new(-4, 9);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(b), 5 + 7);
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Point::new(0, 100) < Point::new(1, -100));
        assert!(Point::new(1, 1) < Point::new(1, 2));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (3, 4).into();
        assert_eq!(p, Point::new(3, 4));
    }

    #[test]
    fn display_formats_as_pair() {
        assert_eq!(Point::new(-1, 2).to_string(), "(-1, 2)");
    }
}
