use crate::{Coord, Point};

/// An axis-aligned rectangle in database units.
///
/// The rectangle is half-open in spirit but stored as inclusive bounds on a
/// continuous plane: it spans `x0..x1` × `y0..y1` with `x0 <= x1` and
/// `y0 <= y1` (enforced by [`Rect::new`]). A rectangle with zero width or
/// height is *degenerate*: it has zero area but can still participate in
/// spacing queries.
///
/// # Example
///
/// ```
/// use dlp_geometry::Rect;
///
/// let wire = Rect::new(0, 0, 100, 4);
/// assert_eq!(wire.width(), 100);
/// assert_eq!(wire.height(), 4);
/// assert_eq!(wire.area(), 400);
/// let fat = wire.dilated(1);
/// assert_eq!(fat, Rect::new(-1, -1, 101, 5));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rect {
    x0: Coord,
    y0: Coord,
    x1: Coord,
    y1: Coord,
}

impl Rect {
    /// Creates a rectangle spanning `min(x0,x1)..max(x0,x1)` ×
    /// `min(y0,y1)..max(y0,y1)`. Corner order does not matter.
    #[inline]
    pub fn new(x0: Coord, y0: Coord, x1: Coord, y1: Coord) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Creates a rectangle from two opposite corner points.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x, a.y, b.x, b.y)
    }

    /// Creates a rectangle from its lower-left corner plus a size.
    ///
    /// # Panics
    ///
    /// Panics if `w < 0` or `h < 0`.
    #[inline]
    pub fn with_size(x: Coord, y: Coord, w: Coord, h: Coord) -> Self {
        assert!(w >= 0 && h >= 0, "rectangle size must be non-negative");
        Rect::new(x, y, x + w, y + h)
    }

    /// Left edge.
    #[inline]
    pub const fn x0(&self) -> Coord {
        self.x0
    }

    /// Bottom edge.
    #[inline]
    pub const fn y0(&self) -> Coord {
        self.y0
    }

    /// Right edge.
    #[inline]
    pub const fn x1(&self) -> Coord {
        self.x1
    }

    /// Top edge.
    #[inline]
    pub const fn y1(&self) -> Coord {
        self.y1
    }

    /// Lower-left corner.
    #[inline]
    pub const fn lower_left(&self) -> Point {
        Point::new(self.x0, self.y0)
    }

    /// Upper-right corner.
    #[inline]
    pub const fn upper_right(&self) -> Point {
        Point::new(self.x1, self.y1)
    }

    /// Horizontal extent.
    #[inline]
    pub const fn width(&self) -> Coord {
        self.x1 - self.x0
    }

    /// Vertical extent.
    #[inline]
    pub const fn height(&self) -> Coord {
        self.y1 - self.y0
    }

    /// The smaller of width and height — the "wire width" of a segment.
    #[inline]
    pub fn short_side(&self) -> Coord {
        self.width().min(self.height())
    }

    /// The larger of width and height — the "wire length" of a segment.
    #[inline]
    pub fn long_side(&self) -> Coord {
        self.width().max(self.height())
    }

    /// Area in square database units.
    #[inline]
    pub const fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Centre point, rounded toward the lower-left on odd spans.
    #[inline]
    pub const fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)
    }

    /// True if the rectangle has zero area (zero width and/or height).
    #[inline]
    pub const fn is_degenerate(&self) -> bool {
        self.x0 == self.x1 || self.y0 == self.y1
    }

    /// Returns this rectangle translated by `(dx, dy)`.
    #[inline]
    #[must_use]
    pub const fn translated(&self, dx: Coord, dy: Coord) -> Self {
        Rect {
            x0: self.x0 + dx,
            y0: self.y0 + dy,
            x1: self.x1 + dx,
            y1: self.y1 + dy,
        }
    }

    /// Returns this rectangle grown outward by `d` on every side (Minkowski
    /// sum with a `2d × 2d` square). A negative `d` shrinks the rectangle;
    /// shrinking past degeneracy collapses it onto its centre line rather
    /// than inverting.
    #[inline]
    #[must_use]
    pub fn dilated(&self, d: Coord) -> Self {
        let x0 = self.x0 - d;
        let x1 = self.x1 + d;
        let y0 = self.y0 - d;
        let y1 = self.y1 + d;
        if x0 > x1 || y0 > y1 {
            let c = self.center();
            let (x0, x1) = if x0 > x1 { (c.x, c.x) } else { (x0, x1) };
            let (y0, y1) = if y0 > y1 { (c.y, c.y) } else { (y0, y1) };
            Rect { x0, y0, x1, y1 }
        } else {
            Rect { x0, y0, x1, y1 }
        }
    }

    /// True if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.x0 <= p.x && p.x <= self.x1 && self.y0 <= p.y && p.y <= self.y1
    }

    /// True if `other` lies entirely inside or on the boundary of `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && other.x1 <= self.x1 && self.y0 <= other.y0 && other.y1 <= self.y1
    }

    /// True if the two rectangles share any point (boundaries included).
    #[inline]
    pub fn touches(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// True if the two rectangles share interior points (positive-area
    /// overlap).
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// The overlapping region, if the rectangles share any point.
    ///
    /// Degenerate (zero-area) intersections — shared edges or corners — are
    /// returned as degenerate rectangles.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.touches(other) {
            return None;
        }
        Some(Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        })
    }

    /// Smallest rectangle containing both inputs.
    #[inline]
    #[must_use]
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Minimum L∞ (Chebyshev) separation between the two rectangles: the
    /// smallest `d` such that dilating either rectangle by `d` makes them
    /// touch. Zero when they already touch or overlap.
    ///
    /// The L∞ metric matches the square-defect model used by the extractor:
    /// a square defect of side `x` shorts two shapes iff their L∞ separation
    /// is less than `x`.
    #[inline]
    pub fn linf_separation(&self, other: &Rect) -> Coord {
        let dx = (other.x0 - self.x1).max(self.x0 - other.x1).max(0);
        let dy = (other.y0 - self.y1).max(self.y0 - other.y1).max(0);
        dx.max(dy)
    }
}

impl core::fmt::Display for Rect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{},{} .. {},{}]", self.x0, self.y0, self.x1, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corner_order() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r, Rect::new(0, 5, 10, 20));
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 15);
    }

    #[test]
    fn with_size_matches_new() {
        assert_eq!(Rect::with_size(2, 3, 10, 4), Rect::new(2, 3, 12, 7));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn with_size_rejects_negative() {
        let _ = Rect::with_size(0, 0, -1, 5);
    }

    #[test]
    fn area_and_sides() {
        let r = Rect::new(0, 0, 8, 3);
        assert_eq!(r.area(), 24);
        assert_eq!(r.short_side(), 3);
        assert_eq!(r.long_side(), 8);
        assert!(!r.is_degenerate());
        assert!(Rect::new(0, 0, 0, 5).is_degenerate());
    }

    #[test]
    fn dilation_grows_every_side() {
        let r = Rect::new(0, 0, 4, 4).dilated(3);
        assert_eq!(r, Rect::new(-3, -3, 7, 7));
    }

    #[test]
    fn negative_dilation_collapses_gracefully() {
        let r = Rect::new(0, 0, 4, 10).dilated(-3);
        // Width 4 collapses to the centre line x=2; height shrinks to 4.
        assert_eq!(r, Rect::new(2, 3, 2, 7));
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn intersection_of_abutting_is_degenerate() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10);
        let i = a.intersection(&b).unwrap();
        assert!(i.is_degenerate());
        assert!(a.touches(&b));
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let a = Rect::new(0, 0, 1, 1);
        let b = Rect::new(5, 5, 6, 6);
        assert_eq!(a.intersection(&b), None);
    }

    #[test]
    fn linf_separation_basic() {
        let a = Rect::new(0, 0, 10, 4);
        let b = Rect::new(0, 10, 10, 14); // 6 above
        assert_eq!(a.linf_separation(&b), 6);
        let c = Rect::new(13, 10, 20, 14); // 3 right, 6 up -> Linf = 6
        assert_eq!(a.linf_separation(&c), 6);
        let d = Rect::new(5, 2, 6, 3); // contained
        assert_eq!(a.linf_separation(&d), 0);
    }

    #[test]
    fn linf_separation_matches_dilation() {
        // Dilating both rects by ceil(sep/2) must make them touch.
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(11, 0, 15, 4);
        let s = a.linf_separation(&b);
        assert_eq!(s, 7);
        assert!(a.dilated(4).touches(&b.dilated(4)));
        assert!(!a.dilated(3).touches(&b.dilated(3)));
    }

    #[test]
    fn contains_rect_and_points() {
        let big = Rect::new(0, 0, 10, 10);
        assert!(big.contains_rect(&Rect::new(2, 2, 8, 8)));
        assert!(big.contains_rect(&big));
        assert!(!big.contains_rect(&Rect::new(2, 2, 11, 8)));
        assert!(big.contains(Point::new(10, 10)));
        assert!(!big.contains(Point::new(10, 11)));
    }

    #[test]
    fn union_bbox_covers_both() {
        let a = Rect::new(0, 0, 1, 1);
        let b = Rect::new(5, -3, 6, 0);
        assert_eq!(a.union_bbox(&b), Rect::new(0, -3, 6, 1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rect::new(0, 0, 2, 3).to_string(), "[0,0 .. 2,3]");
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;

    /// Deterministic stream of rectangles (xorshift64* driven) replacing
    /// the former proptest strategies so the crate builds offline.
    fn rect_stream(seed: u64, count: usize) -> Vec<Rect> {
        let mut rng = crate::test_rng::TestRng::new(seed);
        (0..count)
            .map(|_| {
                let x = rng.range(-50, 50);
                let y = rng.range(-50, 50);
                let w = rng.range(0, 40);
                let h = rng.range(0, 40);
                Rect::with_size(x, y, w, h)
            })
            .collect()
    }

    /// Dilation by the L∞ separation makes two rectangles touch, and
    /// by one less never does — the exactness the critical-area
    /// engine's short model depends on.
    #[test]
    fn linf_separation_is_tight() {
        let rects_a = rect_stream(1, 300);
        let rects_b = rect_stream(2, 300);
        for (a, b) in rects_a.iter().zip(&rects_b) {
            let s = a.linf_separation(b);
            if s > 0 {
                // Split the dilation so the halves sum to s.
                let ha = s / 2;
                let hb = s - ha;
                assert!(a.dilated(ha).touches(&b.dilated(hb)), "{a} {b}");
                if s > 1 {
                    let ha = (s - 1) / 2;
                    let hb = (s - 1) - ha;
                    assert!(!a.dilated(ha).touches(&b.dilated(hb)), "{a} {b}");
                }
            } else {
                assert!(a.touches(b), "{a} {b}");
            }
        }
    }

    /// Intersection is commutative and contained in both operands.
    #[test]
    fn intersection_properties() {
        let rects_a = rect_stream(3, 300);
        let rects_b = rect_stream(4, 300);
        for (a, b) in rects_a.iter().zip(&rects_b) {
            assert_eq!(a.intersection(b), b.intersection(a));
            if let Some(i) = a.intersection(b) {
                assert!(a.contains_rect(&i));
                assert!(b.contains_rect(&i));
                assert!(i.area() <= a.area().min(b.area()));
            }
        }
    }

    /// Dilation distributes over translation.
    #[test]
    fn dilation_commutes_with_translation() {
        let mut rng = crate::test_rng::TestRng::new(5);
        for r in rect_stream(6, 300) {
            let d = rng.range(0, 10);
            let dx = rng.range(-20, 20);
            let dy = rng.range(-20, 20);
            assert_eq!(r.translated(dx, dy).dilated(d), r.dilated(d).translated(dx, dy));
        }
    }

    /// union_bbox is the smallest rectangle containing both.
    #[test]
    fn union_bbox_is_minimal() {
        let rects_a = rect_stream(7, 300);
        let rects_b = rect_stream(8, 300);
        for (a, b) in rects_a.iter().zip(&rects_b) {
            let u = a.union_bbox(b);
            assert!(u.contains_rect(a));
            assert!(u.contains_rect(b));
            // Shrinking any side loses one operand.
            if u.width() > 0 {
                let shrunk = Rect::new(u.x0() + 1, u.y0(), u.x1(), u.y1());
                assert!(!(shrunk.contains_rect(a) && shrunk.contains_rect(b)));
            }
        }
    }
}
