use crate::{sweep, Coord, Layer, Rect};

/// A collection of rectangles on one mask layer.
///
/// `Region` is the unit the layout generator emits per (net, layer) and the
/// unit the extractor consumes. It deliberately stays a *bag* of rectangles
/// (possibly overlapping) — union semantics are applied by the area queries,
/// so callers can push wire segments naively.
///
/// # Example
///
/// ```
/// use dlp_geometry::{Layer, Rect, Region};
///
/// let mut r = Region::new(Layer::Poly);
/// r.push(Rect::new(0, 0, 10, 2));
/// r.push(Rect::new(8, 0, 18, 2)); // overlaps the first by 2x2
/// assert_eq!(r.area(), 10 * 2 + 10 * 2 - 4);
/// assert_eq!(r.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    layer: Layer,
    rects: Vec<Rect>,
}

impl Region {
    /// Creates an empty region on `layer`.
    pub fn new(layer: Layer) -> Self {
        Region {
            layer,
            rects: Vec::new(),
        }
    }

    /// Creates a region on `layer` from an iterator of rectangles.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(layer: Layer, rects: I) -> Self {
        Region {
            layer,
            rects: rects.into_iter().collect(),
        }
    }

    /// The mask layer this region lives on.
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// Adds a rectangle. Degenerate rectangles are kept (they may mark
    /// pin locations) but contribute no area.
    pub fn push(&mut self, r: Rect) {
        self.rects.push(r);
    }

    /// The rectangles in insertion order.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of rectangles (not merged).
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// True if the region holds no rectangles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Exact union area of the region.
    pub fn area(&self) -> i64 {
        sweep::union_area(&self.rects)
    }

    /// Bounding box, or `None` for an empty region.
    pub fn bbox(&self) -> Option<Rect> {
        self.rects.iter().copied().reduce(|a, b| a.union_bbox(&b))
    }

    /// Returns a region with every rectangle dilated by `d`.
    ///
    /// Dilation by `x/2` turns "defect of size `x` centred here causes a
    /// short" into a plain intersection test — the core trick of critical
    /// area analysis.
    #[must_use]
    pub fn dilated(&self, d: Coord) -> Region {
        Region {
            layer: self.layer,
            rects: self.rects.iter().map(|r| r.dilated(d)).collect(),
        }
    }

    /// Returns this region translated by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: Coord, dy: Coord) -> Region {
        Region {
            layer: self.layer,
            rects: self.rects.iter().map(|r| r.translated(dx, dy)).collect(),
        }
    }

    /// Exact area of the overlap between two regions (union semantics on
    /// both sides). Layers need not match — the caller decides whether a
    /// cross-layer interaction is meaningful.
    pub fn overlap_area(&self, other: &Region) -> i64 {
        sweep::intersection_area(&self.rects, &other.rects)
    }

    /// Minimum L∞ separation to another region (0 if they touch/overlap),
    /// or `None` if either region is empty.
    pub fn linf_separation(&self, other: &Region) -> Option<Coord> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        let mut best = Coord::MAX;
        for a in &self.rects {
            for b in &other.rects {
                best = best.min(a.linf_separation(b));
                if best == 0 {
                    return Some(0);
                }
            }
        }
        Some(best)
    }

    /// True if any rectangle of `self` shares a point with any rectangle of
    /// `other` (electrical connectivity test on a single layer).
    pub fn touches(&self, other: &Region) -> bool {
        self.rects
            .iter()
            .any(|a| other.rects.iter().any(|b| a.touches(b)))
    }
}

impl Extend<Rect> for Region {
    fn extend<I: IntoIterator<Item = Rect>>(&mut self, iter: I) {
        self.rects.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Region {
    type Item = &'a Rect;
    type IntoIter = core::slice::Iter<'a, Rect>;

    fn into_iter(self) -> Self::IntoIter {
        self.rects.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(layer: Layer, rs: &[(i64, i64, i64, i64)]) -> Region {
        Region::from_rects(layer, rs.iter().map(|&(a, b, c, d)| Rect::new(a, b, c, d)))
    }

    #[test]
    fn empty_region_basics() {
        let r = Region::new(Layer::Metal1);
        assert!(r.is_empty());
        assert_eq!(r.area(), 0);
        assert_eq!(r.bbox(), None);
        assert_eq!(r.linf_separation(&r), None);
    }

    #[test]
    fn area_uses_union_semantics() {
        let r = region(Layer::Metal1, &[(0, 0, 10, 10), (0, 0, 10, 10)]);
        assert_eq!(r.area(), 100);
    }

    #[test]
    fn bbox_covers_all_rects() {
        let r = region(Layer::Poly, &[(0, 0, 1, 1), (10, -5, 12, 0)]);
        assert_eq!(r.bbox(), Some(Rect::new(0, -5, 12, 1)));
    }

    #[test]
    fn dilation_then_overlap_models_shorts() {
        // Two wires 6 apart; a defect of size 8 (dilate both by 4) bridges.
        let a = region(Layer::Metal1, &[(0, 0, 100, 4)]);
        let b = region(Layer::Metal1, &[(0, 10, 100, 14)]);
        assert_eq!(a.overlap_area(&b), 0);
        let ov = a.dilated(4).overlap_area(&b.dilated(4));
        // Bands: a grows to y in [-4,8], b to [6,18] -> overlap y in [6,8],
        // x in [-4,104]: 108 * 2.
        assert_eq!(ov, 216);
    }

    #[test]
    fn separation_between_regions() {
        let a = region(Layer::Metal1, &[(0, 0, 100, 4)]);
        let b = region(Layer::Metal1, &[(0, 10, 100, 14), (0, 30, 100, 34)]);
        assert_eq!(a.linf_separation(&b), Some(6));
        assert!(!a.touches(&b));
        let c = region(Layer::Metal1, &[(50, 4, 60, 10)]);
        assert!(a.touches(&c));
        assert_eq!(a.linf_separation(&c), Some(0));
    }

    #[test]
    fn translation_preserves_area() {
        let r = region(Layer::Metal2, &[(0, 0, 7, 3), (5, 0, 12, 3)]);
        assert_eq!(r.translated(100, -50).area(), r.area());
    }

    #[test]
    fn extend_and_iter() {
        let mut r = Region::new(Layer::Ndiff);
        r.extend([Rect::new(0, 0, 2, 2), Rect::new(3, 3, 4, 4)]);
        assert_eq!(r.len(), 2);
        let total: i64 = (&r).into_iter().map(Rect::area).sum();
        assert_eq!(total, 5);
    }
}
