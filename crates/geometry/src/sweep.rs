//! Scanline algorithms over rectangle sets.
//!
//! The extractor needs *exact* union areas (critical areas of dilated
//! shapes overlap heavily, so summing rectangle areas would overcount).
//! [`union_area`] implements the classic coordinate-compressed sweep:
//! O(n log n) events, O(n) strip accounting per event — plenty for the
//! tens of thousands of rectangles a standard-cell block produces.

use crate::Rect;

/// Exact area of the union of `rects`, ignoring degenerate rectangles.
///
/// Runs a vertical scanline over x-sorted edge events; at each strip the
/// covered y-length is computed from the active interval set.
///
/// # Example
///
/// ```
/// use dlp_geometry::{Rect, sweep::union_area};
///
/// // Two 10x10 squares overlapping in a 5x10 band: 100 + 100 - 50.
/// let area = union_area(&[Rect::new(0, 0, 10, 10), Rect::new(5, 0, 15, 10)]);
/// assert_eq!(area, 150);
/// ```
pub fn union_area(rects: &[Rect]) -> i64 {
    let mut events: Vec<(i64, bool, i64, i64)> = Vec::with_capacity(rects.len() * 2);
    for r in rects {
        if r.is_degenerate() {
            continue;
        }
        events.push((r.x0(), true, r.y0(), r.y1()));
        events.push((r.x1(), false, r.y0(), r.y1()));
    }
    if events.is_empty() {
        return 0;
    }
    events.sort_unstable();

    // Active y-intervals, kept as a simple Vec (removal by value). The
    // interval population at any instant is bounded by the number of
    // rectangles crossing the scanline, which is small for layout data
    // (channel-shaped geometry).
    let mut active: Vec<(i64, i64)> = Vec::new();
    let mut area: i64 = 0;
    let mut prev_x = events[0].0;

    for (x, is_open, y0, y1) in events {
        if x > prev_x && !active.is_empty() {
            area += (x - prev_x) * covered_length(&mut active);
            prev_x = x;
        } else if active.is_empty() {
            prev_x = x;
        }
        if is_open {
            active.push((y0, y1));
        } else if let Some(pos) = active.iter().position(|&iv| iv == (y0, y1)) {
            active.swap_remove(pos);
        }
        // A close event always matches an open interval (events come in
        // pairs from the same rectangle), so the `else` branch is
        // unreachable; dropping through keeps the sweep total-function.
    }
    area
}

/// Total y-length covered by the union of the given intervals.
/// Sorts `intervals` in place as a side effect.
fn covered_length(intervals: &mut [(i64, i64)]) -> i64 {
    intervals.sort_unstable();
    let mut total = 0;
    let mut cur: Option<(i64, i64)> = None;
    for &(a, b) in intervals.iter() {
        match cur {
            None => cur = Some((a, b)),
            Some((ca, cb)) => {
                if a <= cb {
                    cur = Some((ca, cb.max(b)));
                } else {
                    total += cb - ca;
                    cur = Some((a, b));
                }
            }
        }
    }
    if let Some((ca, cb)) = cur {
        total += cb - ca;
    }
    total
}

/// Exact area of `union(a) ∩ union(b)`: pairwise-intersect then union.
///
/// Used for short critical areas: dilate net A's shapes, dilate net B's
/// shapes, and measure where both dilations overlap.
///
/// # Example
///
/// ```
/// use dlp_geometry::{Rect, sweep::intersection_area};
///
/// let a = [Rect::new(0, 0, 10, 10)];
/// let b = [Rect::new(5, 5, 15, 15), Rect::new(-5, -5, 2, 2)];
/// assert_eq!(intersection_area(&a, &b), 25 + 4);
/// ```
pub fn intersection_area(a: &[Rect], b: &[Rect]) -> i64 {
    let mut pieces = Vec::new();
    for ra in a {
        for rb in b {
            if let Some(i) = ra.intersection(rb) {
                if !i.is_degenerate() {
                    pieces.push(i);
                }
            }
        }
    }
    union_area(&pieces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(union_area(&[]), 0);
        assert_eq!(union_area(&[Rect::new(0, 0, 0, 10)]), 0);
    }

    #[test]
    fn single_rect() {
        assert_eq!(union_area(&[Rect::new(1, 2, 4, 7)]), 15);
    }

    #[test]
    fn disjoint_rects_sum() {
        let rs = [Rect::new(0, 0, 2, 2), Rect::new(10, 10, 13, 12)];
        assert_eq!(union_area(&rs), 4 + 6);
    }

    #[test]
    fn identical_rects_count_once() {
        let r = Rect::new(0, 0, 5, 5);
        assert_eq!(union_area(&[r, r, r]), 25);
    }

    #[test]
    fn nested_rects_count_outer() {
        let rs = [Rect::new(0, 0, 10, 10), Rect::new(3, 3, 6, 6)];
        assert_eq!(union_area(&rs), 100);
    }

    #[test]
    fn cross_shape() {
        // Horizontal bar 20x4 and vertical bar 4x20 crossing: 80+80-16.
        let rs = [Rect::new(0, 8, 20, 12), Rect::new(8, 0, 12, 20)];
        assert_eq!(union_area(&rs), 144);
    }

    #[test]
    fn abutting_rects_do_not_overlap() {
        let rs = [Rect::new(0, 0, 5, 5), Rect::new(5, 0, 10, 5)];
        assert_eq!(union_area(&rs), 50);
    }

    #[test]
    fn intersection_area_disjoint_sets() {
        let a = [Rect::new(0, 0, 1, 1)];
        let b = [Rect::new(5, 5, 6, 6)];
        assert_eq!(intersection_area(&a, &b), 0);
    }

    #[test]
    fn intersection_area_handles_internal_overlap() {
        // Both pieces of `b` overlap the same region of `a`; the overlap
        // must be counted once.
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(2, 2, 8, 8), Rect::new(4, 4, 12, 12)];
        // union(b) ∩ a = union of (2,2,8,8) and (4,4,10,10): 36 + 36 - 16 = 56
        assert_eq!(intersection_area(&a, &b), 56);
    }

    /// Deterministic random rectangle set from the shared test RNG.
    fn rect_set(rng: &mut crate::test_rng::TestRng, max_n: i64, pos: i64, size: i64) -> Vec<Rect> {
        let n = rng.range(1, max_n);
        (0..n)
            .map(|_| {
                let x = rng.range(0, pos);
                let y = rng.range(0, pos);
                let w = rng.range(1, size);
                let h = rng.range(1, size);
                Rect::with_size(x, y, w, h)
            })
            .collect()
    }

    /// Union area never exceeds the sum of areas and never undercuts
    /// the largest member.
    #[test]
    fn union_area_bounds() {
        let mut rng = crate::test_rng::TestRng::new(11);
        for _ in 0..120 {
            let rs = rect_set(&mut rng, 40, 50, 20);
            let ua = union_area(&rs);
            let sum: i64 = rs.iter().map(Rect::area).sum();
            let max = rs.iter().map(Rect::area).max().unwrap();
            assert!(ua <= sum);
            assert!(ua >= max);
        }
    }

    /// Union area agrees with a brute-force unit-cell rasterization on
    /// small canvases.
    #[test]
    fn union_area_matches_raster() {
        let mut rng = crate::test_rng::TestRng::new(12);
        for _ in 0..200 {
            let rs = rect_set(&mut rng, 10, 12, 6);
            let mut grid = [[false; 20]; 20];
            for r in &rs {
                for gx in r.x0()..r.x1() {
                    for gy in r.y0()..r.y1() {
                        grid[gx as usize][gy as usize] = true;
                    }
                }
            }
            let raster: i64 = grid.iter().flatten().filter(|&&b| b).count() as i64;
            assert_eq!(union_area(&rs), raster);
        }
    }

    /// intersection_area is symmetric and bounded by either union.
    #[test]
    fn intersection_area_symmetric() {
        let mut rng = crate::test_rng::TestRng::new(13);
        for _ in 0..150 {
            let ra = rect_set(&mut rng, 8, 30, 10);
            let rb = rect_set(&mut rng, 8, 30, 10);
            let iab = intersection_area(&ra, &rb);
            let iba = intersection_area(&rb, &ra);
            assert_eq!(iab, iba);
            assert!(iab <= union_area(&ra));
            assert!(iab <= union_area(&rb));
        }
    }
}
