//! Minimal deterministic RNG for randomized tests (xorshift64*), so the
//! crate's property-style tests need no external dependency.

pub(crate) struct TestRng {
    state: u64,
}

impl TestRng {
    pub(crate) fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub(crate) fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }
}
