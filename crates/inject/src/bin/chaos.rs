//! The chaos gate: the deterministic adversarial corpus plus the seeded
//! randomized kill/resume and artifact-corruption sweeps. Prints every
//! violation and exits non-zero if any check failed.
//!
//! Knobs (environment):
//! - `DLP_CHAOS_SEED` — sweep RNG seed (decimal; default below). A red
//!   run is reproducible by re-running with the printed seed.
//! - `DLP_CHAOS_DIR` — scratch directory for checkpoint artifacts
//!   (default: `target/chaos` inside the workspace).

use dlp_inject::{corpus, run_chaos, verify_all};

fn main() {
    let seed = std::env::var("DLP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC4A0_55ED);
    let dir = std::env::var("DLP_CHAOS_DIR").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/chaos").to_string()
    });

    let cases = corpus();
    let corpus_report = verify_all(&cases);
    let corpus_failures: Vec<String> = corpus_report
        .failures()
        .map(|(name, outcome)| format!("  FAIL {name}: {outcome}"))
        .collect();
    println!(
        "chaos: corpus — {} cases, {} violations",
        corpus_report.len(),
        corpus_failures.len()
    );
    for line in &corpus_failures {
        println!("{line}");
    }

    let chaos_report = run_chaos(seed, &dir);
    print!(
        "chaos: sweeps (seed {seed}) — {}",
        chaos_report
    );

    if corpus_failures.is_empty() && chaos_report.passed() {
        println!("chaos: all clear");
    } else {
        eprintln!("chaos: violations found (re-run with DLP_CHAOS_SEED={seed} to reproduce)");
        std::process::exit(1);
    }
}
